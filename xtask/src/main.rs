//! Repo automation tasks, invoked as `cargo xtask <command>`.
//!
//! Four commands, all exiting non-zero on any violation so they can
//! gate CI:
//!
//! * `lint-concurrency` — concurrency rules that rustc/clippy cannot
//!   express (see `docs/CONCURRENCY.md`).
//! * `lint-trace` — `trace_event!` sites must match the registered
//!   `EventId` schema, and every registered event must be emitted
//!   somewhere (see `docs/TRACING.md`).
//! * `bench-check` — reruns `figures bench --json` and compares the
//!   fresh results against the committed `BENCH_*.json` baselines
//!   (see `docs/METRICS.md`).
//! * `analyze-locks` — whole-program static lock-order analysis:
//!   extracts every classed acquisition site, builds a conservative
//!   may-hold-while-acquiring graph, reports potential deadlock cycles,
//!   cross-checks against the runtime lockcheck graph and keeps the
//!   generated hierarchy section of `docs/CONCURRENCY.md` honest.
//!
//! The static passes share one machine-readable output schema
//! (`--json` / `--out <path>`, see `findings.rs`) for CI artifacts.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod analyze_locks;
mod bench_check;
mod findings;
mod json;
mod lint_concurrency;
mod lint_trace;
mod lockgraph;
mod rslex;

fn workspace_root() -> PathBuf {
    // xtask always runs via `cargo xtask ...`, whose cwd-independent anchor
    // is this crate's manifest dir: <root>/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask crate must live inside the workspace")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next();
    let rest: Vec<String> = args.collect();
    match cmd.as_deref() {
        Some("lint-concurrency") => lint_concurrency::run(&workspace_root(), &rest),
        Some("lint-trace") => lint_trace::run(&workspace_root(), &rest),
        Some("bench-check") => bench_check::run(&workspace_root(), &rest),
        Some("analyze-locks") => analyze_locks::run(&workspace_root(), &rest),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            print_usage();
            ExitCode::FAILURE
        }
        None => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint-concurrency   check memory-ordering justifications, hot-path\n                     \
         primitive bans and SAFETY comment coverage\n                     \
         (--json / --out <path> for the shared finding schema)\n  \
         lint-trace         check trace_event! sites against the registered\n                     \
         EventId schema (and that no event is dead)\n                     \
         (--json / --out <path>)\n  \
         bench-check        rerun `figures bench --json` and compare against\n                     \
         the committed BENCH_*.json baselines (--sim-only to\n                     \
         skip wall-clock records)\n  \
         analyze-locks      static lock-order analysis over the workspace:\n                     \
         cycle detection, runtime lockcheck cross-check and\n                     \
         docs/CONCURRENCY.md hierarchy drift check\n                     \
         (--json / --out <path> / --static-only /\n                     \
         --runtime-graph <path> / --write-docs / --fixture <dir>)"
    );
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
