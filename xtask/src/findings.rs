//! Shared machine-readable finding schema for the xtask static passes.
//!
//! `lint-concurrency`, `lint-trace` and `analyze-locks` all emit the same
//! JSON document under `--json` (or `--out <path>`), so CI uploads one
//! artifact format regardless of which pass produced it:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "tool": "lint-concurrency",
//!   "findings": [
//!     {"rule": "hot-path-std-mutex", "severity": "error",
//!      "file": "crates/core/src/x.rs", "line": 12, "message": "..."}
//!   ]
//! }
//! ```
//!
//! `line` is 1-based; `0` means the finding applies to the file (or run)
//! as a whole. Exit status is derived from severities: any `error`
//! finding fails the command, `warning` and `info` do not.

use std::fmt;
use std::path::PathBuf;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
    Info,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub severity: Severity,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(
        rule: impl Into<String>,
        severity: Severity,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule: rule.into(),
            severity,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders the shared JSON document for `tool`.
pub fn render_json(tool: &str, findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"tool\": \"{}\",\n", crate::json::escape(tool)));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"}}",
            crate::json::escape(&f.rule),
            f.severity.as_str(),
            crate::json::escape(&f.file),
            f.line,
            crate::json::escape(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Output options shared by every pass that emits findings.
#[derive(Debug, Default)]
pub struct OutputOpts {
    /// Print the JSON document to stdout instead of human-readable lines.
    pub json: bool,
    /// Also write the JSON document to this path.
    pub out: Option<PathBuf>,
}

impl OutputOpts {
    /// Extracts `--json` / `--out <path>` from `args`, returning the
    /// options plus the remaining (pass-specific) arguments.
    pub fn parse(args: &[String]) -> Result<(OutputOpts, Vec<String>), String> {
        let mut opts = OutputOpts::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => opts.json = true,
                "--out" => {
                    let path = it.next().ok_or("--out requires a path argument")?;
                    opts.out = Some(PathBuf::from(path));
                }
                _ => rest.push(a.clone()),
            }
        }
        Ok((opts, rest))
    }

    /// Emits the document per the options. Human-readable rendering stays
    /// in the caller (each pass has its own summary line); this only
    /// handles the machine-readable side. Returns false on I/O failure.
    pub fn emit(&self, tool: &str, findings: &[Finding]) -> bool {
        if !self.json && self.out.is_none() {
            return true;
        }
        let doc = render_json(tool, findings);
        if self.json {
            println!("{doc}");
        }
        if let Some(path) = &self.out {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("{tool}: cannot write {}: {e}", path.display());
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn rendered_document_parses_and_round_trips() {
        let findings = vec![
            Finding::new(
                "lock-order-cycle",
                Severity::Error,
                "crates/core/src/comm.rs",
                42,
                "cycle: \"a\" -> b\n -> a",
            ),
            Finding::new("coverage-gap", Severity::Info, "", 0, "never observed"),
        ];
        let doc = render_json("analyze-locks", &findings);
        let Json::Object(top) = Json::parse(&doc).unwrap() else {
            panic!("not an object");
        };
        assert_eq!(top["schema"], Json::Number(1.0));
        assert_eq!(top["tool"], Json::String("analyze-locks".into()));
        let Json::Array(items) = &top["findings"] else {
            panic!("findings not an array");
        };
        assert_eq!(items.len(), 2);
        let Json::Object(f0) = &items[0] else {
            panic!()
        };
        assert_eq!(f0["severity"], Json::String("error".into()));
        assert_eq!(f0["line"], Json::Number(42.0));
        assert_eq!(
            f0["message"],
            Json::String("cycle: \"a\" -> b\n -> a".into())
        );
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let doc = render_json("lint-trace", &[]);
        let Json::Object(top) = Json::parse(&doc).unwrap() else {
            panic!()
        };
        assert_eq!(top["findings"], Json::Array(vec![]));
    }

    #[test]
    fn parse_extracts_output_flags() {
        let args: Vec<String> = ["--sim-only", "--json", "--out", "x.json", "--foo"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, rest) = OutputOpts::parse(&args).unwrap();
        assert!(opts.json);
        assert_eq!(opts.out.as_deref(), Some(std::path::Path::new("x.json")));
        assert_eq!(rest, ["--sim-only", "--foo"]);
        assert!(OutputOpts::parse(&["--out".to_string()]).is_err());
    }
}
