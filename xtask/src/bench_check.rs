//! `cargo xtask bench-check` — benchmark-regression gate.
//!
//! Reruns `figures bench --json` into a temp directory and compares the
//! fresh `BENCH_FIGURES.json` / `BENCH_PINGPONG.json` against the
//! baselines committed at the repo root:
//!
//! * `kind: "sim"` records come from the deterministic virtual-clock
//!   simulator and must match the baseline **exactly** — any drift means
//!   the model changed and the baseline must be consciously refreshed
//!   (see docs/METRICS.md).
//! * `kind: "real"` records are wall-clock measurements; the headline
//!   `value` must stay within ±15% of the baseline. `p50`/`p99` are
//!   informational (tail percentiles are too noisy to gate on).
//!
//! `--sim-only` restricts both the rerun and the comparison to sim
//! records, which is what CI uses (shared runners make the ±15% real
//! band meaningless there).
//!
//! xtask is dependency-free; the JSON reader lives in [`crate::json`]
//! and covers the subset the bench schema uses.

use crate::json::Json;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::{Command, ExitCode};

/// Relative tolerance for `kind: "real"` records.
const REAL_TOLERANCE: f64 = 0.15;

/// The two benchmark report files, relative to the repo root.
const BENCH_FILES: &[&str] = &["BENCH_FIGURES.json", "BENCH_PINGPONG.json"];

pub fn run(root: &Path, args: &[String]) -> ExitCode {
    let mut sim_only = false;
    for a in args {
        match a.as_str() {
            "--sim-only" => sim_only = true,
            other => {
                eprintln!("bench-check: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let fresh_dir = std::env::temp_dir().join(format!("nm-bench-check-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&fresh_dir) {
        eprintln!("bench-check: cannot create {}: {e}", fresh_dir.display());
        return ExitCode::FAILURE;
    }

    eprintln!(
        "bench-check: running fresh benchmarks into {}",
        fresh_dir.display()
    );
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "nm-benches",
            "--bin",
            "figures",
            "--",
        ])
        .args(["bench", "--json", "--out"])
        .arg(&fresh_dir);
    if sim_only {
        cmd.arg("--sim-only");
    }
    match cmd.status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("bench-check: figures bench failed with {s}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench-check: failed to spawn cargo: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures = Vec::new();
    for file in BENCH_FILES {
        if sim_only && *file == "BENCH_PINGPONG.json" {
            continue; // real-mode file is not produced under --sim-only
        }
        let base_path = root.join(file);
        let fresh_path = fresh_dir.join(file);
        let baseline = match load_records(&base_path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{file}: baseline unreadable: {e}"));
                continue;
            }
        };
        let fresh = match load_records(&fresh_path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{file}: fresh run unreadable: {e}"));
                continue;
            }
        };
        failures.extend(
            compare(&baseline, &fresh, sim_only)
                .into_iter()
                .map(|m| format!("{file}: {m}")),
        );
        eprintln!(
            "bench-check: {file}: {} baseline records compared",
            baseline.len()
        );
    }
    let _ = std::fs::remove_dir_all(&fresh_dir);

    if failures.is_empty() {
        eprintln!("bench-check: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench-check: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "bench-check: if the change is intentional, refresh the baselines\n  \
             (cargo run --release -p nm-benches --bin figures -- bench --json)\n  \
             and commit the new BENCH_*.json — see docs/METRICS.md."
        );
        ExitCode::FAILURE
    }
}

/// One parsed benchmark record (the fields bench-check gates on).
#[derive(Debug, Clone, PartialEq)]
struct Record {
    value: f64,
    kind: String,
}

fn load_records(path: &Path) -> Result<BTreeMap<String, Record>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_records(&body)
}

fn parse_records(body: &str) -> Result<BTreeMap<String, Record>, String> {
    let doc = Json::parse(body)?;
    let Json::Object(top) = doc else {
        return Err("top level is not an object".into());
    };
    match top.get("schema") {
        Some(Json::Number(n)) if *n == 1.0 => {}
        other => return Err(format!("unsupported schema field: {other:?}")),
    }
    let Some(Json::Array(records)) = top.get("records") else {
        return Err("missing records array".into());
    };
    let mut out = BTreeMap::new();
    for r in records {
        let Json::Object(r) = r else {
            return Err("record is not an object".into());
        };
        let name = match r.get("name") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err("record missing string name".into()),
        };
        let value = match r.get("value") {
            Some(Json::Number(n)) => *n,
            _ => return Err(format!("record {name} missing numeric value")),
        };
        let kind = match r.get("kind") {
            Some(Json::String(s)) if s == "sim" || s == "real" => s.clone(),
            _ => return Err(format!("record {name} has bad kind")),
        };
        if out.insert(name.clone(), Record { value, kind }).is_some() {
            return Err(format!("duplicate record name {name}"));
        }
    }
    Ok(out)
}

/// Compares fresh records against the baseline; returns human-readable
/// failure messages (empty = pass).
fn compare(
    baseline: &BTreeMap<String, Record>,
    fresh: &BTreeMap<String, Record>,
    sim_only: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        if sim_only && base.kind != "sim" {
            continue;
        }
        let Some(new) = fresh.get(name) else {
            failures.push(format!("record {name} missing from fresh run"));
            continue;
        };
        if new.kind != base.kind {
            failures.push(format!(
                "record {name} changed kind: {} -> {}",
                base.kind, new.kind
            ));
            continue;
        }
        match base.kind.as_str() {
            "sim" => {
                // Deterministic virtual-clock result: exact match.
                if new.value != base.value {
                    failures.push(format!(
                        "sim record {name} drifted: baseline {} != fresh {}",
                        base.value, new.value
                    ));
                }
            }
            _ => {
                let rel = (new.value - base.value).abs() / base.value.abs().max(f64::MIN_POSITIVE);
                if rel > REAL_TOLERANCE {
                    failures.push(format!(
                        "real record {name} outside ±{:.0}%: baseline {} vs fresh {} ({:+.1}%)",
                        REAL_TOLERANCE * 100.0,
                        base.value,
                        new.value,
                        (new.value / base.value - 1.0) * 100.0,
                    ));
                }
            }
        }
    }
    for name in fresh.keys() {
        if !baseline.contains_key(name) {
            failures.push(format!(
                "record {name} is new (not in baseline) — refresh the committed BENCH_*.json"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": 1,
  "records": [
    {"name": "fig3/fine locking/size=4", "unit": "us", "value": 5.4, "p50": null, "p99": null, "kind": "sim"},
    {"name": "pingpong/singlethread/myri10g/size=4", "unit": "us", "value": 3.36, "p50": 3.36, "p99": 5.58, "kind": "real"}
  ]
}
"#;

    #[test]
    fn parses_the_bench_schema() {
        let records = parse_records(SAMPLE).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records["fig3/fine locking/size=4"].value, 5.4);
        assert_eq!(records["fig3/fine locking/size=4"].kind, "sim");
        assert_eq!(records["pingpong/singlethread/myri10g/size=4"].kind, "real");
    }

    #[test]
    fn wrong_schema_version_rejected() {
        assert!(parse_records("{\"schema\": 2, \"records\": []}").is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let base = parse_records(SAMPLE).unwrap();
        assert!(compare(&base, &base, false).is_empty());
        assert!(compare(&base, &base, true).is_empty());
    }

    #[test]
    fn perturbed_sim_record_fails_exact_compare() {
        let base = parse_records(SAMPLE).unwrap();
        let mut fresh = base.clone();
        // Even a tiny drift in a deterministic result must fail.
        fresh.get_mut("fig3/fine locking/size=4").unwrap().value = 5.400001;
        let failures = compare(&base, &fresh, false);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("sim record"), "{failures:?}");
    }

    #[test]
    fn real_records_get_a_tolerance_band() {
        let base = parse_records(SAMPLE).unwrap();
        let name = "pingpong/singlethread/myri10g/size=4";

        let mut fresh = base.clone();
        fresh.get_mut(name).unwrap().value = 3.36 * 1.14; // within ±15%
        assert!(compare(&base, &fresh, false).is_empty());

        fresh.get_mut(name).unwrap().value = 3.36 * 1.20; // outside
        let failures = compare(&base, &fresh, false);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("±15%"), "{failures:?}");

        // --sim-only ignores real records entirely.
        assert!(compare(&base, &fresh, true).is_empty());
    }

    #[test]
    fn missing_and_new_records_fail() {
        let base = parse_records(SAMPLE).unwrap();
        let mut fresh = base.clone();
        fresh.remove("fig3/fine locking/size=4");
        fresh.insert(
            "fig3/brand-new".to_string(),
            Record {
                value: 1.0,
                kind: "sim".to_string(),
            },
        );
        let failures = compare(&base, &fresh, false);
        assert_eq!(failures.len(), 2, "{failures:?}");
    }
}
