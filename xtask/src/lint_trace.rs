//! `cargo xtask lint-trace`: keeps `trace_event!` call sites and the
//! registered schema in `crates/nm-trace/src/events.rs` from drifting
//! apart.
//!
//! Two rules:
//!
//! 1. **Every emitted event is registered.** Each `trace_event!(Name, ...)`
//!    site in the workspace must name a variant of `EventId` — an
//!    unregistered name would be a compile error, but `trace_event!`
//!    sites inside `#[cfg]`-gated or macro-generated code can dodge the
//!    compiler, and this lint also runs without compiling anything.
//! 2. **Every registered event is emitted (or schema-only by design).**
//!    A variant with no `trace_event!`/`emit(` site anywhere is dead
//!    schema: either instrument it or retire it. Variants exercised only
//!    through `EventId::Name` expressions (tests, replay scripts like
//!    `nm-bench`'s `fromtrace`) count as used.
//!
//! The scan is textual, like `lint-concurrency`: it runs in milliseconds
//! and the `trace_event!(Identifier` shape is unambiguous in this
//! codebase.

use crate::findings::{Finding, OutputOpts, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::process::ExitCode;

/// Where the schema lives, relative to the workspace root.
const EVENTS_RS: &str = "crates/nm-trace/src/events.rs";

/// Extracts the registered variant names from the `EventId` enum block.
fn registered_variants(events_src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_enum = false;
    for line in events_src.lines() {
        let t = line.trim();
        if t.starts_with("pub enum EventId") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if t == "}" {
                break;
            }
            // Variant lines look like `LockAcquire = 1,`.
            if let Some((name, rest)) = t.split_once('=') {
                let name = name.trim();
                if rest.trim_end_matches(',').trim().parse::<u16>().is_ok()
                    && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    && name.chars().all(|c| c.is_ascii_alphanumeric())
                {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Scans one file for `trace_event!(Name` sites and `EventId::Name`
/// references, recording names into the respective maps.
fn scan_file(
    rel: &str,
    text: &str,
    sites: &mut Vec<(String, usize, String)>,
    referenced: &mut BTreeSet<String>,
) {
    for (idx, line) in text.lines().enumerate() {
        // Comments (incl. rustdoc) may spell the macro shape as prose.
        let line = line.split("//").next().unwrap_or_default();
        let mut rest = line;
        while let Some(pos) = rest.find("trace_event!(") {
            let after = &rest[pos + "trace_event!(".len()..];
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                sites.push((rel.to_string(), idx + 1, name));
            }
            rest = after;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("EventId::") {
            let after = &rest[pos + "EventId::".len()..];
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                referenced.insert(name);
            }
            rest = after;
        }
    }
}

fn check(
    registered: &BTreeSet<String>,
    sites: &[(String, usize, String)],
    referenced: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut problems = Vec::new();
    for (file, line, name) in sites {
        if !registered.contains(name) {
            problems.push(Finding::new(
                "trace-unregistered-event",
                Severity::Error,
                file.clone(),
                *line,
                format!(
                    "trace_event!({name}) is not a registered \
                     EventId variant — add it to {EVENTS_RS}"
                ),
            ));
        }
    }
    // Count emissions per registered variant (macro sites + direct
    // EventId:: references, which cover emit() calls and replay scripts).
    let mut emitted: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, _, name) in sites {
        *emitted.entry(name.as_str()).or_insert(0) += 1;
    }
    for name in registered {
        if !emitted.contains_key(name.as_str()) && !referenced.contains(name) {
            problems.push(Finding::new(
                "trace-dead-event",
                Severity::Error,
                EVENTS_RS,
                0,
                format!(
                    "EventId::{name} is registered but never \
                     emitted or referenced anywhere — instrument it or retire it"
                ),
            ));
        }
    }
    problems
}

pub fn run(root: &Path, args: &[String]) -> ExitCode {
    let (opts, rest) = match OutputOpts::parse(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(a) = rest.first() {
        eprintln!("lint-trace: unknown flag {a}");
        return ExitCode::FAILURE;
    }
    let events_path = root.join(EVENTS_RS);
    let Ok(events_src) = std::fs::read_to_string(&events_path) else {
        eprintln!("lint-trace: cannot read {}", events_path.display());
        return ExitCode::FAILURE;
    };
    let registered = registered_variants(&events_src);
    if registered.is_empty() {
        eprintln!("lint-trace: no EventId variants parsed from {EVENTS_RS}");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    super::collect_rs_files(root, &mut files);
    files.sort();

    let mut sites = Vec::new();
    let mut referenced = BTreeSet::new();
    let mut checked = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The lint's own source spells the patterns it greps for.
        if rel.starts_with("xtask/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        checked += 1;
        scan_file(&rel, &text, &mut sites, &mut referenced);
    }

    let problems = check(&registered, &sites, &referenced);
    if !opts.emit("lint-trace", &problems) {
        return ExitCode::FAILURE;
    }
    if problems.is_empty() {
        if !opts.json {
            println!(
                "lint-trace: OK ({} registered events, {} trace_event! sites, \
                 {checked} files)",
                registered.len(),
                sites.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("{p}");
        }
        eprintln!(
            "\nlint-trace: {} problem(s). The schema in {EVENTS_RS} is the \
             single source of truth (docs/TRACING.md).",
            problems.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAKE_EVENTS: &str = r#"
pub enum EventId {
    // ---- layer ----
    LockAcquire = 1,
    LockRelease = 2,
    PacketTx = 64,
}
"#;

    fn registered() -> BTreeSet<String> {
        registered_variants(FAKE_EVENTS)
    }

    #[test]
    fn parses_variants_from_enum_block() {
        let r = registered();
        assert_eq!(
            r.iter().map(String::as_str).collect::<Vec<_>>(),
            ["LockAcquire", "LockRelease", "PacketTx"]
        );
    }

    #[test]
    fn finds_macro_sites_and_references() {
        let src = r#"
            trace_event!(LockAcquire, id, 1);
            trace_event!(PacketTx, len); trace_event!(LockRelease, id);
            let x = EventId::LockAcquire;
        "#;
        let mut sites = Vec::new();
        let mut refs = BTreeSet::new();
        scan_file("a.rs", src, &mut sites, &mut refs);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[1].2, "PacketTx");
        assert!(refs.contains("LockAcquire"));
    }

    #[test]
    fn unregistered_site_is_a_problem() {
        let sites = vec![("a.rs".into(), 3, "NotAnEvent".into())];
        let problems = check(&registered(), &sites, &BTreeSet::new());
        assert_eq!(problems.len(), 1 + registered().len());
        assert_eq!(problems[0].rule, "trace-unregistered-event");
        assert_eq!((problems[0].file.as_str(), problems[0].line), ("a.rs", 3));
        assert!(problems[0].message.contains("NotAnEvent"));
    }

    #[test]
    fn unemitted_variant_is_a_problem_unless_referenced() {
        let sites = vec![
            ("a.rs".into(), 1, "LockAcquire".into()),
            ("b.rs".into(), 2, "LockRelease".into()),
        ];
        let problems = check(&registered(), &sites, &BTreeSet::new());
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].rule, "trace-dead-event");
        assert!(problems[0].message.contains("PacketTx"));

        let mut refs = BTreeSet::new();
        refs.insert("PacketTx".to_string());
        assert!(check(&registered(), &sites, &refs).is_empty());
    }

    #[test]
    fn the_real_workspace_passes() {
        let root = super::super::workspace_root();
        assert_eq!(run(&root, &[]), ExitCode::SUCCESS);
    }
}
