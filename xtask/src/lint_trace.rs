//! `cargo xtask lint-trace`: keeps `trace_event!` call sites and the
//! registered schema in `crates/nm-trace/src/events.rs` from drifting
//! apart.
//!
//! Two rules:
//!
//! 1. **Every emitted event is registered.** Each `trace_event!(Name, ...)`
//!    site in the workspace must name a variant of `EventId` — an
//!    unregistered name would be a compile error, but `trace_event!`
//!    sites inside `#[cfg]`-gated or macro-generated code can dodge the
//!    compiler, and this lint also runs without compiling anything.
//! 2. **Every registered event is emitted (or schema-only by design).**
//!    A variant with no `trace_event!`/`emit(` site anywhere is dead
//!    schema: either instrument it or retire it. Variants exercised only
//!    through `EventId::Name` expressions (tests, replay scripts like
//!    `nm-bench`'s `fromtrace`) count as used.
//!
//! A third rule keeps the *metrics* catalogue honest the same way:
//!
//! 3. **`docs/METRICS.md` and the metric registrations agree.** Every
//!    dotted metric name registered in the workspace
//!    (`histogram("x")` / `counter("x")` / `gauge("x")` call sites and
//!    the `global_hist!`/`global_counter!`/`global_gauge!` wrappers)
//!    must appear backticked in the catalogue, and every name the
//!    catalogue lists must still be registered somewhere. `test.` and
//!    `bench.` names are scaffolding and exempt.
//!
//! The scan is textual, like `lint-concurrency`: it runs in milliseconds
//! and the `trace_event!(Identifier` shape is unambiguous in this
//! codebase.

use crate::findings::{Finding, OutputOpts, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::process::ExitCode;

/// Where the schema lives, relative to the workspace root.
const EVENTS_RS: &str = "crates/nm-trace/src/events.rs";

/// The metric catalogue, relative to the workspace root.
const METRICS_MD: &str = "docs/METRICS.md";

/// `true` for the dotted-name shape metrics use (`core.send_ns`):
/// lowercase/digit/underscore segments joined by at least one dot.
fn is_metric_name(s: &str) -> bool {
    s.contains('.')
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        && !s.split('.').any(str::is_empty)
}

/// Extracts every backticked dotted name from the metric catalogue.
fn doc_metric_names(md: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for chunk in md.split('`').skip(1).step_by(2) {
        if is_metric_name(chunk) {
            out.insert(chunk.to_string());
        }
    }
    out
}

/// Scans one file for metric registrations, recording
/// `name -> (file, line)` for the first site of each name. Covers
/// direct `histogram("x")`/`counter("x")`/`gauge("x")` calls and the
/// `global_hist!`-style wrappers whose name literal sits on a later
/// line of the macro invocation.
fn scan_metrics(rel: &str, text: &str, names: &mut BTreeMap<String, (String, usize)>) {
    const CALLS: [&str; 3] = ["histogram(\"", "counter(\"", "gauge(\""];
    const MACROS: [&str; 3] = ["global_hist!(", "global_counter!(", "global_gauge!("];
    let record = |name: &str, line: usize, names: &mut BTreeMap<String, (String, usize)>| {
        if is_metric_name(name) && !name.starts_with("test.") && !name.starts_with("bench.") {
            names
                .entry(name.to_string())
                .or_insert_with(|| (rel.to_string(), line));
        }
    };
    // A `global_*!(` opener still waiting for its name literal.
    let mut pending_macro = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or_default();
        for call in CALLS {
            let mut rest = line;
            while let Some(pos) = rest.find(call) {
                let after = &rest[pos + call.len()..];
                if let Some(name) = after.split('"').next() {
                    record(name, idx + 1, names);
                }
                rest = after;
            }
        }
        if MACROS.iter().any(|m| line.contains(m)) {
            pending_macro = true;
        }
        if pending_macro {
            // First string literal of the invocation is the metric name
            // (the handle fn name before it is a bare identifier).
            let mut parts = line.split('"');
            if parts.next().is_some() {
                if let Some(name) = parts.next() {
                    record(name, idx + 1, names);
                    pending_macro = false;
                }
            }
        }
    }
}

/// Rule 3: the catalogue and the registrations must match exactly.
fn check_metrics(doc: &BTreeSet<String>, code: &BTreeMap<String, (String, usize)>) -> Vec<Finding> {
    let mut problems = Vec::new();
    for (name, (file, line)) in code {
        if !doc.contains(name) {
            problems.push(Finding::new(
                "metric-undocumented",
                Severity::Error,
                file.clone(),
                *line,
                format!("metric `{name}` is registered here but missing from {METRICS_MD}"),
            ));
        }
    }
    for name in doc {
        if !code.contains_key(name) {
            problems.push(Finding::new(
                "metric-dead-doc",
                Severity::Error,
                METRICS_MD,
                0,
                format!(
                    "{METRICS_MD} lists `{name}` but nothing in the workspace \
                     registers it — update the catalogue or restore the metric"
                ),
            ));
        }
    }
    problems
}

/// Extracts the registered variant names from the `EventId` enum block.
fn registered_variants(events_src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_enum = false;
    for line in events_src.lines() {
        let t = line.trim();
        if t.starts_with("pub enum EventId") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if t == "}" {
                break;
            }
            // Variant lines look like `LockAcquire = 1,`.
            if let Some((name, rest)) = t.split_once('=') {
                let name = name.trim();
                if rest.trim_end_matches(',').trim().parse::<u16>().is_ok()
                    && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    && name.chars().all(|c| c.is_ascii_alphanumeric())
                {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Scans one file for `trace_event!(Name` sites and `EventId::Name`
/// references, recording names into the respective maps.
fn scan_file(
    rel: &str,
    text: &str,
    sites: &mut Vec<(String, usize, String)>,
    referenced: &mut BTreeSet<String>,
) {
    for (idx, line) in text.lines().enumerate() {
        // Comments (incl. rustdoc) may spell the macro shape as prose.
        let line = line.split("//").next().unwrap_or_default();
        let mut rest = line;
        while let Some(pos) = rest.find("trace_event!(") {
            let after = &rest[pos + "trace_event!(".len()..];
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                sites.push((rel.to_string(), idx + 1, name));
            }
            rest = after;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("EventId::") {
            let after = &rest[pos + "EventId::".len()..];
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                referenced.insert(name);
            }
            rest = after;
        }
    }
}

fn check(
    registered: &BTreeSet<String>,
    sites: &[(String, usize, String)],
    referenced: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut problems = Vec::new();
    for (file, line, name) in sites {
        if !registered.contains(name) {
            problems.push(Finding::new(
                "trace-unregistered-event",
                Severity::Error,
                file.clone(),
                *line,
                format!(
                    "trace_event!({name}) is not a registered \
                     EventId variant — add it to {EVENTS_RS}"
                ),
            ));
        }
    }
    // Count emissions per registered variant (macro sites + direct
    // EventId:: references, which cover emit() calls and replay scripts).
    let mut emitted: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, _, name) in sites {
        *emitted.entry(name.as_str()).or_insert(0) += 1;
    }
    for name in registered {
        if !emitted.contains_key(name.as_str()) && !referenced.contains(name) {
            problems.push(Finding::new(
                "trace-dead-event",
                Severity::Error,
                EVENTS_RS,
                0,
                format!(
                    "EventId::{name} is registered but never \
                     emitted or referenced anywhere — instrument it or retire it"
                ),
            ));
        }
    }
    problems
}

pub fn run(root: &Path, args: &[String]) -> ExitCode {
    let (opts, rest) = match OutputOpts::parse(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(a) = rest.first() {
        eprintln!("lint-trace: unknown flag {a}");
        return ExitCode::FAILURE;
    }
    let events_path = root.join(EVENTS_RS);
    let Ok(events_src) = std::fs::read_to_string(&events_path) else {
        eprintln!("lint-trace: cannot read {}", events_path.display());
        return ExitCode::FAILURE;
    };
    let registered = registered_variants(&events_src);
    if registered.is_empty() {
        eprintln!("lint-trace: no EventId variants parsed from {EVENTS_RS}");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    super::collect_rs_files(root, &mut files);
    files.sort();

    let metrics_path = root.join(METRICS_MD);
    let Ok(metrics_md) = std::fs::read_to_string(&metrics_path) else {
        eprintln!("lint-trace: cannot read {}", metrics_path.display());
        return ExitCode::FAILURE;
    };
    let doc_metrics = doc_metric_names(&metrics_md);

    let mut sites = Vec::new();
    let mut referenced = BTreeSet::new();
    let mut code_metrics = BTreeMap::new();
    let mut checked = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The lint's own source spells the patterns it greps for.
        if rel.starts_with("xtask/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        checked += 1;
        scan_file(&rel, &text, &mut sites, &mut referenced);
        scan_metrics(&rel, &text, &mut code_metrics);
    }

    let mut problems = check(&registered, &sites, &referenced);
    problems.extend(check_metrics(&doc_metrics, &code_metrics));
    if !opts.emit("lint-trace", &problems) {
        return ExitCode::FAILURE;
    }
    if problems.is_empty() {
        if !opts.json {
            println!(
                "lint-trace: OK ({} registered events, {} trace_event! sites, \
                 {checked} files)",
                registered.len(),
                sites.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("{p}");
        }
        eprintln!(
            "\nlint-trace: {} problem(s). The schema in {EVENTS_RS} is the \
             single source of truth (docs/TRACING.md).",
            problems.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAKE_EVENTS: &str = r#"
pub enum EventId {
    // ---- layer ----
    LockAcquire = 1,
    LockRelease = 2,
    PacketTx = 64,
}
"#;

    fn registered() -> BTreeSet<String> {
        registered_variants(FAKE_EVENTS)
    }

    #[test]
    fn parses_variants_from_enum_block() {
        let r = registered();
        assert_eq!(
            r.iter().map(String::as_str).collect::<Vec<_>>(),
            ["LockAcquire", "LockRelease", "PacketTx"]
        );
    }

    #[test]
    fn finds_macro_sites_and_references() {
        let src = r#"
            trace_event!(LockAcquire, id, 1);
            trace_event!(PacketTx, len); trace_event!(LockRelease, id);
            let x = EventId::LockAcquire;
        "#;
        let mut sites = Vec::new();
        let mut refs = BTreeSet::new();
        scan_file("a.rs", src, &mut sites, &mut refs);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[1].2, "PacketTx");
        assert!(refs.contains("LockAcquire"));
    }

    #[test]
    fn unregistered_site_is_a_problem() {
        let sites = vec![("a.rs".into(), 3, "NotAnEvent".into())];
        let problems = check(&registered(), &sites, &BTreeSet::new());
        assert_eq!(problems.len(), 1 + registered().len());
        assert_eq!(problems[0].rule, "trace-unregistered-event");
        assert_eq!((problems[0].file.as_str(), problems[0].line), ("a.rs", 3));
        assert!(problems[0].message.contains("NotAnEvent"));
    }

    #[test]
    fn unemitted_variant_is_a_problem_unless_referenced() {
        let sites = vec![
            ("a.rs".into(), 1, "LockAcquire".into()),
            ("b.rs".into(), 2, "LockRelease".into()),
        ];
        let problems = check(&registered(), &sites, &BTreeSet::new());
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].rule, "trace-dead-event");
        assert!(problems[0].message.contains("PacketTx"));

        let mut refs = BTreeSet::new();
        refs.insert("PacketTx".to_string());
        assert!(check(&registered(), &sites, &refs).is_empty());
    }

    #[test]
    fn doc_names_come_from_backticks_with_the_dotted_shape() {
        let md = "| `core.send_ns` | stuff |\nprose `nm-metrics` and `CommCore::isend`\n\
                  `fabric.tx_bytes`, `fabric.tx_packets` share a row";
        let names = doc_metric_names(md);
        assert_eq!(
            names.iter().map(String::as_str).collect::<Vec<_>>(),
            ["core.send_ns", "fabric.tx_bytes", "fabric.tx_packets"]
        );
    }

    #[test]
    fn metric_scan_sees_calls_and_global_macros() {
        let src = r#"
            let h = nm_metrics::metrics().histogram("core.send_ns");
            global_counter!(
                polls_counter,
                "progress.polls",
                "Polling passes."
            );
            metrics().gauge("test.reg.gauge");
        "#;
        let mut names = BTreeMap::new();
        scan_metrics("m.rs", src, &mut names);
        assert_eq!(
            names.keys().map(String::as_str).collect::<Vec<_>>(),
            ["core.send_ns", "progress.polls"],
            "test.* names are scaffolding and exempt"
        );
        assert_eq!(names["progress.polls"], ("m.rs".to_string(), 5));
    }

    #[test]
    fn metric_drift_is_reported_both_ways() {
        let mut code = BTreeMap::new();
        code.insert("core.new_ns".to_string(), ("m.rs".to_string(), 7));
        let mut doc = BTreeSet::new();
        doc.insert("core.gone_ns".to_string());
        let problems = check_metrics(&doc, &code);
        assert_eq!(problems.len(), 2);
        assert_eq!(problems[0].rule, "metric-undocumented");
        assert!(problems[0].message.contains("core.new_ns"));
        assert_eq!(problems[1].rule, "metric-dead-doc");
        assert!(problems[1].message.contains("core.gone_ns"));

        doc.insert("core.new_ns".to_string());
        doc.remove("core.gone_ns");
        assert!(check_metrics(&doc, &code).is_empty());
    }

    #[test]
    fn the_real_workspace_passes() {
        let root = super::super::workspace_root();
        assert_eq!(run(&root, &[]), ExitCode::SUCCESS);
    }
}
