//! `cargo xtask lint-concurrency`: source-text lints for concurrency rules
//! the compiler cannot enforce.
//!
//! Four rules (details and rationale in `docs/CONCURRENCY.md`):
//!
//! 1. **Relaxed needs a reason.** Every `Ordering::Relaxed` in non-test
//!    code must carry a `relaxed:` justification comment on the same line
//!    or within the six preceding lines (multi-line `compare_exchange`
//!    calls push the argument down), unless the file is on the allow-list
//!    below (files whose module docs establish a blanket discipline, e.g.
//!    statistics counters) or under `compat/`.
//! 2. **No ad-hoc primitives on hot paths.** `std::sync::Mutex`,
//!    `RwLock`, `Condvar`, `Barrier` and bare `std::thread::spawn` are
//!    banned in the hot-path crates (`nm-sync`, `nm-fabric`,
//!    `nm-progress`, `nm-core`, `nm-sched`) outside test code: locks must
//!    go through `nm-sync`/`parking_lot` (so lockcheck sees them) and
//!    threads through the crates' own spawn wrappers, which set names and
//!    affinity. Use-list imports (`use std::sync::{Arc, Barrier}`) are
//!    caught too. The rare legitimate exception carries a
//!    `// std-sync: <why>` comment within three lines (e.g. lockcheck's
//!    own graph guard, which must not itself be a classed lock).
//! 3. **`unsafe` needs `// SAFETY:`.** Every line containing an `unsafe`
//!    keyword must have a `SAFETY:` comment (or a `# Safety` rustdoc
//!    section, the convention for `unsafe fn`) on the same line or within
//!    the three preceding lines. (Clippy's `undocumented_unsafe_blocks`
//!    covers blocks; this also catches `unsafe fn`/`unsafe impl` and does
//!    not need a full compile.)
//! 4. **No blocking in completion handlers.** Completion handlers run in
//!    the progress context (see `core::completion`'s reentrancy rules):
//!    a handler that blocks stalls progression for the whole node, and a
//!    handler that waits on a completion deadlocks — the completion it
//!    waits for is delivered by the thread it is running on. Closures
//!    passed to `Completion::handler(..)` must not contain `.wait(`,
//!    `thread::park`, semaphore `acquire_*` calls or `block_on`. This
//!    rule applies to test code too (a deadlock in a test hangs CI just
//!    as hard); the rare false positive (e.g. a non-blocking method that
//!    happens to be named `wait`) carries a `// handler-ok: <why>`
//!    comment within three lines.
//!
//! The lint is text-based on purpose: it runs in under a second with no
//! compilation, and the patterns involved are unambiguous in this codebase.
//! String literals could in principle fool it; don't put `unsafe` in one.

use crate::findings::{Finding, OutputOpts, Severity};
use std::path::Path;
use std::process::ExitCode;

/// Files allowed to use `Ordering::Relaxed` without per-site justification.
/// Keep this list short and justified:
const RELAXED_ALLOW_LIST: &[&str] = &[
    // Monotonic statistics counters; module docs state the discipline once.
    "crates/nm-sync/src/stats.rs",
    // Same discipline, current home: the metrics layer's counters,
    // gauges and histogram buckets are all independent monotonic (or
    // last-writer-wins) cells read only by snapshots that tolerate
    // tearing; each module's docs state this once.
    "crates/nm-metrics/src/counters.rs",
    "crates/nm-metrics/src/gauge.rs",
    "crates/nm-metrics/src/hist.rs",
    // Per-thread trace rings: module docs state the Relaxed-stores +
    // Release-cursor publication protocol once for the whole file.
    "crates/nm-trace/src/ring.rs",
];

/// Path prefixes exempt from the Relaxed rule. `compat/` holds vendored
/// stand-ins for external crates (parking_lot, crossbeam, the loom-lite
/// model checker): they *implement* the primitives the rule protects, and
/// keeping their text close to upstream matters more than our annotations.
/// The SAFETY rule still applies to them.
const RELAXED_EXEMPT_PREFIXES: &[&str] = &["compat/"];

/// Crates where the banned `std::sync` primitives / bare `thread::spawn`
/// are not allowed in non-test code.
const HOT_PATH_CRATES: &[&str] = &[
    "crates/nm-sync",
    "crates/nm-fabric",
    "crates/nm-progress",
    "crates/core",
    "crates/nm-sched",
];

/// How many lines above an occurrence a justification comment may sit.
const COMMENT_LOOKBACK: usize = 3;

/// Lookback for the Relaxed rule: rustfmt splits `compare_exchange`
/// calls across up to six lines, putting the `Ordering::Relaxed` argument
/// well below the comment that precedes the statement.
const RELAXED_LOOKBACK: usize = 6;

/// The `std::sync` primitives banned on hot paths (rule 2). Everything
/// here has an `nm-sync` or `parking_lot` replacement that lockcheck and
/// the loom suite can see.
const BANNED_STD_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier"];

pub fn run(root: &Path, args: &[String]) -> ExitCode {
    let (opts, rest) = match OutputOpts::parse(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-concurrency: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(a) = rest.first() {
        eprintln!("lint-concurrency: unknown flag {a}");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    super::collect_rs_files(root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        checked += 1;
        lint_file(&rel, &text, &mut violations);
    }

    if !opts.emit("lint-concurrency", &violations) {
        return ExitCode::FAILURE;
    }
    if violations.is_empty() {
        if !opts.json {
            println!(
                "lint-concurrency: OK ({checked} files; relaxed justifications, \
                 hot-path primitives, SAFETY coverage, handler blocking)"
            );
        }
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "\nlint-concurrency: {} violation(s) in {checked} files. \
             See docs/CONCURRENCY.md for the rules.",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Call patterns that install a completion handler; the closure argument
/// runs in the progress context (rule 4).
const HANDLER_INSTALLERS: &[&str] = &["Completion::handler(", "Completion::Handler("];

/// Blocking calls banned inside a completion handler (rule 4).
const BANNED_IN_HANDLER: &[&str] = &[
    ".wait(",
    ".wait_all(",
    "thread::park",
    ".acquire_blocking(",
    ".acquire_with(",
    "block_on(",
];

fn lint_file(rel: &str, text: &str, out: &mut Vec<Finding>) {
    // Skip the lint's own source (rule names would trip the patterns).
    if rel.starts_with("xtask/") {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_code_start(&lines);
    let in_tests_dir = rel.contains("/tests/") || rel.contains("/benches/");

    let relaxed_allowed = RELAXED_ALLOW_LIST.contains(&rel)
        || RELAXED_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p));
    let hot_path = HOT_PATH_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("{c}/src/")) || rel == format!("{c}/src/lib.rs"));

    // Tracks whether we are inside a multi-line `use std::sync::{ ... }`
    // item (rustfmt splits long use-lists).
    let mut in_std_sync_list = false;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = strip_line_comment(line);
        let is_test_code = in_tests_dir || idx >= test_start;

        // Rule 1: Ordering::Relaxed needs a `relaxed:` justification.
        // Test code is exempt: the rule protects production hot paths.
        if !relaxed_allowed
            && !is_test_code
            && code.contains("Relaxed")
            && (code.contains("Ordering::Relaxed") || code.contains("::Relaxed"))
            && !has_marker_within(&lines, idx, "relaxed:", RELAXED_LOOKBACK)
        {
            out.push(Finding::new(
                "relaxed-needs-reason",
                Severity::Error,
                rel,
                lineno,
                "Ordering::Relaxed without a `// relaxed: <why>` \
                 justification within 6 lines",
            ));
        }

        // Rule 2: hot-path crates must not use the banned std::sync
        // primitives / bare spawn outside test code. A `// std-sync:`
        // justification within 3 lines waives the primitive ban.
        let std_sync_hits = banned_std_sync(code, &mut in_std_sync_list);
        if hot_path && !is_test_code {
            if !has_marker(&lines, idx, "std-sync:") {
                for prim in std_sync_hits {
                    let rule = if prim == "Mutex" {
                        "hot-path-std-mutex"
                    } else {
                        "hot-path-std-sync-primitive"
                    };
                    out.push(Finding::new(
                        rule,
                        Severity::Error,
                        rel,
                        lineno,
                        format!(
                            "std::sync::{prim} in a hot-path crate; use \
                             nm-sync primitives or parking_lot so lockcheck \
                             and loom see it (or justify with `// std-sync: <why>`)"
                        ),
                    ));
                }
            }
            if (code.contains("thread::spawn(") || code.contains("std::thread::spawn("))
                && !code.contains("Builder")
            {
                out.push(Finding::new(
                    "hot-path-bare-spawn",
                    Severity::Error,
                    rel,
                    lineno,
                    "bare thread::spawn in a hot-path crate; use \
                     std::thread::Builder (named threads) or the \
                     crate's spawn wrapper",
                ));
            }
        }

        // Rule 3: unsafe needs SAFETY. `# Safety` doc sections (the
        // rustdoc convention for `unsafe fn`) count too.
        if mentions_unsafe(code)
            && !has_marker(&lines, idx, "SAFETY:")
            && !has_marker(&lines, idx, "# Safety")
        {
            out.push(Finding::new(
                "unsafe-needs-safety-comment",
                Severity::Error,
                rel,
                lineno,
                "`unsafe` without a `// SAFETY:` comment within 3 lines",
            ));
        }
    }

    // Rule 4 needs multi-line region tracking; separate pass. It applies
    // to test code too: a handler that blocks deadlocks tests as well.
    lint_handler_regions(rel, &lines, out);
}

/// Rule 4: scans the argument region of each `Completion::handler(..)`
/// call — from its opening paren to the matching close, tracked by paren
/// depth on comment-stripped text — for blocking calls. String literals
/// containing parens could skew the region; the codebase has none in
/// handler arguments.
fn lint_handler_regions(rel: &str, lines: &[&str], out: &mut Vec<Finding>) {
    let mut start = 0usize;
    while start < lines.len() {
        let first = strip_line_comment(lines[start]);
        let Some(open) = HANDLER_INSTALLERS
            .iter()
            .find_map(|p| first.find(p).map(|i| i + p.len()))
        else {
            start += 1;
            continue;
        };
        let mut depth = 1i32;
        let mut line = start;
        let mut from = open;
        while line < lines.len() && depth > 0 {
            let code = strip_line_comment(lines[line]);
            let tail = code.get(from..).unwrap_or("");
            // Byte offset where the handler argument region closes on
            // this line (end of line while the call is still open).
            let mut end = tail.len();
            for (off, c) in tail.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = off;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let region = &tail[..end];
            if let Some(call) = BANNED_IN_HANDLER.iter().find(|p| region.contains(*p)) {
                if !has_marker(lines, line, "handler-ok:") {
                    out.push(Finding::new(
                        "blocking-wait-in-handler",
                        Severity::Error,
                        rel,
                        line + 1,
                        format!(
                            "`{}` inside a completion handler: handlers run in \
                             the progress context and must not block (see the \
                             reentrancy rules in core::completion; waive a \
                             false positive with `// handler-ok: <why>`)",
                            call.trim_matches(|c: char| c == '.' || c == '('),
                        ),
                    ));
                }
            }
            from = 0;
            line += 1;
        }
        start += 1;
    }
}

/// Banned `std::sync` primitives mentioned on this (comment-stripped)
/// line, either via a qualified path (`std::sync::RwLock`,
/// `sync::Mutex<...>`) or inside a `use std::sync::{ ... }` list —
/// including lists rustfmt split across lines, tracked via
/// `in_std_sync_list`.
fn banned_std_sync(code: &str, in_std_sync_list: &mut bool) -> Vec<&'static str> {
    // The portion of this line that sits inside a std::sync use-list.
    let list_region = if *in_std_sync_list {
        let end = code.find('}').unwrap_or(code.len());
        if end < code.len() {
            *in_std_sync_list = false;
        }
        Some(&code[..end])
    } else if let Some(pos) = code.find("std::sync::{") {
        let after = &code[pos + "std::sync::{".len()..];
        let end = after.find('}').unwrap_or(after.len());
        if end == after.len() {
            *in_std_sync_list = true;
        }
        Some(&after[..end])
    } else {
        None
    };

    let mut hits = Vec::new();
    for prim in BANNED_STD_SYNC {
        let direct = code.contains(&format!("std::sync::{prim}"));
        // `sync::Mutex<u32>`-style partially-qualified generics; Condvar
        // and Barrier are not generic, so only the path form exists.
        let qualified = matches!(*prim, "Mutex" | "RwLock")
            && code.contains(&format!("sync::{prim}<"))
            && !code.contains(&format!("sync_shim::{prim}<"));
        let listed = list_region.is_some_and(|r| {
            r.split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|ident| ident == *prim)
        });
        if direct || qualified || listed {
            hits.push(*prim);
        }
    }
    hits
}

/// Index of the first line of trailing test code (`#[cfg(test)]` or
/// `mod tests`), or `usize::MAX` if none. Heuristic: everything after the
/// first test marker is treated as test code — in this codebase test
/// modules sit at the end of each file.
fn test_code_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(test)]") || t.starts_with("mod tests")
        })
        .unwrap_or(usize::MAX)
}

/// Strips a trailing `//` comment so commented-out code is not linted.
/// Comment markers inside string literals would confuse this; the codebase
/// has none on the linted patterns.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// True if `marker` appears on this line or within [`COMMENT_LOOKBACK`]
/// preceding lines (typically inside a comment).
fn has_marker(lines: &[&str], idx: usize, marker: &str) -> bool {
    has_marker_within(lines, idx, marker, COMMENT_LOOKBACK)
}

fn has_marker_within(lines: &[&str], idx: usize, marker: &str, lookback: usize) -> bool {
    let lo = idx.saturating_sub(lookback);
    lines[lo..=idx].iter().any(|l| l.contains(marker))
}

/// True if the (comment-stripped) line uses the `unsafe` keyword — as a
/// block, fn, impl or trait — excluding negative mentions like
/// `unsafe_op_in_unsafe_fn` or `forbid(unsafe_code)`.
fn mentions_unsafe(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = rest[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = after
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        // `unsafe` as a lint name appears in attributes like
        // `deny(unsafe_op_in_unsafe_fn)` / `forbid(unsafe_code)`; those are
        // caught by before/after_ok except bare `(unsafe)` forms, which the
        // codebase does not use.
        if before_ok && after_ok && !code.contains("unsafe_code") {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<String> {
        let mut v = Vec::new();
        lint_file(rel, text, &mut v);
        v.iter().map(|x| x.rule.to_string()).collect()
    }

    #[test]
    fn relaxed_without_reason_flagged() {
        let src = "fn f(a: &std::sync::atomic::AtomicU32) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert_eq!(
            lint_str("crates/nm-sync/src/x.rs", src),
            vec!["relaxed-needs-reason"]
        );
    }

    #[test]
    fn relaxed_with_reason_ok() {
        let src = "// relaxed: monotonic counter, only read for stats\nlet v = a.load(Ordering::Relaxed);\n";
        assert!(lint_str("crates/nm-sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn std_mutex_flagged_in_hot_path_only() {
        let src =
            "use std::sync::Mutex;\nstatic M: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n";
        assert!(lint_str("crates/nm-sync/src/x.rs", src)
            .iter()
            .all(|r| r == "hot-path-std-mutex"));
        assert!(lint_str("crates/nm-bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_code_exempt_from_hot_path_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| ()); }\n}\n";
        assert!(lint_str("crates/nm-sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn rwlock_condvar_barrier_flagged_in_hot_path_only() {
        for src in [
            "use std::sync::RwLock;\n",
            "static C: std::sync::Condvar = std::sync::Condvar::new();\n",
            "fn f(b: &std::sync::Barrier) { b.wait(); }\n",
            "fn f() -> sync::RwLock<u32> { todo!() }\n",
        ] {
            assert_eq!(
                lint_str("crates/nm-progress/src/x.rs", src),
                vec!["hot-path-std-sync-primitive"],
                "source: {src}"
            );
            assert!(lint_str("crates/nm-bench/src/x.rs", src).is_empty());
        }
    }

    #[test]
    fn use_list_form_is_caught() {
        // The form that historically dodged the lint: banned primitives
        // hiding inside a brace list.
        let src = "use std::sync::{Arc, Barrier};\n";
        assert_eq!(
            lint_str("crates/core/src/x.rs", src),
            vec!["hot-path-std-sync-primitive"]
        );
        let src = "use std::sync::{Arc, Mutex, OnceLock};\n";
        assert_eq!(
            lint_str("crates/core/src/x.rs", src),
            vec!["hot-path-std-mutex"]
        );
        // Benign list members do not trip the rule, nor do other crates'
        // look-alike paths (sync_shim, parking_lot, loom).
        assert!(lint_str("crates/core/src/x.rs", "use std::sync::{Arc, OnceLock};\n").is_empty());
        assert!(lint_str(
            "crates/nm-sync/src/x.rs",
            "pub use loom::sync::{Condvar, Mutex};\nuse crate::sync_shim::{Condvar, Mutex};\n"
        )
        .is_empty());
    }

    #[test]
    fn multi_line_use_list_is_caught() {
        let src = "use std::sync::{\n    Arc,\n    Condvar,\n    OnceLock,\n};\nfn after() { let Barrier = 1; }\n";
        let rules = lint_str("crates/nm-fabric/src/x.rs", src);
        // Condvar inside the split list is flagged; the `Barrier` ident
        // after the list closed is not (state must reset on `}`).
        assert_eq!(rules, vec!["hot-path-std-sync-primitive"]);
    }

    #[test]
    fn std_sync_marker_waives_primitive_ban() {
        let src = "// std-sync: diagnostic-only guard, must not recurse into lockcheck\n\
                   use std::sync::{Mutex, OnceLock};\n";
        assert!(lint_str("crates/nm-sync/src/x.rs", src).is_empty());
        // The waiver does not extend to bare spawn.
        let src = "// std-sync: justified lock\nfn f() { std::thread::spawn(|| ()); }\n";
        assert_eq!(
            lint_str("crates/nm-sync/src/x.rs", src),
            vec!["hot-path-bare-spawn"]
        );
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(
            lint_str("crates/core/src/x.rs", src),
            vec!["unsafe-needs-safety-comment"]
        );
        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(lint_str("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn lint_attributes_not_flagged_as_unsafe() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#![forbid(unsafe_code)]\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn blocking_wait_in_handler_flagged() {
        let src = "fn f() {\n\
                   let c = Completion::handler(move |ev| {\n\
                   \x20   flag.wait(WaitStrategy::Busy);\n\
                   });\n\
                   }\n";
        assert_eq!(
            lint_str("crates/nm-bench/src/x.rs", src),
            vec!["blocking-wait-in-handler"]
        );
        let src = "let c = Completion::handler(|_| { std::thread::park(); });\n";
        assert_eq!(
            lint_str("crates/nm-bench/src/x.rs", src),
            vec!["blocking-wait-in-handler"]
        );
        let src = "let c = Completion::handler(|_| { sem.acquire_blocking(); });\n";
        assert_eq!(
            lint_str("crates/nm-bench/src/x.rs", src),
            vec!["blocking-wait-in-handler"]
        );
    }

    #[test]
    fn handler_rule_applies_to_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn t() { let c = Completion::handler(|_| { q.wait(s); }); }\n\
                   }\n";
        assert_eq!(
            lint_str("crates/core/src/x.rs", src),
            vec!["blocking-wait-in-handler"]
        );
    }

    #[test]
    fn blocking_calls_outside_handler_region_ok() {
        // The wait happens after the handler argument closed.
        let src = "let c = Completion::handler(|_| done());\n\
                   core.wait(&req, WaitStrategy::Busy).unwrap();\n";
        assert!(lint_str("crates/nm-bench/src/x.rs", src).is_empty());
        // Non-handler code full of waits is rule 4's no-op case.
        let src = "fn f() { core.wait(&req, s).unwrap(); }\n";
        assert!(lint_str("crates/nm-bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn handler_ok_marker_waives_handler_rule() {
        let src = "let c = Completion::handler(|ev| {\n\
                   \x20   // handler-ok: Stats::wait is a nonblocking counter read\n\
                   \x20   stats.wait(ev.id());\n\
                   });\n";
        assert!(lint_str("crates/nm-bench/src/x.rs", src).is_empty());
    }
}
