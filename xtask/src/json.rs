//! Minimal dependency-free JSON support shared by xtask commands.
//!
//! xtask deliberately has no external dependencies, so this module
//! carries a small reader (originally written for `bench-check`) plus a
//! string-escape helper for the writers. The reader covers the subset
//! every xtask schema uses: objects, arrays, strings, numbers, booleans
//! and null. Writers build their documents with `format!` and
//! [`escape`]; none of the schemas are deep enough to need more.

use std::collections::BTreeMap;

/// Minimal JSON value covering what the xtask schemas emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added). Covers the control characters plus `"` and `\`, which is all
/// Rust source paths, lock-class names and diagnostic messages contain.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &[u8], value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so byte boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(
            Json::parse(r#""a\"bA""#).unwrap(),
            Json::String("a\"bA".to_string())
        );
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        let v = Json::parse(r#"{"a": [1, {"b": true}]}"#).unwrap();
        let Json::Object(map) = v else { panic!() };
        assert!(matches!(&map["a"], Json::Array(items) if items.len() == 2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap(), Json::String(nasty.to_string()));
    }
}
