//! Lock-order graph model for `cargo xtask analyze-locks`.
//!
//! The analyzer (`analyze_locks.rs`) extracts acquisition sites and
//! produces a *family-level* may-hold-while-acquiring graph; this module
//! owns the graph itself: class→family normalization, cycle detection
//! with witnesses, the diff against the runtime lockcheck graph, and the
//! generated hierarchy section of `docs/CONCURRENCY.md`.
//!
//! **Families.** Runtime lock classes are per instance index
//! (`core.driver.0` … `core.driver.15`, `core.driver.overflow`); a
//! static pass cannot know indices, so both sides are normalized to the
//! common prefix (`core.driver`). A family-level edge `a → b` means
//! "some instance of `a` may be held while acquiring some instance of
//! `b`". Same-family edges (`a → a`) are possible and legitimate when
//! instances are ordered by index at runtime, so they are reported as
//! warnings, not cycles.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::json::Json;

/// Normalizes a concrete lock class to its family: a trailing numeric
/// index or the literal `overflow` segment is stripped
/// (`core.collect.tx.7` and `core.collect.tx.overflow` are both
/// `core.collect.tx`; `core.api-global` is its own family).
pub fn family_of(class: &str) -> String {
    match class.rsplit_once('.') {
        Some((head, tail))
            if !head.is_empty()
                && (tail == "overflow"
                    || (!tail.is_empty() && tail.chars().all(|c| c.is_ascii_digit()))) =>
        {
            head.to_string()
        }
        _ => class.to_string(),
    }
}

/// One source location inside a named function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub file: String,
    pub line: usize,
    /// Qualified function name (`CommCore::isend`, `free_fn`).
    pub func: String,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} in {}", self.file, self.line, self.func)
    }
}

/// Why the analyzer believes an edge exists: where the `from` lock was
/// taken, where the `to` lock is ultimately acquired, and the call chain
/// connecting them (empty when the acquisition is in the holding
/// function itself).
#[derive(Debug, Clone)]
pub struct EdgeWitness {
    pub held_site: Site,
    pub acquire_site: Site,
    /// Human-readable call chain from the holding function down to the
    /// acquiring function, e.g. `["CommCore::progress", "Engine::poll_all"]`.
    pub chain: Vec<String>,
}

impl EdgeWitness {
    /// Renders the witness as an indented acquisition stack.
    pub fn render(&self, from: &str, to: &str) -> String {
        let mut s = format!(
            "holds `{from}` (taken at {}) while acquiring `{to}` at {}",
            self.held_site, self.acquire_site
        );
        if !self.chain.is_empty() {
            s.push_str(&format!(
                "\n      via calls: {} -> {}",
                self.held_site.func,
                self.chain.join(" -> ")
            ));
        }
        s
    }
}

/// The static family-level may-hold-while-acquiring graph.
#[derive(Debug, Default)]
pub struct StaticGraph {
    /// First witness wins: the earliest (file, line) discovery of an edge
    /// is kept, which is deterministic because files are scanned sorted.
    pub edges: BTreeMap<(String, String), EdgeWitness>,
}

impl StaticGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_edge(&mut self, from: String, to: String, witness: EdgeWitness) {
        self.edges.entry((from, to)).or_insert(witness);
    }

    /// Family-level edge set (no witnesses).
    pub fn edge_set(&self) -> BTreeSet<(String, String)> {
        self.edges.keys().cloned().collect()
    }

    /// Successor families of `from` (excluding self-edges).
    pub fn successors(&self, from: &str) -> BTreeSet<String> {
        self.edges
            .keys()
            .filter(|(a, b)| a == from && b != from)
            .map(|(_, b)| b.clone())
            .collect()
    }

    /// Shortest path `from →* to` over the edges (self-edges ignored),
    /// BFS in deterministic (sorted) order.
    fn path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let mut queue = VecDeque::new();
        queue.push_back(vec![from.to_string()]);
        let mut seen = BTreeSet::new();
        seen.insert(from.to_string());
        while let Some(path) = queue.pop_front() {
            let node = path.last().unwrap();
            if node == to {
                return Some(path);
            }
            for next in self.successors(node) {
                if seen.insert(next.clone()) || next == to {
                    let mut p = path.clone();
                    p.push(next);
                    queue.push_back(p);
                }
            }
        }
        None
    }

    /// Elementary cycles through the recorded edges (self-edges excluded
    /// — see the module docs), deduplicated by node set, each rotated so
    /// the lexicographically smallest family comes first. The returned
    /// vectors do not repeat the first node at the end.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for (a, b) in self.edges.keys() {
            if a == b {
                continue;
            }
            if let Some(back) = self.path(b, a) {
                // a → b (this edge) plus back = [b, ..., a].
                let mut nodes = vec![a.clone()];
                nodes.extend(back.into_iter().filter(|n| n != a));
                let canon = canonical_rotation(&nodes);
                if seen.insert(canon.clone()) {
                    out.push(canon);
                }
            }
        }
        out
    }

    /// Same-family edges (`a → a`): legitimate only under a runtime
    /// index-ordering discipline the static pass cannot verify.
    pub fn self_edges(&self) -> Vec<(&str, &EdgeWitness)> {
        self.edges
            .iter()
            .filter(|((a, b), _)| a == b)
            .map(|((a, _), w)| (a.as_str(), w))
            .collect()
    }

    /// All families, topologically ordered outermost → innermost by the
    /// (self-edge-free) graph, alphabetical among ties; any leftover from
    /// a cycle is appended alphabetically. `extra` adds families with no
    /// edges at all (leaf locks never nested with anything).
    pub fn topo_families(&self, extra: &BTreeSet<String>) -> Vec<String> {
        let mut nodes: BTreeSet<String> = extra.clone();
        for (a, b) in self.edges.keys() {
            nodes.insert(a.clone());
            nodes.insert(b.clone());
        }
        let mut indegree: BTreeMap<&str, usize> = nodes.iter().map(|n| (n.as_str(), 0)).collect();
        for (a, b) in self.edges.keys() {
            if a != b {
                *indegree.get_mut(b.as_str()).unwrap() += 1;
            }
        }
        let mut order = Vec::new();
        let mut ready: BTreeSet<&str> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        while let Some(&n) = ready.iter().next() {
            ready.remove(n);
            order.push(n.to_string());
            for succ in self.successors(n) {
                let d = indegree.get_mut(succ.as_str()).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.insert(nodes.get(&succ).unwrap().as_str());
                }
            }
        }
        for n in &nodes {
            if !order.contains(n) {
                order.push(n.clone());
            }
        }
        order
    }
}

fn canonical_rotation(nodes: &[String]) -> Vec<String> {
    let min_pos = nodes
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| n.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(nodes.len());
    for k in 0..nodes.len() {
        out.push(nodes[(min_pos + k) % nodes.len()].clone());
    }
    out
}

/// One edge of the runtime lockcheck graph (raw per-index classes).
#[derive(Debug, Clone)]
pub struct RuntimeEdge {
    pub from: String,
    pub to: String,
}

/// Parsed `nm_sync::lockcheck::dump_graph_json()` document.
#[derive(Debug)]
pub struct RuntimeGraph {
    pub enabled: bool,
    pub edges: Vec<RuntimeEdge>,
}

impl RuntimeGraph {
    /// Family-normalized edge set, self-family edges included (a runtime
    /// `tx.0 → tx.3` nesting is real evidence the static pass must
    /// predict as `core.collect.tx → core.collect.tx`).
    pub fn family_edges(&self) -> BTreeSet<(String, String)> {
        self.edges
            .iter()
            .map(|e| (family_of(&e.from), family_of(&e.to)))
            .collect()
    }
}

/// Parses the runtime graph JSON (schema 1).
pub fn parse_runtime_graph(doc: &str) -> Result<RuntimeGraph, String> {
    let Json::Object(top) = Json::parse(doc)? else {
        return Err("runtime graph: top level is not an object".into());
    };
    match top.get("schema") {
        Some(Json::Number(n)) if *n == 1.0 => {}
        other => return Err(format!("runtime graph: unsupported schema {other:?}")),
    }
    let enabled = match top.get("enabled") {
        Some(Json::Bool(b)) => *b,
        other => return Err(format!("runtime graph: bad enabled field {other:?}")),
    };
    let Some(Json::Array(edges)) = top.get("edges") else {
        return Err("runtime graph: missing edges array".into());
    };
    let mut out = Vec::new();
    for e in edges {
        let Json::Object(e) = e else {
            return Err("runtime graph: edge is not an object".into());
        };
        let field = |k: &str| -> Result<String, String> {
            match e.get(k) {
                Some(Json::String(s)) => Ok(s.clone()),
                other => Err(format!("runtime graph: edge {k} is {other:?}")),
            }
        };
        // `held` (the full stack at acquisition) is validated but not
        // needed: the cross-check runs on (from, to) family pairs.
        if !matches!(e.get("held"), Some(Json::Array(_))) {
            return Err("runtime graph: edge missing held array".into());
        }
        out.push(RuntimeEdge {
            from: field("from")?,
            to: field("to")?,
        });
    }
    Ok(RuntimeGraph {
        enabled,
        edges: out,
    })
}

/// Static-vs-runtime family-edge diff.
#[derive(Debug)]
pub struct CrossCheck {
    /// Runtime edges the static pass did not predict: analyzer soundness
    /// bugs, a hard failure.
    pub soundness: Vec<(String, String)>,
    /// Statically-possible edges never exercised at runtime: coverage
    /// gaps, ranked most-plausible first (both endpoints runtime-known >
    /// one endpoint > neither; alphabetical within a rank).
    pub unexercised: Vec<(String, String)>,
}

pub fn cross_check(
    static_edges: &BTreeSet<(String, String)>,
    runtime_edges: &BTreeSet<(String, String)>,
) -> CrossCheck {
    let soundness: Vec<_> = runtime_edges
        .iter()
        .filter(|e| !static_edges.contains(*e))
        .cloned()
        .collect();
    let runtime_nodes: BTreeSet<&str> = runtime_edges
        .iter()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .collect();
    let mut unexercised: Vec<_> = static_edges
        .iter()
        .filter(|e| !runtime_edges.contains(*e))
        .cloned()
        .collect();
    unexercised.sort_by_key(|(a, b)| {
        let known = runtime_nodes.contains(a.as_str()) as usize
            + runtime_nodes.contains(b.as_str()) as usize;
        (2 - known, a.clone(), b.clone())
    });
    CrossCheck {
        soundness,
        unexercised,
    }
}

/// Per-family class inventory for the generated docs section.
#[derive(Debug, Default, Clone)]
pub struct FamilyInfo {
    /// Concrete single classes observed in definitions.
    pub classes: BTreeSet<String>,
    /// Family has a per-index class table (`<family>.<i>`).
    pub indexed: bool,
    /// Family has a shared `<family>.overflow` class.
    pub overflow: bool,
}

impl FamilyInfo {
    fn render_classes(&self, family: &str) -> String {
        let mut parts = Vec::new();
        if self.indexed {
            parts.push(format!("`{family}.<i>` (per index)"));
        }
        if self.overflow {
            parts.push(format!("`{family}.overflow` (shared)"));
        }
        for c in &self.classes {
            parts.push(format!("`{c}`"));
        }
        parts.join(", ")
    }
}

/// Markers delimiting the generated hierarchy in `docs/CONCURRENCY.md`.
pub const DOC_BEGIN: &str = "<!-- analyze-locks:begin generated hierarchy -->";
pub const DOC_END: &str = "<!-- analyze-locks:end generated hierarchy -->";

/// Renders the generated hierarchy section (the text between [`DOC_BEGIN`]
/// and [`DOC_END`], exclusive). Deterministic for a given graph.
pub fn render_hierarchy(graph: &StaticGraph, families: &BTreeMap<String, FamilyInfo>) -> String {
    let all: BTreeSet<String> = families.keys().cloned().collect();
    let order = graph.topo_families(&all);
    let mut s = String::new();
    s.push_str(
        "_Generated by `cargo xtask analyze-locks --write-docs` from the static\n\
         may-hold-while-acquiring graph; CI fails on drift. Do not edit by hand._\n\n\
         Families ordered outermost → innermost (topological; ties alphabetical):\n\n\
         | # | lock family | concrete classes | may be held while acquiring |\n\
         |---|-------------|------------------|------------------------------|\n",
    );
    let default_info = FamilyInfo::default();
    for (i, fam) in order.iter().enumerate() {
        let info = families.get(fam).unwrap_or(&default_info);
        let succ = graph.successors(fam);
        let succ = if succ.is_empty() {
            "—".to_string()
        } else {
            succ.iter()
                .map(|f| format!("`{f}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let classes = if info.classes.is_empty() && !info.indexed && !info.overflow {
            format!("`{fam}`")
        } else {
            info.render_classes(fam)
        };
        s.push_str(&format!("| {} | `{fam}` | {classes} | {succ} |\n", i + 1));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(f: &str) -> Site {
        Site {
            file: "x.rs".into(),
            line: 1,
            func: f.into(),
        }
    }

    fn w(f: &str) -> EdgeWitness {
        EdgeWitness {
            held_site: site(f),
            acquire_site: site(f),
            chain: Vec::new(),
        }
    }

    #[test]
    fn family_normalization() {
        assert_eq!(family_of("core.driver.15"), "core.driver");
        assert_eq!(family_of("core.collect.tx.overflow"), "core.collect.tx");
        assert_eq!(family_of("core.api-global"), "core.api-global");
        assert_eq!(family_of("core.request.data"), "core.request.data");
        assert_eq!(family_of("progress.sources"), "progress.sources");
        assert_eq!(family_of("noDots"), "noDots");
    }

    #[test]
    fn acyclic_graph_reports_no_cycles() {
        let mut g = StaticGraph::new();
        g.add_edge("a".into(), "b".into(), w("f"));
        g.add_edge("a".into(), "c".into(), w("f"));
        g.add_edge("b".into(), "c".into(), w("f"));
        assert!(g.cycles().is_empty());
        assert_eq!(g.topo_families(&BTreeSet::new()), ["a", "b", "c"]);
    }

    #[test]
    fn cycle_found_and_deduplicated() {
        let mut g = StaticGraph::new();
        g.add_edge("b".into(), "c".into(), w("f"));
        g.add_edge("c".into(), "a".into(), w("f"));
        g.add_edge("a".into(), "b".into(), w("f"));
        let cycles = g.cycles();
        // One 3-cycle, found from three edges but canonicalized once.
        assert_eq!(cycles, vec![vec!["a", "b", "c"]]);
    }

    #[test]
    fn self_edges_are_warnings_not_cycles() {
        let mut g = StaticGraph::new();
        g.add_edge("a".into(), "a".into(), w("f"));
        assert!(g.cycles().is_empty());
        assert_eq!(g.self_edges().len(), 1);
    }

    #[test]
    fn parse_runtime_graph_roundtrip() {
        let doc = r#"{"schema": 1, "enabled": true, "edges": [
            {"from": "core.api-global", "to": "core.request.tag", "held": ["core.api-global"]},
            {"from": "core.collect.tx.0", "to": "core.driver.3", "held": ["core.collect.tx.0"]}
        ]}"#;
        let rt = parse_runtime_graph(doc).unwrap();
        assert!(rt.enabled);
        assert_eq!(rt.edges.len(), 2);
        let fams = rt.family_edges();
        assert!(fams.contains(&("core.collect.tx".into(), "core.driver".into())));
        assert!(parse_runtime_graph("{\"schema\": 2, \"enabled\": true, \"edges\": []}").is_err());
    }

    #[test]
    fn cross_check_classifies_both_directions() {
        let stat: BTreeSet<_> = [
            ("a".to_string(), "b".to_string()),
            ("a".to_string(), "c".to_string()),
            ("x".to_string(), "y".to_string()),
        ]
        .into();
        let runtime: BTreeSet<_> = [
            ("a".to_string(), "b".to_string()),
            ("q".to_string(), "r".to_string()),
        ]
        .into();
        let cc = cross_check(&stat, &runtime);
        assert_eq!(cc.soundness, vec![("q".to_string(), "r".to_string())]);
        // (a,c) ranks above (x,y): `a` is a runtime-known node.
        assert_eq!(
            cc.unexercised,
            vec![
                ("a".to_string(), "c".to_string()),
                ("x".to_string(), "y".to_string())
            ]
        );
    }

    #[test]
    fn hierarchy_rendering_is_deterministic_and_ordered() {
        let mut g = StaticGraph::new();
        g.add_edge("outer".into(), "inner".into(), w("f"));
        let mut fams = BTreeMap::new();
        fams.insert(
            "outer".to_string(),
            FamilyInfo {
                classes: ["outer".to_string()].into(),
                ..Default::default()
            },
        );
        fams.insert(
            "inner".to_string(),
            FamilyInfo {
                indexed: true,
                overflow: true,
                ..Default::default()
            },
        );
        fams.insert("leaf".to_string(), FamilyInfo::default());
        let doc = render_hierarchy(&g, &fams);
        let outer_pos = doc.find("| `outer` |").unwrap();
        let inner_pos = doc.find("| `inner` |").unwrap();
        assert!(outer_pos < inner_pos, "{doc}");
        assert!(
            doc.contains("`inner.<i>` (per index), `inner.overflow` (shared)"),
            "{doc}"
        );
        assert_eq!(doc, render_hierarchy(&g, &fams));
    }
}
