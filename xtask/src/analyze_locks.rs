//! `cargo xtask analyze-locks`: whole-program static lock-order analysis.
//!
//! The runtime `lockcheck` feature (nm-sync) validates lock ordering on
//! the paths tests actually execute; this pass covers the paths they
//! don't. It lexes every production source file ([`crate::rslex`] — no
//! external parser dependencies), extracts every classed acquisition
//! site, simulates guard scopes, and builds a conservative, call-graph-
//! aware *may-hold-while-acquiring* graph over lock **families**
//! ([`crate::lockgraph`]). It then reports:
//!
//! * **cycles** (potential deadlocks) with both acquisition stacks,
//! * **soundness diffs** — runtime-observed edges the static pass missed
//!   (a bug in this analyzer, hard CI failure),
//! * **coverage gaps** — statically-possible edges never exercised at
//!   runtime (ranked; informational), and
//! * **docs drift** — the generated hierarchy section of
//!   `docs/CONCURRENCY.md` must match the current graph.
//!
//! ## What counts as an acquisition
//!
//! * `*.enter_api()` — the API-entry guard, class `core.api-global`.
//! * `*.enter(SectionKind::X(..))` — policy sections; the variant maps to
//!   the family (`CollectTx` → `core.collect.tx`, ...). The mapping
//!   mirrors `LockPolicy::new`; drift is caught by the runtime
//!   cross-check.
//! * `recv.field.lock()` where `field` was bound to a class by a
//!   `with_class("...")` initializer anywhere in the tree (e.g.
//!   `data: SpinLock::with_class("core.request.data", ..)` makes every
//!   `.data.lock()` an acquisition of `core.request.data`).
//!
//! A `let g = <pure receiver chain>.lock();`-shaped statement binds a
//! guard that stays held until `drop(g)` or scope exit; any other
//! acquisition (`*x.lock() = v`, `f(&*x.lock())`) is a statement
//! temporary: it records edges against the currently-held set but is
//! never itself held across a call.
//!
//! ## Deliberate approximations
//!
//! * Calls resolve by name (method receiver types are unknown without
//!   type inference): `self.f()` prefers the same impl block, `T::f()`
//!   prefers `impl T`, everything else matches any function named `f`.
//!   Over-approximation only creates extra (info-level) edges.
//! * `.poll()` / `.post()` / `.can_post()` method calls are assumed
//!   leaf: they are `dyn Driver` NIC operations whose implementations
//!   take no classed locks, and resolving `poll` by name would conflate
//!   them with `PollSource::poll` (which re-enters the whole library and
//!   would fabricate a `core.driver → core.api-global` cycle). The
//!   runtime cross-check guards this assumption: if a NIC ever takes a
//!   classed lock under a held one, the observed edge fails the
//!   soundness diff.
//! * `tests/`, `benches/`, `examples/`, `#[cfg(test)]` items and the
//!   lock-primitive internals (`nm-sync/src`, `core/src/locking.rs`) are
//!   excluded; the analysis models policy guards at their call sites.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::findings::{Finding, OutputOpts, Severity};
use crate::lockgraph::{
    self, cross_check, family_of, parse_runtime_graph, EdgeWitness, FamilyInfo, Site, StaticGraph,
};
use crate::rslex::{lex, Tok, TokKind};

/// Method names assumed to acquire nothing (see the module docs).
const ASSUMED_LEAF: &[&str] = &[
    "poll",
    "post",
    "can_post",
    "poll_vci",
    "post_vci",
    "can_post_vci",
    "next_event_ns_vci",
    "num_vcis",
];

/// `SectionKind` variant → lock family (mirrors `LockPolicy::new`).
const SECTION_FAMILIES: &[(&str, &str)] = &[
    ("Global", "core.api-global"),
    ("CollectTx", "core.collect.tx"),
    ("CollectRx", "core.collect.rx"),
    ("Vci", "core.vci"),
    ("Retrans", "core.retrans"),
    ("Driver", "core.driver"),
];

const API_FAMILY: &str = "core.api-global";

/// Identifiers that look like calls but are control flow.
const NOT_CALLS: &[&str] = &["if", "while", "for", "match", "return", "loop", "in", "as"];

// ---------------------------------------------------------------------------
// Extraction data model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Held {
    family: String,
    line: usize,
}

#[derive(Debug)]
struct Acq {
    family: String,
    line: usize,
    held: Vec<Held>,
}

#[derive(Debug, PartialEq)]
enum CallKind {
    /// `self.f(..)` — exactly `self` as the receiver.
    SelfMethod,
    /// `recv.f(..)` — any other method call.
    Method,
    /// `T::f(..)`.
    TypePath(String),
    /// `f(..)`.
    Free,
}

#[derive(Debug)]
struct CallSite {
    name: String,
    kind: CallKind,
    line: usize,
    held: Vec<Held>,
}

#[derive(Debug)]
struct FnInfo {
    /// `Type::name` or bare `name`.
    qualified: String,
    name: String,
    impl_type: Option<String>,
    file: String,
    acqs: Vec<Acq>,
    calls: Vec<CallSite>,
}

#[derive(Debug, Default)]
struct Analysis {
    fns: Vec<FnInfo>,
    families: BTreeMap<String, FamilyInfo>,
    /// Field/binding name → concrete class (from `with_class` inits).
    bindings: BTreeMap<String, String>,
    warnings: Vec<Finding>,
    files_scanned: usize,
}

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

/// Index of the punct matching the opener at `open` (`(`/`)`, `[`/`]`,
/// `{`/`}`); `toks.len()` if unbalanced.
fn matching(toks: &[Tok], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is(oc) {
            depth += 1;
        } else if t.is(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// Removes `#[cfg(test)]`-gated items (functions, impls, and `mod x { .. }`
/// blocks) from the token stream; returns the surviving tokens plus the
/// names of `#[cfg(test)] mod x;` out-of-line module declarations so their
/// files can be skipped too.
fn strip_cfg_test(toks: &[Tok]) -> (Vec<Tok>, Vec<String>) {
    let mut out = Vec::with_capacity(toks.len());
    let mut test_mods = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is('#') && toks.get(i + 1).is_some_and(|t| t.is('[')) {
            let close = matching(toks, i + 1, '[', ']');
            let content = &toks[i + 2..close.min(toks.len())];
            let is_test_cfg = content.first().and_then(Tok::ident) == Some("cfg")
                && content.iter().any(|t| t.ident() == Some("test"));
            if is_test_cfg {
                // Skip any further attributes, then the whole item.
                let mut j = close + 1;
                while j < toks.len()
                    && toks[j].is('#')
                    && toks.get(j + 1).is_some_and(|t| t.is('['))
                {
                    j = matching(toks, j + 1, '[', ']') + 1;
                }
                let item_start = j;
                while j < toks.len() {
                    if toks[j].is(';') {
                        // Declaration form: `mod name;` (or use/static).
                        if toks[item_start].ident() == Some("mod") {
                            if let Some(name) = toks.get(item_start + 1).and_then(Tok::ident) {
                                test_mods.push(name.to_string());
                            }
                        }
                        j += 1;
                        break;
                    }
                    if toks[j].is('{') {
                        j = matching(toks, j, '{', '}') + 1;
                        break;
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            // Not test-gated: keep the attribute tokens verbatim.
            out.extend_from_slice(&toks[i..=close.min(toks.len() - 1)]);
            i = close + 1;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    (out, test_mods)
}

// ---------------------------------------------------------------------------
// Class-definition scan
// ---------------------------------------------------------------------------

/// Records lock-class definitions: `with_class("lit")` /
/// `with_shared_class("lit")` (plus the binding they initialize),
/// `classed_spins(.., "family.overflow")` and `lock_class_table!("prefix"; ..)`.
fn scan_defs(
    toks: &[Tok],
    families: &mut BTreeMap<String, FamilyInfo>,
    bindings: &mut BTreeMap<String, String>,
) {
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        match name {
            "with_class" | "with_shared_class" => {
                if !toks.get(i + 1).is_some_and(|t| t.is('(')) {
                    continue;
                }
                let Some(TokKind::Str(class)) = toks.get(i + 2).map(|t| &t.kind) else {
                    continue; // e.g. the constructor definition itself
                };
                record_class(families, class);
                // Binding: `field: Type::with_class("..")` or
                // `let name = Type::with_class("..")`.
                let mut p = i;
                if p >= 3
                    && toks[p - 1].is(':')
                    && toks[p - 2].is(':')
                    && toks[p - 3].ident().is_some()
                {
                    p -= 3; // skip the `Type::` path segment
                }
                // Field init (`name: ...with_class`) and let binding
                // (`name = ...with_class`) record the same mapping.
                let is_field = p >= 2 && toks[p - 1].is(':') && !toks[p - 2].is(':');
                let is_let = p >= 2 && toks[p - 1].is('=');
                if is_field || is_let {
                    if let Some(name) = toks[p - 2].ident() {
                        bindings.insert(name.to_string(), class.clone());
                    }
                }
            }
            "classed_spins" => {
                if !toks.get(i + 1).is_some_and(|t| t.is('(')) {
                    continue;
                }
                let close = matching(toks, i + 1, '(', ')');
                for t in &toks[i + 2..close.min(toks.len())] {
                    if let TokKind::Str(s) = &t.kind {
                        record_class(families, s);
                        families.entry(family_of(s)).or_default().indexed = true;
                    }
                }
            }
            "lock_class_table" => {
                let bang = toks.get(i + 1).is_some_and(|t| t.is('!'));
                if let (true, Some(TokKind::Str(prefix))) = (bang, toks.get(i + 3).map(|t| &t.kind))
                {
                    families.entry(prefix.clone()).or_default().indexed = true;
                }
            }
            _ => {}
        }
    }
}

fn record_class(families: &mut BTreeMap<String, FamilyInfo>, class: &str) {
    let fam = family_of(class);
    let info = families.entry(fam.clone()).or_default();
    if class == fam {
        info.classes.insert(class.to_string());
    } else if class.ends_with(".overflow") {
        info.overflow = true;
    } else {
        info.indexed = true;
    }
}

// ---------------------------------------------------------------------------
// Function-body scan
// ---------------------------------------------------------------------------

struct HeldEntry {
    binding: String,
    family: String,
    line: usize,
    depth: usize,
}

struct CurFn {
    info: FnInfo,
    body_depth: usize,
    held: Vec<HeldEntry>,
}

/// Walks one file's (test-stripped) tokens, collecting per-function
/// acquisition and call sites with their held-lock context.
fn scan_fns(
    rel: &str,
    toks: &[Tok],
    bindings: &BTreeMap<String, String>,
    fns: &mut Vec<FnInfo>,
    warnings: &mut Vec<Finding>,
) {
    let mut depth = 0usize;
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_fn: Option<String> = None;
    let mut cur: Option<CurFn> = None;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is('{') {
            depth += 1;
            if let Some(ty) = pending_impl.take() {
                impl_stack.push((depth, ty));
            } else if let Some(name) = pending_fn.take() {
                if cur.is_none() {
                    let impl_type = impl_stack.last().map(|(_, t)| t.clone());
                    let qualified = match &impl_type {
                        Some(t) => format!("{t}::{name}"),
                        None => name.clone(),
                    };
                    cur = Some(CurFn {
                        info: FnInfo {
                            qualified,
                            name,
                            impl_type,
                            file: rel.to_string(),
                            acqs: Vec::new(),
                            calls: Vec::new(),
                        },
                        body_depth: depth,
                        held: Vec::new(),
                    });
                }
            }
            i += 1;
            continue;
        }
        if t.is('}') {
            depth = depth.saturating_sub(1);
            if let Some(c) = &mut cur {
                c.held.retain(|h| h.depth <= depth);
                if depth < c.body_depth {
                    let done = cur.take().unwrap();
                    fns.push(done.info);
                }
            }
            if impl_stack.last().is_some_and(|(d, _)| depth < *d) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is(';') {
            // A `;` before any `{` cancels a pending signature (trait
            // method declaration) or impl-less item.
            pending_fn = None;
            i += 1;
            continue;
        }
        let Some(name) = t.ident() else {
            i += 1;
            continue;
        };
        match name {
            "impl" if cur.is_none() => {
                pending_impl = parse_impl_type(toks, i);
                i += 1;
                continue;
            }
            "fn" => {
                if cur.is_none() {
                    pending_fn = toks.get(i + 1).and_then(Tok::ident).map(String::from);
                }
                i += 2;
                continue;
            }
            _ => {}
        }
        let Some(c) = &mut cur else {
            i += 1;
            continue;
        };
        let is_call_shape = toks.get(i + 1).is_some_and(|t| t.is('('));
        if !is_call_shape {
            i += 1;
            continue;
        }
        let line = t.line;
        let prev_dot = i >= 1 && toks[i - 1].is('.');
        // Acquisition patterns first — they must not double as calls.
        if name == "enter_api" && prev_dot {
            handle_acquisition(c, toks, i, API_FAMILY.to_string(), line, depth);
            i += 1;
            continue;
        }
        if name == "enter" && prev_dot {
            // Expect `.enter(SectionKind::Variant ...)`.
            let fam = if toks.get(i + 2).and_then(Tok::ident) == Some("SectionKind")
                && toks.get(i + 3).is_some_and(|t| t.is(':'))
            {
                toks.get(i + 5)
                    .and_then(Tok::ident)
                    .and_then(|v| SECTION_FAMILIES.iter().find(|(k, _)| *k == v))
                    .map(|(_, f)| f.to_string())
            } else {
                None
            };
            match fam {
                Some(fam) => handle_acquisition(c, toks, i, fam, line, depth),
                None => warnings.push(Finding::new(
                    "lock-unresolved-section",
                    Severity::Warning,
                    rel,
                    line,
                    "`.enter(..)` with a non-literal SectionKind — the static \
                     analysis cannot classify this acquisition"
                        .to_string(),
                )),
            }
            i += 1;
            continue;
        }
        if name == "lock" && prev_dot && i >= 2 {
            if let Some(field) = toks[i - 2].ident() {
                if let Some(class) = bindings.get(field) {
                    handle_acquisition(c, toks, i, family_of(class), line, depth);
                    i += 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if name == "drop" && !prev_dot {
            if let (Some(var), true) = (
                toks.get(i + 2).and_then(Tok::ident),
                toks.get(i + 3).is_some_and(|t| t.is(')')),
            ) {
                if let Some(pos) = c.held.iter().rposition(|h| h.binding == var) {
                    c.held.remove(pos);
                }
            }
            i += 1;
            continue;
        }
        // Ordinary call site.
        if NOT_CALLS.contains(&name) || (i >= 1 && toks[i - 1].ident() == Some("fn")) {
            i += 1;
            continue;
        }
        let kind = if prev_dot {
            if i >= 2
                && toks[i - 2].ident() == Some("self")
                && !(i >= 3 && (toks[i - 3].is('.') || toks[i - 3].is(':')))
            {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            }
        } else if i >= 3
            && toks[i - 1].is(':')
            && toks[i - 2].is(':')
            && toks[i - 3].ident().is_some()
        {
            CallKind::TypePath(toks[i - 3].ident().unwrap().to_string())
        } else {
            CallKind::Free
        };
        c.info.calls.push(CallSite {
            name: name.to_string(),
            kind,
            line,
            held: snapshot(&c.held),
        });
        i += 1;
    }
    if let Some(done) = cur.take() {
        fns.push(done.info); // unbalanced braces: salvage what we have
    }
}

fn snapshot(held: &[HeldEntry]) -> Vec<Held> {
    held.iter()
        .map(|h| Held {
            family: h.family.clone(),
            line: h.line,
        })
        .collect()
}

/// Records an acquisition at token `i` (the method name) and, when the
/// statement is a `let guard = <pure receiver chain>.m(..);`, pushes the
/// guard onto the held stack.
fn handle_acquisition(
    c: &mut CurFn,
    toks: &[Tok],
    i: usize,
    family: String,
    line: usize,
    depth: usize,
) {
    c.info.acqs.push(Acq {
        family: family.clone(),
        line,
        held: snapshot(&c.held),
    });
    // Walk back over the receiver chain: (`.` Ident)* to the root ident.
    let mut root = i;
    while root >= 2 && toks[root - 1].is('.') && toks[root - 2].ident().is_some() {
        root -= 2;
    }
    // `let [mut] name = chain.m(..);` — guard binding.
    if root < 2 || !toks[root - 1].is('=') {
        return;
    }
    let Some(binding) = toks[root - 2].ident() else {
        return;
    };
    let let_pos = if root >= 3 && toks[root - 3].ident() == Some("mut") {
        root.checked_sub(4)
    } else {
        root.checked_sub(3)
    };
    if let_pos.and_then(|p| toks.get(p)).and_then(Tok::ident) != Some("let") {
        return;
    }
    // The guard must be the whole RHS: `...m(args);` with `;` right after.
    let close = matching(toks, i + 1, '(', ')');
    if !toks.get(close + 1).is_some_and(|t| t.is(';')) {
        return;
    }
    // Shadowing at the same depth replaces the old guard.
    c.held
        .retain(|h| !(h.binding == binding && h.depth >= depth));
    c.held.push(HeldEntry {
        binding: binding.to_string(),
        family,
        line,
        depth,
    });
}

/// Extracts the Self type of an `impl` block header starting at `i`.
fn parse_impl_type(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut after_for: Option<usize> = None;
    while j < toks.len() && !toks[j].is('{') && !toks[j].is(';') {
        if toks[j].is('<') {
            angle += 1;
        } else if toks[j].is('>') && !(j >= 1 && toks[j - 1].is('-')) {
            angle -= 1;
        } else if angle == 0 && toks[j].ident() == Some("for") {
            after_for = Some(j + 1);
        } else if angle == 0 && toks[j].ident() == Some("where") {
            break;
        }
        j += 1;
    }
    let start = after_for.unwrap_or(i + 1);
    // Read a path, return its last segment before `<`, `{` or `where`.
    let mut last = None;
    let mut k = start;
    let mut angle = 0i32;
    while k < toks.len() && !toks[k].is('{') {
        match &toks[k].kind {
            TokKind::Ident(s) if angle == 0 => {
                if s == "where" || s == "for" {
                    break;
                }
                last = Some(s.clone());
            }
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct(':') | TokKind::Punct('&') => {}
            _ if angle == 0 => break,
            _ => {}
        }
        k += 1;
    }
    last
}

// ---------------------------------------------------------------------------
// Graph construction (transitive fixpoint)
// ---------------------------------------------------------------------------

/// How a function came to (transitively) acquire a family.
#[derive(Debug, Clone)]
enum Prov {
    Direct { line: usize },
    Via { callee: usize, call_line: usize },
}

fn resolve(
    call: &CallSite,
    caller: &FnInfo,
    by_name: &BTreeMap<&str, Vec<usize>>,
    typed: &BTreeMap<(String, String), Vec<usize>>,
    known_types: &BTreeSet<&str>,
) -> Vec<usize> {
    let named = || by_name.get(call.name.as_str()).cloned().unwrap_or_default();
    match &call.kind {
        CallKind::SelfMethod => match &caller.impl_type {
            Some(t) => typed
                .get(&(t.clone(), call.name.clone()))
                .cloned()
                .unwrap_or_else(named),
            None => named(),
        },
        CallKind::TypePath(t) => {
            let t = if t == "Self" {
                match &caller.impl_type {
                    Some(own) => own.as_str(),
                    None => return named(),
                }
            } else {
                t.as_str()
            };
            if let Some(v) = typed.get(&(t.to_string(), call.name.clone())) {
                return v.clone();
            }
            // `Type::f` with an Uppercase type we never saw an impl for is
            // an external constructor (`Arc::new`, `Vec::with_capacity`):
            // resolving those by bare name would conflate them with every
            // local `fn new`. Lowercase segments are module paths
            // (`module::helper()`) whose target is a local free fn.
            if t.starts_with(|c: char| c.is_ascii_uppercase()) && !known_types.contains(t) {
                Vec::new()
            } else {
                named()
            }
        }
        CallKind::Method => {
            if ASSUMED_LEAF.contains(&call.name.as_str()) {
                Vec::new()
            } else {
                named()
            }
        }
        CallKind::Free => named(),
    }
}

/// Computes per-function transitive acquire sets and assembles the
/// family-level static graph with witnesses.
fn build_graph(analysis: &Analysis) -> StaticGraph {
    let fns = &analysis.fns;
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut typed: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut known_types: BTreeSet<&str> = BTreeSet::new();
    for (idx, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(idx);
        if let Some(t) = &f.impl_type {
            known_types.insert(t.as_str());
            typed
                .entry((t.clone(), f.name.clone()))
                .or_default()
                .push(idx);
        }
    }

    // Acquire sets: family → provenance, first insertion wins.
    let mut acq_sets: Vec<BTreeMap<String, Prov>> = fns
        .iter()
        .map(|f| {
            let mut m = BTreeMap::new();
            for a in &f.acqs {
                m.entry(a.family.clone())
                    .or_insert(Prov::Direct { line: a.line });
            }
            m
        })
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..fns.len() {
            for call in &fns[idx].calls {
                for callee in resolve(call, &fns[idx], &by_name, &typed, &known_types) {
                    if callee == idx {
                        continue;
                    }
                    let fams: Vec<String> = acq_sets[callee].keys().cloned().collect();
                    for fam in fams {
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            acq_sets[idx].entry(fam)
                        {
                            e.insert(Prov::Via {
                                callee,
                                call_line: call.line,
                            });
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Witness chain: follow provenance links down to the direct site.
    let trace = |start: usize, family: &str| -> (Site, Vec<String>) {
        let mut chain = Vec::new();
        let mut cur = start;
        for _ in 0..64 {
            match &acq_sets[cur].get(family) {
                Some(Prov::Direct { line }) => {
                    return (
                        Site {
                            file: fns[cur].file.clone(),
                            line: *line,
                            func: fns[cur].qualified.clone(),
                        },
                        chain,
                    );
                }
                Some(Prov::Via { callee, call_line }) => {
                    chain.push(format!(
                        "{} ({}:{})",
                        fns[*callee].qualified, fns[cur].file, call_line
                    ));
                    cur = *callee;
                }
                None => break,
            }
        }
        (
            Site {
                file: fns[start].file.clone(),
                line: 0,
                func: fns[start].qualified.clone(),
            },
            chain,
        )
    };

    let mut graph = StaticGraph::new();
    for (idx, f) in fns.iter().enumerate() {
        for a in &f.acqs {
            for h in &a.held {
                graph.add_edge(
                    h.family.clone(),
                    a.family.clone(),
                    EdgeWitness {
                        held_site: Site {
                            file: f.file.clone(),
                            line: h.line,
                            func: f.qualified.clone(),
                        },
                        acquire_site: Site {
                            file: f.file.clone(),
                            line: a.line,
                            func: f.qualified.clone(),
                        },
                        chain: Vec::new(),
                    },
                );
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for callee in resolve(call, f, &by_name, &typed, &known_types) {
                if callee == idx {
                    continue;
                }
                let fams: Vec<String> = acq_sets[callee].keys().cloned().collect();
                for fam in fams {
                    let (site, mut chain) = trace(callee, &fam);
                    chain.insert(
                        0,
                        format!("{} ({}:{})", fns[callee].qualified, f.file, call.line),
                    );
                    for h in &call.held {
                        graph.add_edge(
                            h.family.clone(),
                            fam.clone(),
                            EdgeWitness {
                                held_site: Site {
                                    file: f.file.clone(),
                                    line: h.line,
                                    func: f.qualified.clone(),
                                },
                                acquire_site: site.clone(),
                                chain: chain.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
    graph
}

// ---------------------------------------------------------------------------
// Source collection
// ---------------------------------------------------------------------------

/// `true` for paths outside the production scan set.
fn excluded(rel: &str) -> bool {
    let top_level = [
        "xtask/",
        "compat/",
        "tests/",
        "examples/",
        "benches/",
        "target/",
    ];
    top_level.iter().any(|p| rel.starts_with(p))
        || ["/tests/", "/examples/", "/benches/"]
            .iter()
            .any(|p| rel.contains(p))
}

/// Files whose acquisitions are lock-primitive internals the analysis
/// models at call sites instead (still scanned for class definitions).
fn defs_only(rel: &str) -> bool {
    rel.starts_with("crates/nm-sync/src/") || rel == "crates/core/src/locking.rs"
}

/// Runs the full extraction over in-memory `(relative path, source)`
/// pairs (the disk walk and the unit tests share this entry point).
fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut lexed: Vec<(String, Vec<Tok>)> = Vec::new();
    let mut test_mod_files: BTreeSet<String> = BTreeSet::new();
    for (rel, src) in files {
        let (toks, test_mods) = strip_cfg_test(&lex(src));
        let dir = match rel.rfind('/') {
            Some(p) => &rel[..p + 1],
            None => "",
        };
        for m in test_mods {
            test_mod_files.insert(format!("{dir}{m}.rs"));
            test_mod_files.insert(format!("{dir}{m}/mod.rs"));
        }
        lexed.push((rel.clone(), toks));
    }
    let mut analysis = Analysis::default();
    for (rel, toks) in &lexed {
        if test_mod_files.contains(rel) {
            continue;
        }
        analysis.files_scanned += 1;
        scan_defs(toks, &mut analysis.families, &mut analysis.bindings);
    }
    for (rel, toks) in &lexed {
        if test_mod_files.contains(rel) || defs_only(rel) {
            continue;
        }
        scan_fns(
            rel,
            toks,
            &analysis.bindings,
            &mut analysis.fns,
            &mut analysis.warnings,
        );
    }
    analysis
}

fn load_tree(scan_root: &Path, root: &Path, fixture: bool) -> Vec<(String, String)> {
    let mut files = Vec::new();
    super::collect_rs_files(scan_root, &mut files);
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if !fixture && excluded(&rel) {
            continue;
        }
        if let Ok(text) = std::fs::read_to_string(&path) {
            out.push((rel, text));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Runtime cross-check + docs
// ---------------------------------------------------------------------------

/// Obtains the runtime lockcheck graph: from `--runtime-graph <path>` when
/// given, else by running the `lockcheck_dump` example with the feature on.
fn obtain_runtime_graph(
    root: &Path,
    path: Option<&Path>,
) -> Result<lockgraph::RuntimeGraph, String> {
    let doc = match path {
        Some(p) => std::fs::read_to_string(p)
            .map_err(|e| format!("cannot read runtime graph {}: {e}", p.display()))?,
        None => {
            let out = std::process::Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "--features",
                    "lockcheck",
                    "--example",
                    "lockcheck_dump",
                ])
                .current_dir(root)
                .output()
                .map_err(|e| format!("failed to spawn cargo run: {e}"))?;
            if !out.status.success() {
                let err = String::from_utf8_lossy(&out.stderr);
                let tail: Vec<&str> = err.lines().rev().take(12).collect();
                let tail: Vec<&str> = tail.into_iter().rev().collect();
                return Err(format!(
                    "lockcheck_dump example failed ({}):\n{}",
                    out.status,
                    tail.join("\n")
                ));
            }
            String::from_utf8_lossy(&out.stdout).into_owned()
        }
    };
    parse_runtime_graph(&doc)
}

const CONCURRENCY_MD: &str = "docs/CONCURRENCY.md";

/// Checks (or rewrites, with `write`) the generated hierarchy section.
fn docs_check(root: &Path, rendered: &str, write: bool) -> Option<Finding> {
    let path = root.join(CONCURRENCY_MD);
    let Ok(doc) = std::fs::read_to_string(&path) else {
        return Some(Finding::new(
            "lock-docs-drift",
            Severity::Error,
            CONCURRENCY_MD,
            0,
            "cannot read docs/CONCURRENCY.md".to_string(),
        ));
    };
    let (Some(b), Some(e)) = (doc.find(lockgraph::DOC_BEGIN), doc.find(lockgraph::DOC_END)) else {
        return Some(Finding::new(
            "lock-docs-drift",
            Severity::Error,
            CONCURRENCY_MD,
            0,
            format!(
                "missing generated-section markers `{}` / `{}` — run \
                 `cargo xtask analyze-locks --write-docs`",
                lockgraph::DOC_BEGIN,
                lockgraph::DOC_END
            ),
        ));
    };
    let inner_start = b + lockgraph::DOC_BEGIN.len();
    if e < inner_start {
        return Some(Finding::new(
            "lock-docs-drift",
            Severity::Error,
            CONCURRENCY_MD,
            0,
            "generated-section markers are out of order".to_string(),
        ));
    }
    let current = &doc[inner_start..e];
    let wanted = format!("\n{rendered}");
    if current == wanted {
        return None;
    }
    if write {
        let new_doc = format!("{}{}{}", &doc[..inner_start], wanted, &doc[e..]);
        if let Err(err) = std::fs::write(&path, new_doc) {
            return Some(Finding::new(
                "lock-docs-drift",
                Severity::Error,
                CONCURRENCY_MD,
                0,
                format!("failed to write docs/CONCURRENCY.md: {err}"),
            ));
        }
        return None;
    }
    Some(Finding::new(
        "lock-docs-drift",
        Severity::Error,
        CONCURRENCY_MD,
        0,
        "the generated lock-hierarchy section is stale — run \
         `cargo xtask analyze-locks --write-docs` and commit the result"
            .to_string(),
    ))
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

struct Flags {
    opts: OutputOpts,
    static_only: bool,
    write_docs: bool,
    runtime_graph: Option<PathBuf>,
    fixture: Option<PathBuf>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let (opts, rest) = OutputOpts::parse(args)?;
    let mut flags = Flags {
        opts,
        static_only: false,
        write_docs: false,
        runtime_graph: None,
        fixture: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--static-only" => flags.static_only = true,
            "--write-docs" => flags.write_docs = true,
            "--runtime-graph" => {
                let p = it.next().ok_or("--runtime-graph needs a path")?;
                flags.runtime_graph = Some(PathBuf::from(p));
            }
            "--fixture" => {
                let p = it.next().ok_or("--fixture needs a directory")?;
                flags.fixture = Some(PathBuf::from(p));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(flags)
}

pub fn run(root: &Path, args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("analyze-locks: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fixture_mode = flags.fixture.is_some();
    let scan_root = match &flags.fixture {
        Some(d) if d.is_absolute() => d.clone(),
        Some(d) => root.join(d),
        None => root.to_path_buf(),
    };
    let sources = load_tree(
        &scan_root,
        if fixture_mode { &scan_root } else { root },
        fixture_mode,
    );
    let analysis = analyze_sources(&sources);
    let graph = build_graph(&analysis);

    let mut findings: Vec<Finding> = Vec::new();
    if analysis.families.is_empty() {
        findings.push(Finding::new(
            "lock-no-classes",
            Severity::Error,
            "",
            0,
            "no lock-class definitions found — the scan is broken or the \
             tree has no classed locks"
                .to_string(),
        ));
    }
    for cycle in graph.cycles() {
        let mut msg = format!(
            "potential lock-order cycle: {} -> {}",
            cycle.join(" -> "),
            cycle[0]
        );
        let mut anchor: Option<Site> = None;
        for k in 0..cycle.len() {
            let from = &cycle[k];
            let to = &cycle[(k + 1) % cycle.len()];
            if let Some(w) = graph.edges.get(&(from.clone(), to.clone())) {
                msg.push_str(&format!("\n  stack {}: {}", k + 1, w.render(from, to)));
                anchor.get_or_insert_with(|| w.acquire_site.clone());
            }
        }
        let anchor = anchor.unwrap_or(Site {
            file: String::new(),
            line: 0,
            func: String::new(),
        });
        findings.push(Finding::new(
            "lock-cycle",
            Severity::Error,
            anchor.file,
            anchor.line,
            msg,
        ));
    }
    for (fam, w) in graph.self_edges() {
        findings.push(Finding::new(
            "lock-same-family-nesting",
            Severity::Warning,
            w.acquire_site.file.clone(),
            w.acquire_site.line,
            format!(
                "two `{fam}` instances may nest ({}); instance ordering is \
                 not statically checkable — ensure a consistent index order",
                w.render(fam, fam)
            ),
        ));
    }
    findings.extend(analysis.warnings.iter().cloned());

    // Runtime cross-check and docs only apply to the real workspace.
    if !fixture_mode {
        let rendered = lockgraph::render_hierarchy(&graph, &analysis.families);
        if let Some(f) = docs_check(root, &rendered, flags.write_docs) {
            findings.push(f);
        }
        if !flags.static_only {
            match obtain_runtime_graph(root, flags.runtime_graph.as_deref()) {
                Ok(rt) if !rt.enabled => findings.push(Finding::new(
                    "lock-runtime-disabled",
                    Severity::Error,
                    "",
                    0,
                    "runtime graph was produced without the lockcheck feature \
                     — rebuild the dump with --features lockcheck"
                        .to_string(),
                )),
                Ok(rt) => {
                    let cc = cross_check(&graph.edge_set(), &rt.family_edges());
                    for (from, to) in &cc.soundness {
                        findings.push(Finding::new(
                            "lock-soundness",
                            Severity::Error,
                            "",
                            0,
                            format!(
                                "runtime lockcheck observed `{from}` held while \
                                 acquiring `{to}`, but the static analysis did not \
                                 predict this edge — fix the analyzer's extraction \
                                 (or its leaf assumptions) before trusting its \
                                 cycle report"
                            ),
                        ));
                    }
                    for (rank, (from, to)) in cc.unexercised.iter().enumerate() {
                        findings.push(Finding::new(
                            "lock-coverage-gap",
                            Severity::Info,
                            "",
                            0,
                            format!(
                                "(rank {}) statically possible but never exercised \
                                 at runtime: `{from}` -> `{to}` — mode-exclusive \
                                 edges are expected here; otherwise add a lockcheck \
                                 workload that nests these",
                                rank + 1
                            ),
                        ));
                    }
                }
                Err(e) => findings.push(Finding::new(
                    "lock-runtime-dump-failed",
                    Severity::Error,
                    "",
                    0,
                    e,
                )),
            }
        }
    }

    if !flags.opts.emit("analyze-locks", &findings) {
        return ExitCode::FAILURE;
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    if !flags.opts.json {
        println!(
            "analyze-locks: {} files, {} fns, {} lock families, {} edges, \
             {} cycle(s), {} finding(s) ({errors} error(s))",
            analysis.files_scanned,
            analysis.fns.len(),
            analysis.families.len(),
            graph.edges.len(),
            graph.cycles().len(),
            findings.len(),
        );
        for f in &findings {
            println!("{f}");
        }
    }
    if errors > 0 {
        eprintln!("\nanalyze-locks: {errors} error(s) — see docs/CONCURRENCY.md");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (Analysis, StaticGraph) {
        let files = vec![("crates/x/src/lib.rs".to_string(), src.to_string())];
        let a = analyze_sources(&files);
        let g = build_graph(&a);
        (a, g)
    }

    const DEFS: &str = r#"
        struct S {
            outer: SpinLock<u32>,
            inner: SpinLock<u32>,
        }
        impl S {
            fn new() -> Self {
                S {
                    outer: SpinLock::with_class("t.outer", 0),
                    inner: SpinLock::with_class("t.inner", 0),
                }
            }
        }
    "#;

    #[test]
    fn class_defs_and_bindings_are_collected() {
        let (a, _) = analyze(DEFS);
        assert_eq!(a.bindings.get("outer").unwrap(), "t.outer");
        assert_eq!(a.bindings.get("inner").unwrap(), "t.inner");
        assert!(a.families.contains_key("t.outer"));
        // classed_spins + lock_class_table register families too.
        let (a, _) = analyze(
            r#"
            const T: [&str; 2] = lock_class_table!("fam.x"; 0, 1);
            fn mk() { let _ = classed_spins(4, &T, "fam.x.overflow"); }
            "#,
        );
        let fx = a.families.get("fam.x").unwrap();
        assert!(fx.indexed && fx.overflow);
    }

    #[test]
    fn guard_scope_creates_edges_and_drop_releases() {
        let src = format!(
            "{DEFS}
            impl S {{
                fn nested(&self) {{
                    let g = self.outer.lock();
                    let h = self.inner.lock();
                    drop(h);
                    drop(g);
                }}
                fn sequential(&self) {{
                    let g = self.outer.lock();
                    drop(g);
                    let h = self.inner.lock();
                    drop(h);
                }}
                fn scoped(&self) {{
                    {{ let g = self.outer.lock(); }}
                    let h = self.inner.lock();
                }}
            }}"
        );
        let (_, g) = analyze(&src);
        assert!(g.edges.contains_key(&("t.outer".into(), "t.inner".into())));
        // Sequential and block-scoped acquisitions create no reverse edge.
        assert!(!g.edges.contains_key(&("t.inner".into(), "t.outer".into())));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn statement_temporaries_are_not_held() {
        let src = format!(
            "{DEFS}
            impl S {{
                fn temp(&self) {{
                    *self.outer.lock() = 1;
                    let v = *self.inner.lock() + 1;
                    let _ = v;
                }}
            }}"
        );
        let (a, g) = analyze(&src);
        // Both acquisitions recorded, no held context, no edges.
        let f = a.fns.iter().find(|f| f.name == "temp").unwrap();
        assert_eq!(f.acqs.len(), 2);
        assert!(f.acqs.iter().all(|acq| acq.held.is_empty()));
        assert!(g.edges.is_empty());
    }

    #[test]
    fn call_chains_propagate_acquisitions_with_witness() {
        let src = format!(
            "{DEFS}
            impl S {{
                fn top(&self) {{
                    let g = self.outer.lock();
                    self.middle();
                }}
                fn middle(&self) {{
                    self.bottom();
                }}
                fn bottom(&self) {{
                    let h = self.inner.lock();
                }}
            }}"
        );
        let (_, g) = analyze(&src);
        let w = g
            .edges
            .get(&("t.outer".into(), "t.inner".into()))
            .expect("transitive edge");
        assert_eq!(w.acquire_site.func, "S::bottom");
        assert_eq!(w.chain.len(), 2, "{:?}", w.chain);
        assert!(w.chain[0].starts_with("S::middle"));
    }

    #[test]
    fn ab_ba_cycle_is_detected() {
        let src = format!(
            "{DEFS}
            impl S {{
                fn ab(&self) {{
                    let g = self.outer.lock();
                    let h = self.inner.lock();
                }}
                fn ba(&self) {{
                    let h = self.inner.lock();
                    let g = self.outer.lock();
                }}
            }}"
        );
        let (_, g) = analyze(&src);
        assert_eq!(g.cycles(), vec![vec!["t.inner", "t.outer"]]);
    }

    #[test]
    fn assumed_leaf_methods_create_no_edges() {
        let src = format!(
            "{DEFS}
            impl Pollable for S {{
                fn poll(&self) {{
                    let h = self.inner.lock();
                }}
            }}
            impl S {{
                fn drive(&self, d: &D) {{
                    let g = self.outer.lock();
                    d.poll();
                    d.can_post();
                }}
            }}"
        );
        let (_, g) = analyze(&src);
        assert!(
            !g.edges.contains_key(&("t.outer".into(), "t.inner".into())),
            "leaf-assumed .poll() must not pull in a same-named impl"
        );
    }

    #[test]
    fn section_kinds_map_to_families() {
        let src = r#"
            impl Core {
                fn op(&self) {
                    let api = self.policy.enter_api();
                    let s = self.policy.enter(SectionKind::CollectTx(gate.0));
                    drop(s);
                    let s = self.policy.enter(SectionKind::Driver(i));
                }
            }
        "#;
        let (_, g) = analyze(src);
        assert!(g
            .edges
            .contains_key(&("core.api-global".into(), "core.collect.tx".into())));
        assert!(g
            .edges
            .contains_key(&("core.api-global".into(), "core.driver".into())));
        // tx was dropped before the driver section: no tx -> driver edge.
        assert!(!g
            .edges
            .contains_key(&("core.collect.tx".into(), "core.driver".into())));
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = format!(
            "{DEFS}
            #[cfg(test)]
            mod tests {{
                fn bad(&self) {{
                    let h = self.inner.lock();
                    let g = self.outer.lock();
                }}
            }}
            #[cfg(test)]
            fn also_bad(s: &S) {{
                let h = s.inner.lock();
                let g = s.outer.lock();
            }}"
        );
        let (a, g) = analyze(&src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
        assert!(a
            .fns
            .iter()
            .all(|f| f.name != "bad" && f.name != "also_bad"));
    }

    #[test]
    fn test_mod_declarations_exclude_their_files() {
        let files = vec![
            (
                "crates/x/src/lib.rs".to_string(),
                "#[cfg(test)]\nmod proptests;\n".to_string(),
            ),
            (
                "crates/x/src/proptests.rs".to_string(),
                DEFS.to_string() + "impl S { fn f(&self) { let g = self.outer.lock(); let h = self.inner.lock(); } }",
            ),
        ];
        let a = analyze_sources(&files);
        let g = build_graph(&a);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn the_real_workspace_passes_static_only() {
        let root = super::super::workspace_root();
        assert_eq!(
            run(&root, &["--static-only".to_string()]),
            ExitCode::SUCCESS,
            "static lock-order analysis must be clean on the committed tree"
        );
    }

    #[test]
    fn the_fixture_cycle_is_found_with_both_stacks() {
        let root = super::super::workspace_root();
        let dir = root.join("tests/fixtures/seeded_deadlock");
        let sources = load_tree(&dir, &dir, true);
        assert!(!sources.is_empty(), "fixture crate missing");
        let a = analyze_sources(&sources);
        let g = build_graph(&a);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].contains(&"fixture.publish".to_string()));
        assert!(cycles[0].contains(&"fixture.reclaim".to_string()));
        // Both witnesses exist, one of them through a call chain.
        let ab = g
            .edges
            .get(&("fixture.publish".into(), "fixture.reclaim".into()))
            .unwrap();
        let ba = g
            .edges
            .get(&("fixture.reclaim".into(), "fixture.publish".into()))
            .unwrap();
        assert!(!ab.chain.is_empty() || !ba.chain.is_empty());
        // And the CLI exits non-zero on it.
        let args = vec![
            "--fixture".to_string(),
            "tests/fixtures/seeded_deadlock".to_string(),
            "--json".to_string(),
        ];
        assert_eq!(run(&root, &args), ExitCode::FAILURE);
    }
}
