//! A lightweight Rust lexer for the static lock-order analyzer.
//!
//! Full Rust parsing needs a real frontend; the analyzer does not. Lock
//! acquisitions in this workspace are a handful of unambiguous token
//! shapes (`.enter(SectionKind::CollectTx(g))`, `self.sources.lock()`,
//! `SpinLock::with_class("...")`) and call sites are `ident(`. What the
//! line-oriented lints cannot do — and this lexer can — is see through
//! comments, strings and multi-line expressions, and track brace depth
//! reliably enough to delimit function bodies and guard scopes.
//!
//! The token model is deliberately coarse: identifiers (keywords
//! included), string literals (with their decoded value), punctuation as
//! single characters, and numbers. Multi-character operators arrive as
//! consecutive punct tokens (`::` is `:`, `:`), which the analyzer's
//! pattern matching handles. Lifetimes are distinguished from char
//! literals so that `'a>` does not eat the rest of the file.

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub line: usize,
    pub kind: TokKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `self`, `enter`, ...).
    Ident(String),
    /// A string literal's decoded contents (regular, raw or byte).
    Str(String),
    /// A char or byte-char literal (value not needed).
    Char,
    /// A lifetime (`'a`, `'static`); value not needed.
    Lifetime,
    /// A numeric literal; value not needed.
    Num,
    /// One punctuation character (`{`, `}`, `(`, `)`, `.`, `:`, ...).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the given punctuation character.
    pub fn is(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into tokens, skipping whitespace and comments (line,
/// block — including nested block comments — and doc forms).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (s, ni, nl) = lex_string(&b, i, line);
                toks.push(Tok {
                    line,
                    kind: TokKind::Str(s),
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start = if b[i] == 'b' && b.get(i + 1) == Some(&'r') {
                    i + 2
                } else if b[i] == 'r' || b[i] == 'b' {
                    i + 1
                } else {
                    i
                };
                if b.get(start) == Some(&'"') && b[i] == 'b' && b.get(i + 1) != Some(&'r') {
                    // b"..." — ordinary escapes apply.
                    let (s, ni, nl) = lex_string(&b, start, line);
                    toks.push(Tok {
                        line,
                        kind: TokKind::Str(s),
                    });
                    i = ni;
                    line = nl;
                } else {
                    // r"..." / r#"..."# / br#"..."# — no escapes.
                    let mut hashes = 0;
                    let mut j = start;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    debug_assert_eq!(b.get(j), Some(&'"'));
                    j += 1;
                    let mut s = String::new();
                    let mut nl = line;
                    loop {
                        match b.get(j) {
                            None => break,
                            Some('"') if closes_raw(&b, j + 1, hashes) => {
                                j += 1 + hashes;
                                break;
                            }
                            Some(&ch) => {
                                if ch == '\n' {
                                    nl += 1;
                                }
                                s.push(ch);
                                j += 1;
                            }
                        }
                    }
                    toks.push(Tok {
                        line,
                        kind: TokKind::Str(s),
                    });
                    i = j;
                    line = nl;
                }
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is ' followed by
                // ident chars NOT terminated by a closing quote.
                let mut j = i + 1;
                if b.get(j) == Some(&'\\') {
                    // Escaped char literal: '\n', '\'', '\u{..}'.
                    j += 2;
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    toks.push(Tok {
                        line,
                        kind: TokKind::Char,
                    });
                    i = j + 1;
                } else {
                    let ident_len = b[j..]
                        .iter()
                        .take_while(|c| c.is_alphanumeric() || **c == '_')
                        .count();
                    if ident_len > 0 && b.get(j + ident_len) == Some(&'\'') {
                        // 'a' — a char literal of one ident-ish char.
                        toks.push(Tok {
                            line,
                            kind: TokKind::Char,
                        });
                        i = j + ident_len + 1;
                    } else if ident_len > 0 {
                        toks.push(Tok {
                            line,
                            kind: TokKind::Lifetime,
                        });
                        i = j + ident_len;
                    } else if b.get(j).is_some() {
                        // Punctuation char literal like '(' or ' '.
                        let close = b[j + 1..].iter().position(|&c| c == '\'');
                        toks.push(Tok {
                            line,
                            kind: TokKind::Char,
                        });
                        i = match close {
                            Some(off) => j + 1 + off + 1,
                            None => j + 1,
                        };
                    } else {
                        i = j;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Ident(b[i..j].iter().collect()),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                // Good enough for skipping: digits, underscores, hex/exp
                // letters (type suffixes land here too — the value is
                // unused).
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                // Decimal part: `1.5` (but not `1.method()` / `0..n`).
                if b.get(j) == Some(&'.') && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                        j += 1;
                    }
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Num,
                });
                i = j;
            }
            c => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // r"..", r#"..", b"..", br"..", br#"..".
    let rest = &b[i..];
    match rest {
        ['r', '"', ..] | ['b', '"', ..] | ['b', 'r', '"', ..] => true,
        ['r', '#', ..] | ['b', 'r', '#', ..] => {
            // Raw string with hashes (not `r#ident` raw identifiers: those
            // have an ident char after the hash).
            let start = if rest[0] == 'b' { 2 } else { 1 };
            let mut j = start;
            while b.get(i + j) == Some(&'#') {
                j += 1;
            }
            b.get(i + j) == Some(&'"')
        }
        _ => false,
    }
}

fn closes_raw(b: &[char], j: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| b.get(j + k) == Some(&'#'))
}

/// Lexes a regular string starting at the opening quote; returns the
/// decoded value, the index past the closing quote, and the new line
/// number.
fn lex_string(b: &[char], i: usize, mut line: usize) -> (String, usize, usize) {
    debug_assert_eq!(b[i], '"');
    let mut s = String::new();
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '"' => return (s, j + 1, line),
            '\\' => {
                match b.get(j + 1) {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some('\n') => line += 1, // line-continuation escape
                    Some(&c) => s.push(c),
                    None => {}
                }
                j += 2;
            }
            '\n' => {
                line += 1;
                s.push('\n');
                j += 1;
            }
            c => {
                s.push(c);
                j += 1;
            }
        }
    }
    (s, j, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped_or_captured() {
        let src = r#"
// line comment with fn fake()
/* block /* nested */ still comment */
fn real(x: u32) { call("with fn inside string"); }
"#;
        let ids = idents(src);
        assert_eq!(ids, ["fn", "real", "x", "u32", "call"]);
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["with fn inside string"]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = lex(r##"let a = r#"raw "quoted" body"#; let b = "esc\"aped";"##);
        let strs: Vec<_> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["raw \"quoted\" body", "esc\"aped"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<_> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let ids = idents("for i in 0..n { 1.max(2); x[0].lock(); }");
        assert!(ids.contains(&"max".to_string()));
        assert!(ids.contains(&"lock".to_string()));
        // 1.5f64 stays one number token.
        let toks = lex("let x = 1.5f64;");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Num).count(),
            1,
            "{toks:?}"
        );
    }
}
