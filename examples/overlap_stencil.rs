//! Communication/computation overlap: a 1-D halo-exchange stencil.
//!
//! Two ranks each own half of a vector and repeatedly smooth it; the halo
//! cells travel as non-blocking messages while the inner cells are
//! computed — the §4 use case: background progression makes the exchange
//! advance during the compute phase.
//!
//! ```sh
//! cargo run --release --example overlap_stencil
//! ```

use std::sync::Arc;

use nomad::mpi::{Comm, ThreadLevel, World};
use nomad::progress::{IdlePolicy, ProgressEngine, ProgressionThread};
use nomad::sync::WaitStrategy;

const CELLS: usize = 1 << 14;
const STEPS: usize = 20;

fn smooth_inner(data: &mut [f64]) {
    // Jacobi-style smoothing of the interior (ends handled via halos).
    let prev: Vec<f64> = data.to_vec();
    for i in 1..data.len() - 1 {
        data[i] = 0.25 * prev[i - 1] + 0.5 * prev[i] + 0.25 * prev[i + 1];
    }
}

fn run_rank(comm: Comm, peer: usize, mut data: Vec<f64>) -> f64 {
    let halo = comm.peer(peer).expect("peer endpoint");
    for step in 0..STEPS {
        let tag = step as u64;
        // Post the halo exchange, then compute while it progresses in the
        // background (the progression thread polls; we wait passively).
        let recv = halo.irecv(tag).expect("irecv");
        let boundary = if comm.rank() == 0 {
            data[data.len() - 1]
        } else {
            data[0]
        };
        let send = halo.isend(tag, &boundary.to_le_bytes()).expect("isend");

        smooth_inner(&mut data); // overlapped computation

        recv.wait_flag_only(WaitStrategy::fixed_spin_default());
        send.wait_flag_only(WaitStrategy::fixed_spin_default());
        let halo_bytes = recv.take_data().expect("halo");
        let halo = f64::from_le_bytes(halo_bytes[..8].try_into().unwrap());
        if comm.rank() == 0 {
            let n = data.len();
            data[n - 1] = 0.5 * (data[n - 1] + halo);
        } else {
            data[0] = 0.5 * (data[0] + halo);
        }
    }
    data.iter().sum::<f64>() / data.len() as f64
}

fn main() {
    let world = World::pair(ThreadLevel::Multiple);

    // Background progression: both ranks' cores registered with one
    // engine polled by a dedicated progression thread.
    let engine = Arc::new(ProgressEngine::new());
    engine.register(world.core(0) as _);
    engine.register(world.core(1) as _);
    let progression = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    let (c0, c1) = world.comm_pair();
    let h0 = std::thread::spawn(move || {
        let data = vec![1.0; CELLS];
        run_rank(c0, 1, data)
    });
    let h1 = std::thread::spawn(move || {
        let data = vec![3.0; CELLS];
        run_rank(c1, 0, data)
    });
    let (m0, m1) = (h0.join().unwrap(), h1.join().unwrap());
    progression.stop();

    println!("rank 0 mean after {STEPS} steps: {m0:.6}");
    println!("rank 1 mean after {STEPS} steps: {m1:.6}");
    // Smoothing conserves each half's interior mass approximately; the
    // halos couple the halves so the means drift toward each other.
    assert!(m0 > 1.0 - 1e-6 && m1 < 3.0 + 1e-6);
    println!("halo exchange overlapped with computation: OK");
}
