//! Collectives in action: distributed Monte-Carlo estimation of π.
//!
//! Four ranks sample independently and combine their counts with
//! `allreduce` — the hybrid threads+message-passing style the paper's
//! introduction motivates, expressed through the Mad-MPI facade's
//! collective layer (binomial reduce + broadcast over the simulated
//! fabric).
//!
//! ```sh
//! cargo run --release --example allreduce_pi
//! ```

use std::sync::Arc;

use nomad::mpi::{ThreadLevel, World};

const RANKS: usize = 4;
const SAMPLES_PER_RANK: u64 = 200_000;

/// Deterministic per-rank pseudo-random sampler (xorshift64*).
fn hits(rank: usize) -> u64 {
    let mut state = 0x9E3779B97F4A7C15u64 ^ ((rank as u64 + 1) << 32);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut inside = 0;
    for _ in 0..SAMPLES_PER_RANK {
        let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
        let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    inside
}

fn main() {
    let world = Arc::new(World::clique(RANKS, ThreadLevel::Multiple));
    let handles: Vec<_> = (0..RANKS)
        .map(|rank| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let comm = world.comm(rank);
                let mine = hits(rank) as f64;
                println!("[rank {rank}] {mine:>8} hits out of {SAMPLES_PER_RANK}");
                comm.barrier().expect("barrier");
                // Everyone learns the global count.
                let total = comm.allreduce_sum_f64(&[mine]).expect("allreduce")[0];
                let pi = 4.0 * total / (RANKS as u64 * SAMPLES_PER_RANK) as f64;
                if rank == 0 {
                    println!("[rank 0] global estimate: π ≈ {pi:.5}");
                }
                pi
            })
        })
        .collect();
    let estimates: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Allreduce must give every rank the identical answer.
    assert!(estimates.windows(2).all(|w| w[0] == w[1]));
    assert!((estimates[0] - std::f64::consts::PI).abs() < 0.05);
    println!(
        "all {RANKS} ranks agree; error = {:+.5}",
        estimates[0] - std::f64::consts::PI
    );
}
