//! A sim "server" multiplexing 10k+ outstanding requests on 2 cores.
//!
//! Two threads total on the server rank: one progression thread drives
//! both cores, one executor thread runs `block_on(join_all(...))` over
//! 10 240 posted `recv_async` futures and answers each request. No
//! thread-per-request, no completion polling loop in user code — the
//! waker table parks the executor and completion delivery wakes it.
//!
//! The client rank fires all requests from a plain thread and then
//! collects the replies, also through the async facade.
//!
//! ```sh
//! cargo run --release --example async_server
//! ```

use std::sync::Arc;
use std::time::Instant;

use nomad::mpi::exec::{block_on, join_all};
use nomad::mpi::{ThreadLevel, World};
use nomad::progress::{IdlePolicy, ProgressEngine, ProgressionThread};

const OUTSTANDING: u64 = 10_240;

fn main() {
    let world = World::pair(ThreadLevel::Multiple);
    let (server, client) = world.comm_pair();
    let to_client = server.sole_peer().expect("pair world");
    let to_server = client.sole_peer().expect("pair world");

    // Core 1 of 2: a single progression thread advances both ranks.
    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(server.core()) as _);
    engine.register(Arc::clone(client.core()) as _);
    let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    let started = Instant::now();

    // Core 2 of 2: the server executor. Every request slot is posted up
    // front; `join_all` holds all 10k+ receives concurrently and the
    // executor thread parks whenever none are deliverable.
    let srv = std::thread::spawn(move || {
        let requests: Vec<_> = (0..OUTSTANDING).map(|i| to_client.recv_async(i)).collect();
        let bodies = block_on(join_all(requests));
        let replies: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let body = body.expect("request");
                to_client.send_async_bytes(i as u64, body)
            })
            .collect();
        for r in block_on(join_all(replies)) {
            r.expect("reply");
        }
    });

    // Client: fire everything, then await the echoes.
    let sends: Vec<_> = (0..OUTSTANDING)
        .map(|i| to_server.send_async(i, format!("req {i}").as_bytes()))
        .collect();
    for s in block_on(join_all(sends)) {
        s.expect("send");
    }
    let echoes: Vec<_> = (0..OUTSTANDING).map(|i| to_server.recv_async(i)).collect();
    for (i, e) in block_on(join_all(echoes)).into_iter().enumerate() {
        assert_eq!(&e.expect("echo")[..], format!("req {i}").as_bytes());
    }
    srv.join().expect("server");
    let elapsed = started.elapsed();

    pt.stop();
    let stats = server.core().stats();
    println!(
        "{OUTSTANDING} outstanding requests served round-trip on 2 cores in {:.1} ms",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "server rank: {} sends posted, {} packets tx",
        stats.sends_posted.get(),
        stats.packets_tx.get(),
    );
}
