//! A miniature Figure 3 at the terminal: pingpong latency under the three
//! thread-safety schemes, measured on the real stack (plus the simulator's
//! deterministic prediction for comparison).
//!
//! ```sh
//! cargo run --release --example locking_modes_tour
//! ```

use nomad::bench::pingpong::{pingpong_latency, PingpongOpts};
use nomad::core::LockingMode;
use nomad::sim::{experiments, SimCosts};

fn main() {
    let sizes = [4usize, 64, 1024];

    println!("real stack (median one-way µs; host-scheduling noise included):\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size", "no-locking", "coarse", "fine"
    );
    for &size in &sizes {
        let mut row = format!("{size:>10}");
        for mode in [
            LockingMode::SingleThread,
            LockingMode::Coarse,
            LockingMode::Fine,
        ] {
            let opts = PingpongOpts {
                locking: mode,
                iters: 50,
                warmup: 5,
                ..PingpongOpts::default()
            };
            row.push_str(&format!(
                " {:>14.2}",
                pingpong_latency(&opts, size).median_us()
            ));
        }
        println!("{row}");
    }

    println!("\ndeterministic simulator (paper-calibrated costs):\n");
    let series = experiments::fig3_locking_latency(SimCosts::paper(), &sizes);
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size", &series[2].label, &series[0].label, &series[1].label
    );
    for (i, &size) in sizes.iter().enumerate() {
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>14.2}",
            size, series[2].points[i].1, series[0].points[i].1, series[1].points[i].1
        );
    }
    println!(
        "\npaper: coarse adds ~0.14 µs and fine ~0.23 µs over no-locking,\n\
         independent of message size (Fig 3)."
    );
}
