//! `MPI_THREAD_MULTIPLE` in anger: many threads of both ranks
//! communicate concurrently through the same cores.
//!
//! This is the workload class §3 is about: with fine-grain locking the
//! flows proceed in parallel; switch `LEVEL` to `ThreadLevel::Funneled`
//! (coarse locking) and the library serializes them instead — same
//! results, different interleaving.
//!
//! ```sh
//! cargo run --release --example thread_multiple_chat
//! ```

use nomad::mpi::{ThreadLevel, World};

const LEVEL: ThreadLevel = ThreadLevel::Multiple;
const THREADS: u64 = 4;
const MESSAGES: usize = 50;

fn main() {
    let world = World::pair(LEVEL);
    let (a, b) = world.comm_pair();

    let mut handles = Vec::new();
    for t in 0..THREADS {
        // Each sender thread owns a tag lane; receivers reply with an ack.
        // Endpoints are cheap clones, one per thread.
        let to_b = a.sole_peer().expect("pair world");
        handles.push(std::thread::spawn(move || {
            for i in 0..MESSAGES {
                let msg = format!("lane {t}, message {i}");
                to_b.send(t, msg.as_bytes()).expect("send");
                let ack = to_b.recv(t).expect("ack");
                assert_eq!(ack, format!("ack {i}").as_bytes());
            }
        }));
        let to_a = b.sole_peer().expect("pair world");
        handles.push(std::thread::spawn(move || {
            for i in 0..MESSAGES {
                let msg = to_a.recv(t).expect("recv");
                assert_eq!(msg, format!("lane {t}, message {i}").as_bytes());
                to_a.send(t, format!("ack {i}").as_bytes()).expect("ack");
            }
        }));
    }
    for h in handles {
        h.join().expect("lane");
    }

    let stats = a.core().stats();
    let policy = a.core().lock_policy();
    println!(
        "{} lanes x {} messages exchanged at thread level {:?}",
        THREADS, MESSAGES, LEVEL
    );
    println!(
        "rank 0: {} sends, {} packets tx, {} aggregated packets",
        stats.sends_posted.get(),
        stats.packets_tx.get(),
        stats.aggregated_packets.get(),
    );
    println!(
        "lock traffic: global={} collect={} (contention ratio {:.1} %)",
        policy.global_stats().acquisitions(),
        policy.collect_stats().acquisitions(),
        100.0 * policy.collect_stats().contention_ratio(),
    );
}
