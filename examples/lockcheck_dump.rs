//! Exercises the stack under the runtime lock-order checker and prints
//! the observed class-edge graph as JSON on stdout.
//!
//! ```sh
//! cargo run --release --features lockcheck --example lockcheck_dump
//! ```
//!
//! `cargo xtask analyze-locks` runs this to cross-check the static
//! may-hold-while-acquiring graph against reality: every edge printed
//! here must be predicted statically (else the analyzer has a soundness
//! bug), and static edges missing here are ranked coverage gaps. The
//! workload deliberately covers both lock-heavy modes (coarse and fine),
//! both protocols (eager and rendezvous), busy waits (progression under
//! the API guard) and the progression-engine source registry.

use std::sync::Arc;

use nomad::core::{
    CommCore, Completion, CompletionQueue, CoreBuilder, CoreConfig, GateId, LockingMode,
    ReliabilityConfig,
};
use nomad::fabric::{ChaosDriver, Driver, Fabric, FaultPlan, LoopbackDriver, WireModel};
use nomad::progress::{ProgressEngine, WakerTable};
use nomad::sync::WaitStrategy;

const G: GateId = GateId(0);

fn loopback_pair(config: CoreConfig) -> (Arc<CommCore>, Arc<CommCore>) {
    let (da, db) = LoopbackDriver::pair(64);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    (a, b)
}

/// Eager + rendezvous round trips with busy waits (progression runs
/// under the API guard, so completions happen with it held in coarse
/// mode — that is the edge the cross-check cares most about).
fn workload(mode: LockingMode) {
    let config = CoreConfig::default().locking(mode);
    let eager_max = config.eager_threshold;
    let (a, b) = loopback_pair(config);

    for size in [64usize, eager_max * 4] {
        let payload = bytes::Bytes::from(vec![0xabu8; size]);
        let recv = b.irecv(G, 7).expect("irecv");
        let send = a.isend(G, 7, payload).expect("isend");
        // Drive both sides: loopback needs the peer to make progress too.
        while !recv.is_complete() || !send.is_complete() {
            a.progress();
            b.progress();
        }
        b.wait(&recv, WaitStrategy::Busy).unwrap();
        a.wait(&send, WaitStrategy::Busy).unwrap();
    }

    // Completion objects: delivery runs inside progression — under the
    // API guard in coarse mode, under the collect locks in fine mode —
    // so these are the `* -> core.cq` / `* -> progress.wakers` edges.
    let cq = CompletionQueue::new();
    let table = Arc::new(WakerTable::new());
    let recv = b
        .irecv_with(G, 9, Completion::queue(&cq))
        .expect("irecv (queue)");
    let send = a
        .isend_with(
            G,
            9,
            bytes::Bytes::from_static(b"cq"),
            Completion::handler(|_ev| {}),
        )
        .expect("isend (handler)");
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(cq.wait(WaitStrategy::Busy).id(), recv.id());

    struct Noop;
    impl std::task::Wake for Noop {
        fn wake(self: Arc<Self>) {}
    }
    let noop = std::task::Waker::from(Arc::new(Noop));
    let recv = b
        .irecv_with(G, 11, Completion::waker(&table))
        .expect("irecv (waker)");
    assert!(table.register(recv.id(), &noop));
    let send = a
        .isend(G, 11, bytes::Bytes::from_static(b"wk"))
        .expect("isend");
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    a.wait(&send, WaitStrategy::Busy).unwrap();

    // Progression-engine registry: poll sources through the engine the
    // way the MPI layer drives background progression.
    let engine = ProgressEngine::new();
    let a2 = Arc::clone(&a);
    let id = engine.register(Arc::new(move || {
        a2.progress();
        nomad::progress::PollOutcome::Idle
    }));
    engine.poll_all();
    engine.unregister(id);
}

/// Reliability protocol over a lossy wire: retransmit timers firing
/// from the progress loop (`core.retrans -> core.driver`, the timer
/// wheel under the retransmit section) and deadline/cancel pruning —
/// the fault-handling edges the static graph predicts.
fn reliability_workload(mode: LockingMode) {
    let rel = ReliabilityConfig {
        rto_base_ns: 20_000,
        rto_max_ns: 500_000,
        ..ReliabilityConfig::enabled()
    };
    let config = CoreConfig::default().locking(mode).reliability(rel);
    let plan = FaultPlan::new(0x10CC).loss(0.05).duplicate(0.03).reorder(2);
    let (da, db) = LoopbackDriver::pair(256);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(ChaosDriver::new(da, plan.clone())) as Arc<dyn Driver>
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(ChaosDriver::new(db, plan)) as Arc<dyn Driver>])
        .build();

    // Enough traffic that the 5% loss reliably exercises retransmits.
    let sends: Vec<_> = (0..64u64)
        .map(|i| {
            a.isend(G, 5, bytes::Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap()
        })
        .collect();
    let recvs: Vec<_> = (0..64).map(|_| b.irecv(G, 5).unwrap()).collect();
    for r in &recvs {
        while !r.is_complete() {
            a.progress();
            b.progress();
        }
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }

    // Deadline expiry and cancellation pruning under the same mode.
    let doomed = b.irecv(G, 99).unwrap();
    let _ = b.wait_deadline(
        &doomed,
        WaitStrategy::Busy,
        std::time::Duration::from_millis(1),
    );
    let cancelled = b.irecv(G, 98).unwrap();
    cancelled.cancel();
    assert_eq!(b.pending().posted_recvs, 0);
}

/// Multi-VCI transfer layer: concurrent eager flows plus one striped
/// rendezvous over per-(rail, VCI) lanes — covers the `core.vci`
/// transfer-queue sections, the per-lane retrans → driver nesting, and
/// the sharded per-VCI progression entry points.
fn vci_workload(mode: LockingMode) {
    let config = CoreConfig::default().locking(mode);
    let fabric = Fabric::real_time();
    // Two rails × two VCIs = four lanes per gate.
    let (pa, pb) = fabric.pair_vcis(&[WireModel::ideal(), WireModel::ideal()], true, 2);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();
    let eager_max = a.config().eager_threshold;

    let recvs: Vec<_> = (0..4u64).map(|t| b.irecv(G, t).unwrap()).collect();
    let sends: Vec<_> = (0..4u64)
        .map(|t| {
            // Tag 0 rides the rendezvous path (chunks striped round-robin
            // across all four lanes); the rest are eager.
            let size = if t == 0 { eager_max * 8 } else { 64 };
            a.isend(G, t, bytes::Bytes::from(vec![t as u8; size]))
                .unwrap()
        })
        .collect();
    while recvs.iter().chain(sends.iter()).any(|r| !r.is_complete()) {
        // Drive each lane shard separately — the dedicated per-VCI
        // progression-thread path — plus a full pass for the timers.
        for shard in 0..4 {
            a.progress_shard(shard, 4);
            b.progress_shard(shard, 4);
        }
        a.progress();
        b.progress();
    }

    // The per-shard poll source through the engine registry.
    let engine = ProgressEngine::new();
    let id = engine.register(Arc::new(a.vci_poll_source(0, 4)));
    engine.poll_all();
    engine.unregister(id);
}

fn main() {
    workload(LockingMode::Coarse);
    workload(LockingMode::Fine);
    reliability_workload(LockingMode::Coarse);
    reliability_workload(LockingMode::Fine);
    vci_workload(LockingMode::Coarse);
    vci_workload(LockingMode::Fine);
    println!("{}", nomad::sync::lockcheck::dump_graph_json());
}
