//! Exercises the stack under the runtime lock-order checker and prints
//! the observed class-edge graph as JSON on stdout.
//!
//! ```sh
//! cargo run --release --features lockcheck --example lockcheck_dump
//! ```
//!
//! `cargo xtask analyze-locks` runs this to cross-check the static
//! may-hold-while-acquiring graph against reality: every edge printed
//! here must be predicted statically (else the analyzer has a soundness
//! bug), and static edges missing here are ranked coverage gaps. The
//! workload deliberately covers both lock-heavy modes (coarse and fine),
//! both protocols (eager and rendezvous), busy waits (progression under
//! the API guard) and the progression-engine source registry.

use std::sync::Arc;

use nomad::core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nomad::fabric::{Driver, LoopbackDriver};
use nomad::progress::ProgressEngine;
use nomad::sync::WaitStrategy;

const G: GateId = GateId(0);

fn loopback_pair(config: CoreConfig) -> (Arc<CommCore>, Arc<CommCore>) {
    let (da, db) = LoopbackDriver::pair(64);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    (a, b)
}

/// Eager + rendezvous round trips with busy waits (progression runs
/// under the API guard, so completions happen with it held in coarse
/// mode — that is the edge the cross-check cares most about).
fn workload(mode: LockingMode) {
    let config = CoreConfig::default().locking(mode);
    let eager_max = config.eager_threshold;
    let (a, b) = loopback_pair(config);

    for size in [64usize, eager_max * 4] {
        let payload = bytes::Bytes::from(vec![0xabu8; size]);
        let recv = b.irecv(G, 7).expect("irecv");
        let send = a.isend(G, 7, payload).expect("isend");
        // Drive both sides: loopback needs the peer to make progress too.
        while !recv.is_complete() || !send.is_complete() {
            a.progress();
            b.progress();
        }
        b.wait(&recv, WaitStrategy::Busy);
        a.wait(&send, WaitStrategy::Busy);
    }

    // Progression-engine registry: poll sources through the engine the
    // way the MPI layer drives background progression.
    let engine = ProgressEngine::new();
    let a2 = Arc::clone(&a);
    let id = engine.register(Arc::new(move || {
        a2.progress();
        nomad::progress::PollOutcome::Idle
    }));
    engine.poll_all();
    engine.unregister(id);
}

fn main() {
    workload(LockingMode::Coarse);
    workload(LockingMode::Fine);
    println!("{}", nomad::sync::lockcheck::dump_graph_json());
}
