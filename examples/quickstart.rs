//! Quickstart: two in-process "nodes" over a simulated Myri-10G rail.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nomad::mpi::{ThreadLevel, World};

fn main() {
    // An MPI_THREAD_MULTIPLE world: fine-grain locking inside the library.
    let world = World::pair(ThreadLevel::Multiple);
    let (alice, bob) = world.comm_pair();
    // Each side talks to its (only) peer through an endpoint.
    let to_bob = alice.sole_peer().expect("pair world");
    let to_alice = bob.sole_peer().expect("pair world");

    // Bob echoes whatever he receives.
    let bob_ep = to_alice.clone();
    let echo = std::thread::spawn(move || {
        let msg = bob_ep.recv(0).expect("recv");
        println!("[bob]   got {} bytes, echoing", msg.len());
        bob_ep.send(0, &msg).expect("send");
    });

    let payload = b"hello, high performance network";
    println!("[alice] sending {} bytes", payload.len());
    to_bob.send(0, payload).expect("send");
    let back = to_bob.recv(0).expect("recv");
    assert_eq!(&back, payload);
    println!("[alice] received the echo intact");
    echo.join().unwrap();

    // A larger message takes the rendezvous path automatically.
    let big = vec![7u8; 1 << 20];
    let echo = std::thread::spawn(move || {
        let msg = to_alice.recv(1).expect("recv");
        println!("[bob]   rendezvous delivered {} KiB", msg.len() / 1024);
    });
    to_bob.send(1, &big).expect("send");
    echo.join().unwrap();

    let stats = alice.core().stats();
    println!(
        "[stats] eager: {}, rendezvous: {}, packets tx: {}",
        stats.eager_sent.get(),
        stats.rdv_started.get(),
        stats.packets_tx.get(),
    );
}
