//! Multirail: one logical message striped across two NICs.
//!
//! NewMadeleine's optimization layer distributes rendezvous chunks
//! round-robin over every rail of a gate, so one logical message can use
//! the aggregate bandwidth of several NICs.
//!
//! ```sh
//! cargo run --release --example multirail_transfer
//! ```

use std::sync::Arc;
use std::time::Instant;

use nomad::core::{CoreBuilder, CoreConfig, GateId};
use nomad::fabric::{Fabric, WireModel};
use nomad::sync::WaitStrategy;

fn transfer(rails: &[WireModel], label: &str) -> f64 {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(rails, true);
    // The eager threshold must fit the *smallest* rail's MTU (ConnectX
    // packets carry at most 2 KiB here).
    let min_mtu = rails.iter().map(|r| r.mtu).min().unwrap();
    let config = CoreConfig::default()
        .eager_threshold((min_mtu / 2).min(16 * 1024))
        .rdv_chunk(min_mtu / 2);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();

    const SIZE: usize = 2 << 20; // 2 MiB
    let payload = bytes::Bytes::from(vec![0xABu8; SIZE]);

    let b2 = Arc::clone(&b);
    let recv = std::thread::spawn(move || {
        let r = b2.irecv(GateId(0), 0).expect("irecv");
        b2.wait(&r, WaitStrategy::Busy).unwrap();
        r.take_data().expect("payload")
    });

    let t0 = Instant::now();
    let s = a.isend(GateId(0), 0, payload).expect("isend");
    a.wait(&s, WaitStrategy::Busy).unwrap();
    let got = recv.join().expect("receiver");
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(got.len(), SIZE);

    let gbps = (SIZE as f64 * 8.0) / secs / 1e9;
    println!(
        "{label:<28} {SIZE:>9} bytes in {:>8.2} ms  ->  {gbps:.2} Gbit/s",
        secs * 1e3
    );
    for (i, d) in pa.sim_drivers().iter().enumerate() {
        println!(
            "    rail {i}: {} packets, {} bytes",
            d.counters().tx_packets.get(),
            d.counters().tx_bytes.get()
        );
    }
    gbps
}

fn main() {
    println!("transferring 2 MiB with one vs two rails:\n");
    let single = transfer(&[WireModel::myri_10g()], "one Myri-10G rail");
    let dual = transfer(
        &[WireModel::myri_10g(), WireModel::myri_10g()],
        "two Myri-10G rails",
    );
    println!(
        "\nmultirail speedup: {:.2}x (wire-limited upper bound: 2.0x;\n\
         software overheads dominate on hosts with few cores)",
        dual / single
    );
}
