//! The whole paper in one terminal page.
//!
//! Runs the deterministic simulator's version of every experiment and
//! prints a condensed "paper says / we measure" comparison. Bit-identical
//! output on any machine.
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use nomad::sim::{experiments as exp, SimCosts};
use nomad::topo::Topology;

fn delta_us(a: &nomad::bench::Series, b: &nomad::bench::Series) -> f64 {
    let n = a.points.len() as f64;
    a.points
        .iter()
        .zip(&b.points)
        .map(|(&(_, x), &(_, y))| x - y)
        .sum::<f64>()
        / n
}

fn row(what: &str, paper: &str, ours: String) {
    println!("{what:<52} {paper:>14} {ours:>14}");
}

fn main() {
    let costs = SimCosts::paper();
    let sizes = [4usize, 64, 512, 2048];

    println!(
        "{:<52} {:>14} {:>14}",
        "mechanism (one-way overheads unless noted)", "paper", "this repo"
    );
    println!("{}", "-".repeat(84));

    // Fig 3: locking overheads.
    let fig3 = exp::fig3_locking_latency(costs, &sizes);
    row(
        "Fig 3  coarse-grain locking overhead",
        "+140 ns",
        format!("{:+.0} ns", 1000.0 * delta_us(&fig3[0], &fig3[2])),
    );
    row(
        "Fig 3  fine-grain locking overhead",
        "+230 ns",
        format!("{:+.0} ns", 1000.0 * delta_us(&fig3[1], &fig3[2])),
    );

    // Fig 5: concurrent pingpongs.
    let fig5 = exp::fig5_concurrent_pingpong(costs, &[64]);
    row(
        "Fig 5  coarse: 2 concurrent pingpongs vs 1 thread",
        "~2.0x",
        format!("{:.2}x", fig5[3].points[0].1 / fig5[0].points[0].1),
    );

    // Fig 6: engine overhead.
    let fig6 = exp::fig6_pioman_overhead(costs, &sizes);
    row(
        "Fig 6  PIOMan registry on the polling path",
        "+200 ns",
        format!("{:+.0} ns", 1000.0 * delta_us(&fig6[1], &fig6[3])),
    );

    // Fig 7: passive waiting.
    let fig7 = exp::fig7_waiting_strategies(costs, &sizes);
    row(
        "Fig 7  semaphore (passive) vs busy waiting",
        "+750 ns",
        format!("{:+.0} ns", 1000.0 * delta_us(&fig7[1], &fig7[3])),
    );

    // Fig 8: polling placement.
    let topo = Topology::dual_xeon_x5460();
    let fig8 = exp::fig8_cache_affinity(costs, &topo, &[64]);
    let base = fig8[0].points[0].1;
    row(
        "Fig 8  polling on the shared-cache core",
        "+400 ns",
        format!("{:+.0} ns", 1000.0 * (fig8[1].points[0].1 - base)),
    );
    row(
        "Fig 8  polling on the same chip, no shared cache",
        "+2.3 us",
        format!("{:+.2} us", fig8[2].points[0].1 - base),
    );
    row(
        "Fig 8  polling on the other chip",
        "+3.1 us",
        format!("{:+.2} us", fig8[3].points[0].1 - base),
    );

    // Fig 9: deferred submission.
    let fig9 = exp::fig9_offload_tasklets(costs, &[8192, 16384, 32768]);
    row(
        "Fig 9  submission offload via tasklets",
        "+2 us",
        format!("{:+.2} us", delta_us(&fig9[1], &fig9[2])),
    );
    row(
        "Fig 9  submission offload via idle core",
        "+0.4 us",
        format!("{:+.2} us", delta_us(&fig9[0], &fig9[2])),
    );

    // Bandwidth claim.
    let bw = exp::bandwidth_by_mode(costs, &[32 * 1024]);
    let spread = (bw[0].points[0].1 - bw[2].points[0].1).abs() / bw[0].points[0].1 * 100.0;
    row(
        "§3.1   locking impact on 32 KB bandwidth",
        "none",
        format!("{spread:.2} %"),
    );

    // §4.1 overlap claim.
    let ov = exp::rdv_overlap(costs, &[128 * 1024]);
    row(
        "§4.1   compute hidden behind a 128 KB rendezvous",
        "~all of it",
        format!("{:.0} of 30 us", ov[0].points[0].1 - ov[1].points[0].1),
    );

    println!("{}", "-".repeat(84));
    println!(
        "deterministic simulator, paper-calibrated costs \
         (70 ns lock cycle, 750 ns switch, ...)"
    );
}
