//! # nomad — a thread-aware communication stack
//!
//! `nomad` is a Rust reproduction of the system studied in *An analysis of
//! the impact of multi-threading on communication performance* (Trahay,
//! Brunet, Denis — CAC/IPDPS 2009): a NewMadeleine-style communication
//! library with selectable thread-safety strategies, a PIOMan-style I/O
//! progression engine, a Marcel-style two-level scheduler with progression
//! hooks, and simulated high-performance NICs standing in for Myrinet MX /
//! ConnectX InfiniBand hardware.
//!
//! The crates are re-exported here under short names:
//!
//! * [`sync`] — spinlocks, semaphores, wait strategies, completion flags.
//! * [`topo`] — machine topology and thread affinity.
//! * [`fabric`] — simulated NICs, wire models, polling drivers.
//! * [`sched`] — two-level task scheduler with progression hooks.
//! * [`progress`] — poll registry, tasklets, submission offload.
//! * [`core`] — the 3-layer communication library itself.
//! * [`mpi`] — a Mad-MPI-style façade (communicators, tags, thread levels).
//! * [`sim`] — discrete-event deterministic twin.
//! * [`bench`] — benchmark harness used to regenerate the paper's figures.
//! * [`trace`] — low-overhead event tracing and the counters registry
//!   (records only with the `trace` cargo feature; see `docs/TRACING.md`).
//! * [`metrics`] — always-on latency histograms, gauges and rate counters
//!   with OpenMetrics/JSON export (see `docs/METRICS.md`).
//!
//! ## Quickstart
//!
//! ```
//! use nomad::mpi::{World, ThreadLevel};
//! use nomad::sync::WaitStrategy;
//!
//! // Two in-process "nodes" connected by a simulated Myri-10G rail.
//! let world = World::pair(ThreadLevel::Multiple);
//! let (a, b) = world.comm_pair();
//! // Point-to-point operations live on per-peer endpoints.
//! let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());
//!
//! let echo = std::thread::spawn(move || {
//!     let msg = to_a.recv(0).expect("recv");
//!     to_a.send(0, &msg).expect("send");
//! });
//!
//! to_b.send(0, b"hello network").expect("send");
//! let reply = to_b.recv(0).expect("recv");
//! assert_eq!(&reply[..], b"hello network");
//! echo.join().unwrap();
//! ```

pub use nm_bench as bench;
pub use nm_core as core;
pub use nm_fabric as fabric;
pub use nm_metrics as metrics;
pub use nm_mpi as mpi;
pub use nm_obs as obs;
pub use nm_progress as progress;
pub use nm_sched as sched;
pub use nm_sim as sim;
pub use nm_sync as sync;
pub use nm_topo as topo;
pub use nm_trace as trace;
