//! Vendored, dependency-free subset of the [`bytes`] crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace ships minimal local implementations of the
//! third-party APIs it consumes (see `crates/compat/README.md`). This crate
//! reimplements exactly the surface the nomad stack uses:
//!
//! * [`Bytes`] — cheaply clonable, sliceable immutable buffer
//!   (`Arc<[u8]>` + range),
//! * [`BytesMut`] — growable write buffer that [`freeze`]s into [`Bytes`],
//! * [`Buf`] / [`BufMut`] — big-endian cursor read/write traits.
//!
//! Semantics (big-endian integer encoding, `split_to`, `slice`) match the
//! real crate so the wire format stays compatible if the real dependency is
//! ever restored.
//!
//! [`bytes`]: https://docs.rs/bytes
//! [`freeze`]: BytesMut::freeze

#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copies; the real crate borrows,
    /// which is indistinguishable to callers).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` for the given range (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A unique, growable byte buffer; freeze it into [`Bytes`] when done.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { buf: vec![0; len] }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.len())
            .finish()
    }
}

/// Read cursor over a byte source; integers decode big-endian, matching the
/// real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor; integers encode big-endian, matching the real `bytes`
/// crate.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0xdeadbeef);
        m.put_u64(0x0123_4567_89ab_cdef);
        assert_eq!(m.len(), 15);
        // Big-endian on the wire.
        assert_eq!(&m[1..3], &[0x01, 0x02]);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0xdeadbeef);
        assert_eq!(b.get_u64(), 0x0123_4567_89ab_cdef);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4, 5]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_and_debug() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(vec![97, 98, 99]));
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.split_to(2);
    }
}
