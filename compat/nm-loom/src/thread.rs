//! Model-aware thread spawn/join. Outside a model run these delegate to
//! [`std::thread`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::rt;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<rt::Execution>,
        tid: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

/// Handle for joining a spawned thread (model-scheduled inside
/// [`crate::model`], a real detached thread otherwise).
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Panics
    ///
    /// Under the model, panics if the execution has already failed.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, tid, result } => {
                let (_, me) = rt::current().expect("model JoinHandle joined outside the model");
                exec.join_thread(me, tid);
                result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("joined thread left no result")
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Spawns a thread. Inside [`crate::model`] the child participates in the
/// token-passing schedule; its creation happens-after the parent's history
/// so far.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((exec, parent)) = rt::current() else {
        return JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        };
    };
    let tid = exec.register_thread(parent);
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let (exec2, result2) = (Arc::clone(&exec), Arc::clone(&result));
    let handle = std::thread::Builder::new()
        .name(format!("nm-loom-{tid}"))
        .spawn(move || {
            rt::set_current(Arc::clone(&exec2), tid);
            exec2.wait_for_turn(tid);
            let out = catch_unwind(AssertUnwindSafe(f));
            let panic_msg = out.as_ref().err().map(|e| panic_message(&**e));
            *result2.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            rt::clear_current();
            exec2.finish_thread(tid, panic_msg);
        })
        .expect("spawn model thread");
    exec.store_handle(handle);
    JoinHandle {
        inner: Inner::Model { exec, tid, result },
    }
}

/// A pure schedule point: lets the model switch threads, yields outside it.
pub fn yield_now() {
    match rt::current() {
        Some((exec, tid)) => exec.schedule_point(tid),
        None => std::thread::yield_now(),
    }
}
