//! Offline stand-in for the [`loom`] model checker.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a self-contained model checker with loom's API shape. It is
//! not an exhaustive checker: instead of enumerating every interleaving
//! via DPOR, it explores many *randomized schedules* (seeded, replayable)
//! and checks declared memory orderings *symbolically* with vector
//! clocks — see [`rt`](self) module docs in the source for the full
//! model. In practice this catches the same bug classes loom does for the
//! small litmus tests in this workspace:
//!
//! * data races on [`cell::UnsafeCell`] (including those only permitted
//!   by too-weak memory orderings, on **any** schedule),
//! * deadlocks and lost wakeups (every thread blocked),
//! * livelocks (op budget exhausted),
//! * panics/assertion failures on rare interleavings.
//!
//! # Usage
//!
//! ```
//! use nm_loom as loom;
//!
//! loom::model(|| {
//!     let flag = std::sync::Arc::new(loom::sync::atomic::AtomicBool::new(false));
//!     let f2 = flag.clone();
//!     let h = loom::thread::spawn(move || {
//!         f2.store(true, loom::sync::atomic::Ordering::Release);
//!     });
//!     h.join().unwrap();
//!     assert!(flag.load(loom::sync::atomic::Ordering::Acquire));
//! });
//! ```
//!
//! # Environment variables
//!
//! * `NOMAD_LOOM_ITERS` — schedules to explore per `model()` call
//!   (default 200).
//! * `NOMAD_LOOM_SEED` — replay exactly one schedule by seed (printed
//!   when a schedule fails).
//!
//! [`loom`]: https://docs.rs/loom

#![warn(missing_docs)]

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

/// Model-aware spin-loop hints.
pub mod hint {
    /// A pure schedule point under the model, `std::hint::spin_loop`
    /// otherwise.
    pub fn spin_loop() {
        match crate::rt::current() {
            Some((exec, tid)) => exec.schedule_point(tid),
            None => std::hint::spin_loop(),
        }
    }
}

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

const DEFAULT_ITERS: u64 = 200;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("nm-loom: ignoring unparseable {name}={raw:?}");
            None
        }
    }
}

/// Explores many schedules of `f`, panicking (with a replayable seed) on
/// the first failing one. This is the entry point loom tests wrap their
/// bodies in.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    if let Some(seed) = env_u64("NOMAD_LOOM_SEED") {
        eprintln!("nm-loom: replaying single schedule seed {seed}");
        if let Err(payload) = run_one(seed, Arc::clone(&f)) {
            resume_unwind(payload);
        }
        return;
    }
    let iters = env_u64("NOMAD_LOOM_ITERS").unwrap_or(DEFAULT_ITERS).max(1);
    for seed in 0..iters {
        if let Err(payload) = run_one(seed, Arc::clone(&f)) {
            eprintln!(
                "nm-loom: schedule seed {seed} FAILED after {seed} passing schedules; \
                 replay with NOMAD_LOOM_SEED={seed}"
            );
            resume_unwind(payload);
        }
    }
}

/// Runs one schedule. Returns the panic payload if the schedule failed.
fn run_one(seed: u64, f: Arc<dyn Fn() + Send + Sync>) -> Result<(), Box<dyn std::any::Any + Send>> {
    let exec = rt::Execution::new(seed);
    rt::set_current(Arc::clone(&exec), 0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        f();
        // Keep scheduling until every spawned thread has finished, so
        // detached threads run to completion inside the model.
        exec.drain(0);
    }));
    if result.is_err() {
        // Wake any sleeping model threads so they unwind and exit.
        exec.set_failure("main model thread panicked".to_owned());
    }
    rt::clear_current();
    for handle in exec.take_handles() {
        let _ = handle.join();
    }
    match result {
        Err(payload) => Err(payload),
        Ok(()) => match exec.failure() {
            Some(msg) => Err(Box::new(format!("nm-loom: {msg}"))),
            None => Ok(()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn release_acquire_message_passing_passes() {
        super::model(|| {
            let data = Arc::new(super::cell::UnsafeCell::new(0u64));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = super::thread::spawn(move || {
                d2.with_mut(|p| {
                    // SAFETY: the flag protocol orders this write before
                    // the reader's read (release/acquire pair).
                    unsafe { *p = 42 }
                });
                f2.store(true, Ordering::Release);
            });
            while !flag.load(Ordering::Acquire) {
                super::thread::yield_now();
            }
            data.with(|p| {
                // SAFETY: acquire load above synchronized with the
                // writer's release store.
                assert_eq!(unsafe { *p }, 42);
            });
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "data race")]
    fn relaxed_message_passing_races() {
        super::model(|| {
            let data = Arc::new(super::cell::UnsafeCell::new(0u64));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = super::thread::spawn(move || {
                d2.with_mut(|p| {
                    // SAFETY: intentionally racy — the test asserts the
                    // model reports this as a data race.
                    unsafe { *p = 42 }
                });
                // Relaxed store: publishes no happens-before edge.
                f2.store(true, Ordering::Relaxed);
            });
            while !flag.load(Ordering::Acquire) {
                super::thread::yield_now();
            }
            data.with(|p| {
                // SAFETY: intentionally racy (see above).
                unsafe {
                    std::ptr::read(p);
                }
            });
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lost_wakeup_detected() {
        super::model(|| {
            // BUG under test: the signaller flips an atomic flag and
            // notifies WITHOUT holding the condvar's mutex. On schedules
            // where the notify lands between the waiter's flag check and
            // its wait registration, the wakeup is lost and every thread
            // ends up blocked — which the model reports as a deadlock.
            let state = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
            let s2 = Arc::clone(&state);
            let h = super::thread::spawn(move || {
                let (_, cv, flag) = &*s2;
                flag.store(true, Ordering::Release);
                cv.notify_one();
            });
            let (m, cv, flag) = &*state;
            let mut g = m.lock();
            while !flag.load(Ordering::Acquire) {
                cv.wait(&mut g);
            }
            drop(g);
            h.join().unwrap();
        });
    }

    #[test]
    fn counter_with_mutex_is_consistent() {
        super::model(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        for _ in 0..3 {
                            *c.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 6);
        });
    }

    #[test]
    fn fetch_add_is_atomic() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let h = super::thread::spawn(move || {
                for _ in 0..4 {
                    n2.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..4 {
                n.fetch_add(1, Ordering::Relaxed);
            }
            h.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 8);
        });
    }

    #[test]
    fn fallback_mode_outside_model_behaves_like_std() {
        let flag = AtomicBool::new(false);
        assert!(!flag.swap(true, Ordering::AcqRel));
        assert!(flag.load(Ordering::Acquire));
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let h = super::thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }
}
