//! Shimmed synchronization primitives: atomics with symbolic
//! memory-ordering checks, and a parking_lot-flavoured `Mutex`/`Condvar`
//! pair the scheduler can reason about.

use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use crate::rt;

/// Atomic memory orderings (re-exported from std; the model interprets
/// them symbolically with vector clocks).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    /// A model-aware memory fence.
    pub fn fence(ord: Ordering) {
        match rt::current() {
            Some((exec, tid)) => exec.fence(tid, ord),
            None => std::sync::atomic::fence(ord),
        }
    }

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                v: std::sync::atomic::$std,
                meta: StdAtomicUsize,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $ty) -> Self {
                    $name {
                        v: std::sync::atomic::$std::new(v),
                        meta: StdAtomicUsize::new(0),
                    }
                }

                /// Atomic load.
                pub fn load(&self, ord: Ordering) -> $ty {
                    match rt::current() {
                        Some((exec, tid)) => {
                            exec.schedule_point(tid);
                            let out = self.v.load(Ordering::SeqCst);
                            exec.atomic_load_effects(tid, rt::loc_id(&self.meta), ord);
                            out
                        }
                        None => self.v.load(ord),
                    }
                }

                /// Atomic store.
                pub fn store(&self, val: $ty, ord: Ordering) {
                    match rt::current() {
                        Some((exec, tid)) => {
                            exec.schedule_point(tid);
                            self.v.store(val, Ordering::SeqCst);
                            exec.atomic_store_effects(tid, rt::loc_id(&self.meta), ord);
                        }
                        None => self.v.store(val, ord),
                    }
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                    self.rmw(ord, |_| val)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, val: $ty, ord: Ordering) -> $ty {
                    match rt::current() {
                        Some(_) => self.rmw(ord, |old| old.wrapping_add(val)),
                        None => self.v.fetch_add(val, ord),
                    }
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, val: $ty, ord: Ordering) -> $ty {
                    match rt::current() {
                        Some(_) => self.rmw(ord, |old| old.wrapping_sub(val)),
                        None => self.v.fetch_sub(val, ord),
                    }
                }

                /// Atomic bitwise OR, returning the previous value.
                pub fn fetch_or(&self, val: $ty, ord: Ordering) -> $ty {
                    match rt::current() {
                        Some(_) => self.rmw(ord, |old| old | val),
                        None => self.v.fetch_or(val, ord),
                    }
                }

                /// Atomic bitwise AND, returning the previous value.
                pub fn fetch_and(&self, val: $ty, ord: Ordering) -> $ty {
                    match rt::current() {
                        Some(_) => self.rmw(ord, |old| old & val),
                        None => self.v.fetch_and(val, ord),
                    }
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match rt::current() {
                        Some((exec, tid)) => {
                            exec.schedule_point(tid);
                            let loc = rt::loc_id(&self.meta);
                            match self.v.compare_exchange(
                                current,
                                new,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            ) {
                                Ok(prev) => {
                                    exec.atomic_rmw_effects(tid, loc, success);
                                    Ok(prev)
                                }
                                Err(prev) => {
                                    exec.atomic_load_effects(tid, loc, failure);
                                    Err(prev)
                                }
                            }
                        }
                        None => self.v.compare_exchange(current, new, success, failure),
                    }
                }

                /// Atomic compare-and-exchange that may fail spuriously —
                /// the model injects spurious failures at random so retry
                /// loops get exercised.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match rt::current() {
                        Some((exec, tid)) => {
                            exec.schedule_point(tid);
                            let loc = rt::loc_id(&self.meta);
                            if exec.spurious_failure() {
                                let prev = self.v.load(Ordering::SeqCst);
                                exec.atomic_load_effects(tid, loc, failure);
                                return Err(prev);
                            }
                            match self.v.compare_exchange(
                                current,
                                new,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            ) {
                                Ok(prev) => {
                                    exec.atomic_rmw_effects(tid, loc, success);
                                    Ok(prev)
                                }
                                Err(prev) => {
                                    exec.atomic_load_effects(tid, loc, failure);
                                    Err(prev)
                                }
                            }
                        }
                        None => self.v.compare_exchange_weak(current, new, success, failure),
                    }
                }

                fn rmw(&self, ord: Ordering, f: impl Fn($ty) -> $ty) -> $ty {
                    match rt::current() {
                        Some((exec, tid)) => {
                            exec.schedule_point(tid);
                            // Serialized execution: a plain read-modify-write
                            // of the std atomic is atomic w.r.t. the model.
                            let prev = self.v.load(Ordering::SeqCst);
                            self.v.store(f(prev), Ordering::SeqCst);
                            exec.atomic_rmw_effects(tid, rt::loc_id(&self.meta), ord);
                            prev
                        }
                        None => {
                            let mut prev = self.v.load(Ordering::Relaxed);
                            loop {
                                match self.v.compare_exchange_weak(
                                    prev,
                                    f(prev),
                                    ord,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(p) => return p,
                                    Err(p) => prev = p,
                                }
                            }
                        }
                    }
                }
            }
        };
    }

    atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );

    /// Model-aware `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
        meta: StdAtomicUsize,
    }

    impl AtomicBool {
        /// Creates a new atomic boolean.
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                v: std::sync::atomic::AtomicBool::new(v),
                meta: StdAtomicUsize::new(0),
            }
        }

        /// Atomic load.
        pub fn load(&self, ord: Ordering) -> bool {
            match rt::current() {
                Some((exec, tid)) => {
                    exec.schedule_point(tid);
                    let out = self.v.load(Ordering::SeqCst);
                    exec.atomic_load_effects(tid, rt::loc_id(&self.meta), ord);
                    out
                }
                None => self.v.load(ord),
            }
        }

        /// Atomic store.
        pub fn store(&self, val: bool, ord: Ordering) {
            match rt::current() {
                Some((exec, tid)) => {
                    exec.schedule_point(tid);
                    self.v.store(val, Ordering::SeqCst);
                    exec.atomic_store_effects(tid, rt::loc_id(&self.meta), ord);
                }
                None => self.v.store(val, ord),
            }
        }

        /// Atomic swap, returning the previous value.
        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            match rt::current() {
                Some((exec, tid)) => {
                    exec.schedule_point(tid);
                    let prev = self.v.load(Ordering::SeqCst);
                    self.v.store(val, Ordering::SeqCst);
                    exec.atomic_rmw_effects(tid, rt::loc_id(&self.meta), ord);
                    prev
                }
                None => self.v.swap(val, ord),
            }
        }

        /// Atomic compare-and-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match rt::current() {
                Some((exec, tid)) => {
                    exec.schedule_point(tid);
                    let loc = rt::loc_id(&self.meta);
                    match self
                        .v
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    {
                        Ok(prev) => {
                            exec.atomic_rmw_effects(tid, loc, success);
                            Ok(prev)
                        }
                        Err(prev) => {
                            exec.atomic_load_effects(tid, loc, failure);
                            Err(prev)
                        }
                    }
                }
                None => self.v.compare_exchange(current, new, success, failure),
            }
        }

        /// Atomic compare-and-exchange with model-injected spurious
        /// failures.
        pub fn compare_exchange_weak(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match rt::current() {
                Some((exec, tid)) => {
                    exec.schedule_point(tid);
                    let loc = rt::loc_id(&self.meta);
                    if exec.spurious_failure() {
                        let prev = self.v.load(Ordering::SeqCst);
                        exec.atomic_load_effects(tid, loc, failure);
                        return Err(prev);
                    }
                    match self
                        .v
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    {
                        Ok(prev) => {
                            exec.atomic_rmw_effects(tid, loc, success);
                            Ok(prev)
                        }
                        Err(prev) => {
                            exec.atomic_load_effects(tid, loc, failure);
                            Err(prev)
                        }
                    }
                }
                None => self.v.compare_exchange_weak(current, new, success, failure),
            }
        }
    }
}

/// Result of a timed condvar wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the (modeled) timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A mutex with the parking_lot API shape (`lock()` returns the guard
/// directly). Under the model, blocking participates in the schedule and
/// lock/unlock carry happens-before edges; outside it, a plain std mutex
/// provides the exclusion.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    meta: StdAtomicUsize,
    fb: std::sync::Mutex<()>,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the mutex provides exclusive access to `data`, either via the
// model scheduler's single-owner bookkeeping or via the fallback std
// mutex, so sharing it across threads is sound whenever `T: Send`.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — all access to `data` goes through the exclusion.
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `Some` in fallback mode: the std guard providing real exclusion.
    fb: Option<std::sync::MutexGuard<'a, ()>>,
    /// `Some` in model mode: the execution and owning thread id.
    model: Option<(Arc<rt::Execution>, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            meta: StdAtomicUsize::new(0),
            fb: std::sync::Mutex::new(()),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquires the mutex, blocking (or model-blocking) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match rt::current() {
            Some((exec, tid)) => {
                exec.mutex_lock(tid, rt::loc_id(&self.meta));
                MutexGuard {
                    lock: self,
                    fb: None,
                    model: Some((exec, tid)),
                }
            }
            None => MutexGuard {
                lock: self,
                fb: Some(self.fb.lock().unwrap_or_else(PoisonError::into_inner)),
                model: None,
            },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match rt::current() {
            Some((exec, tid)) => {
                if exec.mutex_try_lock(tid, rt::loc_id(&self.meta)) {
                    Some(MutexGuard {
                        lock: self,
                        fb: None,
                        model: Some((exec, tid)),
                    })
                } else {
                    None
                }
            }
            None => self.fb.try_lock().ok().map(|g| MutexGuard {
                lock: self,
                fb: Some(g),
                model: None,
            }),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the mutex (model
        // bookkeeping or held std guard), so no other reference exists.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard guarantees exclusivity.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, tid)) = self.model.take() {
            exec.mutex_unlock(tid, rt::loc_id(&self.lock.meta));
        }
    }
}

/// A condition variable paired with [`Mutex`], parking_lot API shape.
#[derive(Debug, Default)]
pub struct Condvar {
    meta: StdAtomicUsize,
    fb: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            meta: StdAtomicUsize::new(0),
            fb: std::sync::Condvar::new(),
        }
    }

    /// Releases the guard's mutex, waits for a notification, reacquires.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match &guard.model {
            Some((exec, tid)) => {
                let (exec, tid) = (Arc::clone(exec), *tid);
                let _ = exec.condvar_wait(
                    tid,
                    rt::loc_id(&self.meta),
                    rt::loc_id(&guard.lock.meta),
                    false,
                );
            }
            None => {
                let g = guard.fb.take().expect("fallback guard missing");
                guard.fb = Some(self.fb.wait(g).unwrap_or_else(PoisonError::into_inner));
            }
        }
    }

    /// Timed wait. Under the model the timeout branch is explored
    /// nondeterministically (there is no real clock in the schedule
    /// space), so callers must tolerate both outcomes — exactly the
    /// discipline a timed wait demands anyway.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        match &guard.model {
            Some((exec, tid)) => {
                let (exec, tid) = (Arc::clone(exec), *tid);
                let timed_out = exec.condvar_wait(
                    tid,
                    rt::loc_id(&self.meta),
                    rt::loc_id(&guard.lock.meta),
                    true,
                );
                WaitTimeoutResult(timed_out)
            }
            None => {
                let g = guard.fb.take().expect("fallback guard missing");
                let (g, r) = self
                    .fb
                    .wait_timeout(g, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                guard.fb = Some(g);
                WaitTimeoutResult(r.timed_out())
            }
        }
    }

    /// Timed wait with an absolute deadline; see [`Condvar::wait_for`].
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        match &guard.model {
            Some(_) => self.wait_for(guard, Duration::from_millis(1)),
            None => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                self.wait_for(guard, timeout)
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        match rt::current() {
            Some((exec, tid)) => exec.condvar_notify(tid, rt::loc_id(&self.meta), false),
            None => self.fb.notify_one(),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match rt::current() {
            Some((exec, tid)) => exec.condvar_notify(tid, rt::loc_id(&self.meta), true),
            None => self.fb.notify_all(),
        }
    }
}
