//! The model-checking runtime: a token-passing scheduler over real OS
//! threads plus vector-clock happens-before tracking.
//!
//! # How it works
//!
//! Exactly one model thread runs at any time (it "holds the token"). Every
//! instrumented operation — atomic access, cell access, mutex/condvar
//! call — is a *schedule point*: the runtime may hand the token to another
//! runnable thread, chosen by a seeded RNG. One execution is one schedule;
//! [`crate::model`] runs many executions with different seeds.
//!
//! Because execution is serialized, the program's loads always observe the
//! latest store — real weak-memory reorderings are not executed. Instead,
//! the declared memory orderings are checked *symbolically* with vector
//! clocks:
//!
//! * a `Release` store publishes the writer's clock to the location,
//! * an `Acquire` load joins the location's clock into the reader,
//! * a `Relaxed` store publishes nothing (and breaks the release chain),
//! * RMW operations extend the existing release sequence,
//! * fences go through a global fence clock.
//!
//! Shimmed [`crate::cell::UnsafeCell`] accesses are then checked against
//! the clocks: a read must happen-after the last write, a write must
//! happen-after every earlier read and write. A violation means the
//! *declared orderings* do not forbid a data race — exactly the bug class
//! that weakening an ordering (e.g. `Release` → `Relaxed` in an unlock)
//! introduces — and the runtime panics with a diagnostic. This catches
//! such bugs on *any* schedule, without needing the racy interleaving to
//! physically occur.
//!
//! Deadlocks (every thread blocked) and runaway executions (op budget
//! exhausted) are also reported.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering as StdOrd};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError,
};

pub use std::sync::atomic::Ordering;

/// Force a token handoff after this many consecutive ops by one thread —
/// guarantees progress for peers even if the RNG never preempts (a thread
/// spinning on a lock would otherwise starve the lock holder forever).
const FORCE_SWITCH_AFTER: u32 = 24;

/// Preempt with probability 1/PREEMPT_ONE_IN at every schedule point.
const PREEMPT_ONE_IN: u64 = 3;

/// Spurious `compare_exchange_weak` failure probability (1 in N).
const SPURIOUS_ONE_IN: u64 = 8;

/// Per-execution operation budget; exceeding it means a livelock (or a
/// test far too big to model-check).
const OP_BUDGET: u64 = 400_000;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The executing model context of the calling thread, if it is a model
/// thread inside [`crate::model`]. `None` means "fallback mode": shim
/// types behave like their std counterparts.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Global location-id allocator. Shim types carry a lazily-assigned id so
/// their constructors stay `const fn`; ids are process-global and each
/// execution keeps its own per-id state.
static NEXT_LOC: AtomicUsize = AtomicUsize::new(1);

/// Resolves (allocating on first use) the location id stored in `meta`.
pub(crate) fn loc_id(meta: &AtomicUsize) -> usize {
    let v = meta.load(StdOrd::Relaxed);
    if v != 0 {
        return v;
    }
    let n = NEXT_LOC.fetch_add(1, StdOrd::Relaxed);
    match meta.compare_exchange(0, n, StdOrd::Relaxed, StdOrd::Relaxed) {
        Ok(_) => n,
        Err(e) => e,
    }
}

/// A vector clock: `vc[tid]` = how far of thread `tid`'s history this
/// clock has observed.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    fn clear(&mut self) {
        self.0.clear();
    }

    /// `true` if the event `(tid, epoch)` happens-before this clock.
    fn covers(&self, tid: usize, epoch: u64) -> bool {
        self.get(tid) >= epoch
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockedOn {
    Mutex(usize),
    Condvar {
        cv: usize,
        timed: bool,
    },
    Join(usize),
    /// Main thread waiting for every spawned thread to finish.
    JoinAll,
}

#[derive(Debug)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

struct ThreadState {
    status: Status,
    vc: VClock,
    consecutive: u32,
    /// Set when a timed condvar wait was woken by "timeout" rather than a
    /// notification; consumed by the waiting thread on resume.
    woke_by_timeout: bool,
    final_vc: VClock,
}

impl ThreadState {
    fn new(vc: VClock) -> Self {
        ThreadState {
            status: Status::Runnable,
            vc,
            consecutive: 0,
            woke_by_timeout: false,
            final_vc: VClock::default(),
        }
    }
}

#[derive(Default)]
struct AtomicMeta {
    /// The release clock carried by the location's current value.
    msg_clock: VClock,
}

#[derive(Default)]
struct CellMeta {
    last_write: Option<(usize, u64)>,
    /// Read epochs per thread since the last write.
    reads: Vec<(usize, u64)>,
}

#[derive(Default)]
struct MutexMeta {
    owner: Option<usize>,
    msg_clock: VClock,
}

struct ExecState {
    threads: Vec<ThreadState>,
    current: usize,
    rng: u64,
    atomics: HashMap<usize, AtomicMeta>,
    cells: HashMap<usize, CellMeta>,
    mutexes: HashMap<usize, MutexMeta>,
    /// Condvar id -> waiting tids, in wait order.
    cv_waiters: HashMap<usize, Vec<usize>>,
    fence_clock: VClock,
    ops: u64,
    failure: Option<String>,
}

impl ExecState {
    fn rand(&mut self) -> u64 {
        // splitmix64.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn rand_one_in(&mut self, n: u64) -> bool {
        self.rand().is_multiple_of(n)
    }

    fn runnable_other(&mut self, me: usize) -> Option<usize> {
        let candidates: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(tid, t)| *tid != me && matches!(t.status, Status::Runnable))
            .map(|(tid, _)| tid)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            let i = (self.rand() % candidates.len() as u64) as usize;
            Some(candidates[i])
        }
    }

    /// A thread blocked in a *timed* condvar wait, if any (deadlock escape
    /// hatch: timed waits may always "time out").
    fn timed_waiter(&self) -> Option<usize> {
        self.threads.iter().position(|t| {
            matches!(
                t.status,
                Status::Blocked(BlockedOn::Condvar { timed: true, .. })
            )
        })
    }

    fn wake_timed(&mut self, tid: usize) {
        if let Status::Blocked(BlockedOn::Condvar { cv, .. }) = self.threads[tid].status {
            if let Some(ws) = self.cv_waiters.get_mut(&cv) {
                ws.retain(|&w| w != tid);
            }
        }
        self.threads[tid].status = Status::Runnable;
        self.threads[tid].woke_by_timeout = true;
    }
}

pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Execution {
    pub(crate) fn new(seed: u64) -> Arc<Self> {
        let exec = Execution {
            state: StdMutex::new(ExecState {
                threads: vec![ThreadState::new({
                    let mut vc = VClock::default();
                    vc.tick(0);
                    vc
                })],
                current: 0,
                rng: seed ^ 0x5bf0_3635_dcf8_2196,
                atomics: HashMap::new(),
                cells: HashMap::new(),
                mutexes: HashMap::new(),
                cv_waiters: HashMap::new(),
                fence_clock: VClock::default(),
                ops: 0,
                failure: None,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        };
        Arc::new(exec)
    }

    fn lock(&self) -> StdGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records `msg` as the execution's failure and panics (unless already
    /// unwinding). All sleeping threads are woken so they can unwind too.
    fn fail(&self, st: StdGuard<'_, ExecState>, msg: String) -> ! {
        let mut st = st;
        if st.failure.is_none() {
            st.failure = Some(msg.clone());
        }
        drop(st);
        self.cv.notify_all();
        panic!("nm-loom: {msg}");
    }

    fn check_failure(&self, st: &ExecState) -> Option<String> {
        st.failure.clone()
    }

    /// The heart of the scheduler: called before every instrumented op.
    /// May hand the token to another thread and block until it returns.
    pub(crate) fn schedule_point(&self, tid: usize) {
        if std::thread::panicking() {
            // Drop-path operations during unwinding must not panic again
            // (that would abort). Skip scheduling; effects still apply.
            return;
        }
        let mut st = self.lock();
        if let Some(msg) = self.check_failure(&st) {
            drop(st);
            panic!("nm-loom: aborting thread {tid}: {msg}");
        }
        st.ops += 1;
        if st.ops > OP_BUDGET {
            let msg = format!(
                "op budget ({OP_BUDGET}) exceeded — livelock, or a test too \
                 large to model-check"
            );
            self.fail(st, msg);
        }
        st.threads[tid].vc.tick(tid);
        st.threads[tid].consecutive += 1;
        let force = st.threads[tid].consecutive >= FORCE_SWITCH_AFTER;
        if force || st.rand_one_in(PREEMPT_ONE_IN) {
            st.threads[tid].consecutive = 0;
            if let Some(next) = st.runnable_other(tid) {
                st.current = next;
                drop(st);
                self.cv.notify_all();
                self.wait_for_turn(tid);
            }
        }
    }

    /// Blocks until the scheduler hands this thread the token.
    pub(crate) fn wait_for_turn(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if let Some(msg) = self.check_failure(&st) {
                drop(st);
                if !std::thread::panicking() {
                    panic!("nm-loom: aborting thread {tid}: {msg}");
                }
                return;
            }
            if st.current == tid && matches!(st.threads[tid].status, Status::Runnable) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks the current thread on `on` and hands the token elsewhere.
    /// Returns once another thread has made this one runnable again (and
    /// the scheduler has picked it).
    fn block_current(&self, tid: usize, on: BlockedOn) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Blocked(on);
        st.threads[tid].consecutive = 0;
        match st.runnable_other(tid) {
            Some(next) => st.current = next,
            None => {
                if let Some(w) = st.timed_waiter() {
                    st.wake_timed(w);
                    st.current = w;
                    if w == tid {
                        // We are the only escape hatch: resume immediately.
                        drop(st);
                        return;
                    }
                } else {
                    let dump: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                        .collect();
                    let msg = format!(
                        "deadlock — every thread is blocked\n  {}",
                        dump.join("\n  ")
                    );
                    self.fail(st, msg);
                }
            }
        }
        drop(st);
        self.cv.notify_all();
        self.wait_for_turn(tid);
    }

    // ----- atomics -----
    //
    // The `*_effects` functions deliberately do NOT contain a schedule
    // point: callers schedule first, then perform the real value operation
    // and the clock effects back-to-back while still holding the token, so
    // the two are atomic with respect to the model.

    pub(crate) fn atomic_load_effects(&self, tid: usize, loc: usize, ord: Ordering) {
        let mut st = self.lock();
        if is_acquire(ord) {
            let clock = st.atomics.entry(loc).or_default().msg_clock.clone();
            st.threads[tid].vc.join(&clock);
            if matches!(ord, Ordering::SeqCst) {
                let fc = st.fence_clock.clone();
                st.threads[tid].vc.join(&fc);
            }
        }
    }

    pub(crate) fn atomic_store_effects(&self, tid: usize, loc: usize, ord: Ordering) {
        let mut st = self.lock();
        let vc = st.threads[tid].vc.clone();
        if matches!(ord, Ordering::SeqCst) {
            st.fence_clock.join(&vc);
        }
        let meta = st.atomics.entry(loc).or_default();
        if is_release(ord) {
            meta.msg_clock = vc;
        } else {
            // A relaxed store begins a new value with no release history —
            // this is what breaks the unlock chain when `Release` is
            // weakened to `Relaxed`.
            meta.msg_clock.clear();
        }
    }

    /// Effects of a successful read-modify-write with ordering `ord`.
    /// An RMW always reads-from the previous value, so a release RMW
    /// *extends* the existing release sequence (join, not overwrite), and
    /// even a relaxed RMW preserves it.
    pub(crate) fn atomic_rmw_effects(&self, tid: usize, loc: usize, ord: Ordering) {
        let mut st = self.lock();
        let prev = st.atomics.entry(loc).or_default().msg_clock.clone();
        if is_acquire(ord) {
            st.threads[tid].vc.join(&prev);
            if matches!(ord, Ordering::SeqCst) {
                let fc = st.fence_clock.clone();
                st.threads[tid].vc.join(&fc);
            }
        }
        if is_release(ord) {
            let vc = st.threads[tid].vc.clone();
            if matches!(ord, Ordering::SeqCst) {
                st.fence_clock.join(&vc);
            }
            st.atomics.entry(loc).or_default().msg_clock.join(&vc);
        }
    }

    /// Whether a `compare_exchange_weak` should fail spuriously this time.
    pub(crate) fn spurious_failure(&self) -> bool {
        let mut st = self.lock();
        st.rand_one_in(SPURIOUS_ONE_IN)
    }

    pub(crate) fn fence(&self, tid: usize, ord: Ordering) {
        self.schedule_point(tid);
        let mut st = self.lock();
        if is_acquire(ord) {
            let fc = st.fence_clock.clone();
            st.threads[tid].vc.join(&fc);
        }
        if is_release(ord) {
            let vc = st.threads[tid].vc.clone();
            st.fence_clock.join(&vc);
        }
    }

    // ----- cells (data-race detection) -----

    pub(crate) fn cell_read(&self, tid: usize, loc: usize) {
        self.schedule_point(tid);
        let mut st = self.lock();
        let me = st.threads[tid].vc.clone();
        let meta = st.cells.entry(loc).or_default();
        if let Some((wt, we)) = meta.last_write {
            if wt != tid && !me.covers(wt, we) {
                let msg = format!(
                    "data race on UnsafeCell (loc {loc}): thread {tid} reads a value \
                     written by thread {wt} without a happens-before edge \
                     (missing acquire/release synchronization)"
                );
                self.fail(st, msg);
            }
        }
        let epoch = me.get(tid);
        match meta.reads.iter_mut().find(|(t, _)| *t == tid) {
            Some(r) => r.1 = epoch,
            None => meta.reads.push((tid, epoch)),
        }
    }

    pub(crate) fn cell_write(&self, tid: usize, loc: usize) {
        self.schedule_point(tid);
        let mut st = self.lock();
        let me = st.threads[tid].vc.clone();
        let meta = st.cells.entry(loc).or_default();
        if let Some((wt, we)) = meta.last_write {
            if wt != tid && !me.covers(wt, we) {
                let msg = format!(
                    "data race on UnsafeCell (loc {loc}): thread {tid} overwrites a \
                     value written by thread {wt} without a happens-before edge"
                );
                self.fail(st, msg);
            }
        }
        if let Some(&(rt, re)) = meta
            .reads
            .iter()
            .find(|(rt, re)| *rt != tid && !me.covers(*rt, *re))
        {
            let _ = re;
            let msg = format!(
                "data race on UnsafeCell (loc {loc}): thread {tid} writes while a \
                 read by thread {rt} is unordered with it"
            );
            self.fail(st, msg);
        }
        let epoch = me.get(tid);
        meta.last_write = Some((tid, epoch));
        meta.reads.clear();
    }

    // ----- mutex / condvar -----

    pub(crate) fn mutex_lock(&self, tid: usize, id: usize) {
        loop {
            self.schedule_point(tid);
            let mut st = self.lock();
            let m = st.mutexes.entry(id).or_default();
            if m.owner.is_none() {
                m.owner = Some(tid);
                let clock = m.msg_clock.clone();
                st.threads[tid].vc.join(&clock);
                return;
            }
            drop(st);
            self.block_current(tid, BlockedOn::Mutex(id));
        }
    }

    pub(crate) fn mutex_try_lock(&self, tid: usize, id: usize) -> bool {
        self.schedule_point(tid);
        let mut st = self.lock();
        let m = st.mutexes.entry(id).or_default();
        if m.owner.is_none() {
            m.owner = Some(tid);
            let clock = m.msg_clock.clone();
            st.threads[tid].vc.join(&clock);
            true
        } else {
            false
        }
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, id: usize) {
        // Called from guard Drop — must never panic (see schedule_point).
        let mut st = self.lock();
        if st.mutexes.entry(id).or_default().owner != Some(tid) {
            // The guard is being dropped mid-condvar-wait (the wait
            // already released the mutex) or while unwinding after a
            // model failure — nothing to release.
            return;
        }
        st.threads[tid].vc.tick(tid);
        let vc = st.threads[tid].vc.clone();
        let m = st.mutexes.entry(id).or_default();
        m.owner = None;
        m.msg_clock.join(&vc);
        // Wake every waiter; they re-compete for the lock.
        for t in st.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(BlockedOn::Mutex(m)) if m == id) {
                t.status = Status::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Condvar wait: atomically release the mutex and sleep; on wake,
    /// reacquire. Returns `true` if the wake was a (modeled) timeout.
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, mutex: usize, timed: bool) -> bool {
        self.schedule_point(tid);
        // A timed wait may simply time out before anything happens — model
        // that branch with a scheduler coin flip.
        if timed {
            let mut st = self.lock();
            if st.rand_one_in(4) {
                return true;
            }
        }
        {
            let mut st = self.lock();
            st.cv_waiters.entry(cv).or_default().push(tid);
            st.threads[tid].woke_by_timeout = false;
            // Release the mutex exactly as mutex_unlock does.
            let vc = st.threads[tid].vc.clone();
            let m = st.mutexes.entry(mutex).or_default();
            debug_assert_eq!(m.owner, Some(tid), "condvar wait without the mutex");
            m.owner = None;
            m.msg_clock.join(&vc);
            for t in st.threads.iter_mut() {
                if matches!(t.status, Status::Blocked(BlockedOn::Mutex(mm)) if mm == mutex) {
                    t.status = Status::Runnable;
                }
            }
            drop(st);
            self.cv.notify_all();
        }
        self.block_current(tid, BlockedOn::Condvar { cv, timed });
        let timed_out = {
            let mut st = self.lock();
            std::mem::take(&mut st.threads[tid].woke_by_timeout)
        };
        self.mutex_lock(tid, mutex);
        timed_out
    }

    pub(crate) fn condvar_notify(&self, tid: usize, cv: usize, all: bool) {
        self.schedule_point(tid);
        let mut st = self.lock();
        let Some(waiters) = st.cv_waiters.get_mut(&cv) else {
            return;
        };
        let woken: Vec<usize> = if all {
            std::mem::take(waiters)
        } else if waiters.is_empty() {
            Vec::new()
        } else {
            vec![waiters.remove(0)]
        };
        for w in woken {
            st.threads[w].status = Status::Runnable;
            st.threads[w].woke_by_timeout = false;
        }
        drop(st);
        self.cv.notify_all();
    }

    // ----- threads -----

    /// Registers a new model thread whose clock inherits the parent's.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock();
        st.threads[parent].vc.tick(parent);
        let mut vc = st.threads[parent].vc.clone();
        let tid = st.threads.len();
        vc.tick(tid);
        st.threads.push(ThreadState::new(vc));
        tid
    }

    pub(crate) fn store_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h);
    }

    pub(crate) fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.handles.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Marks `tid` finished, records a failure if it panicked, wakes its
    /// joiners and hands the token onward. Never panics.
    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[tid].vc.tick(tid);
        st.threads[tid].final_vc = st.threads[tid].vc.clone();
        st.threads[tid].status = Status::Finished;
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                st.failure = Some(format!("thread {tid} panicked: {msg}"));
            }
        }
        // Wake joiners of this thread.
        for t in st.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(BlockedOn::Join(j)) if j == tid) {
                t.status = Status::Runnable;
            }
        }
        // Wake the main thread if it waits for all and all are done.
        let all_done = st
            .threads
            .iter()
            .enumerate()
            .all(|(i, t)| i == 0 || matches!(t.status, Status::Finished));
        if all_done {
            if let Status::Blocked(BlockedOn::JoinAll) = st.threads[0].status {
                st.threads[0].status = Status::Runnable;
            }
        }
        if st.current == tid {
            if let Some(next) = st.runnable_other(tid) {
                st.current = next;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Joins `target`: blocks until it finishes, then inherits its clock.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        self.schedule_point(tid);
        loop {
            let st = self.lock();
            if matches!(st.threads[target].status, Status::Finished) {
                let mut st = st;
                let fvc = st.threads[target].final_vc.clone();
                st.threads[tid].vc.join(&fvc);
                return;
            }
            drop(st);
            self.block_current(tid, BlockedOn::Join(target));
        }
    }

    /// Main-thread epilogue: keep the scheduler running until every
    /// spawned thread has finished (tests normally join explicitly; this
    /// covers detached threads and panics-after-spawn).
    pub(crate) fn drain(&self, tid: usize) {
        loop {
            let st = self.lock();
            if let Some(msg) = self.check_failure(&st) {
                drop(st);
                panic!("nm-loom: {msg}");
            }
            let all_done = st
                .threads
                .iter()
                .enumerate()
                .all(|(i, t)| i == tid || matches!(t.status, Status::Finished));
            if all_done {
                return;
            }
            drop(st);
            self.block_current(tid, BlockedOn::JoinAll);
        }
    }

    pub(crate) fn failure(&self) -> Option<String> {
        self.lock().failure.clone()
    }

    pub(crate) fn set_failure(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        drop(st);
        self.cv.notify_all();
    }
}
