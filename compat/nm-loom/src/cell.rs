//! Instrumented interior-mutability cell with data-race detection.

use std::sync::atomic::AtomicUsize;

use crate::rt;

/// A checked [`std::cell::UnsafeCell`]: inside [`crate::model`] every
/// access is validated against the vector clocks — two accesses without a
/// happens-before edge (at least one of them a write) panic the execution
/// with a data-race report. Outside a model run it is a plain cell.
///
/// Access is closure-scoped (`with` / `with_mut`) so the runtime can
/// bracket the raw pointer's lifetime, mirroring the real loom API.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    meta: AtomicUsize,
    data: std::cell::UnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    /// Creates a new cell holding `value`.
    pub const fn new(value: T) -> Self {
        UnsafeCell {
            meta: AtomicUsize::new(0),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Immutable access. Under the model this is checked to happen-after
    /// the last write to the cell.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((exec, tid)) = rt::current() {
            exec.cell_read(tid, rt::loc_id(&self.meta));
        }
        f(self.data.get())
    }

    /// Mutable access. Under the model this is checked to happen-after
    /// every earlier read and write of the cell.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((exec, tid)) = rt::current() {
            exec.cell_write(tid, rt::loc_id(&self.meta));
        }
        f(self.data.get())
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        UnsafeCell::new(T::default())
    }
}

// SAFETY: like `std::cell::UnsafeCell`, sending the cell moves its value.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: sharing is what this type exists to test — the caller asserts a
// synchronization protocol orders the accesses (as with a raw cell inside
// a lock), and the model checks that assertion dynamically.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}
