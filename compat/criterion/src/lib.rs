//! Vendored, dependency-free subset of the [`criterion`] benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships minimal local implementations of the third-party APIs it
//! consumes (see `compat/README.md`). This harness supports the
//! surface the `nm-benches` crate uses — [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! [`Bencher::iter`], [`Bencher::iter_custom`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery:
//!
//! * warm up for `warm_up_time`,
//! * run timed batches until `measurement_time` elapses (at least
//!   `sample_size` batches),
//! * report the mean, min and max ns/iter on stdout.
//!
//! No plots, no outlier analysis, no saved baselines. Numbers printed by
//! this harness are honest wall-clock means and good enough to reproduce
//! the paper's relative comparisons; absolute values carry more noise than
//! real criterion's.
//!
//! `--test` in the arguments (as passed by `cargo test --benches`) switches
//! to a single-iteration smoke run so CI exercises every bench cheaply.
//!
//! [`criterion`]: https://docs.rs/criterion

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as benchmark names (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name of the benchmark.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Accumulated (total duration, total iterations) of the measurement.
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Measures `f` repeatedly, timing whole batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        self.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed()
        });
    }

    /// Measures with a caller-supplied timing loop: `f(iters)` must run the
    /// workload `iters` times and return the elapsed time.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        if self.settings.smoke {
            let d = f(1);
            self.result = Some((d, 1));
            return;
        }
        // Warm-up: also used to pick a batch size aiming at ~10 batches
        // per measurement window.
        let mut batch = 1u64;
        let warm_deadline = Instant::now() + self.settings.warm_up_time;
        let mut warm_time = Duration::ZERO;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline {
            warm_time += f(batch);
            warm_iters += batch;
            if warm_time < self.settings.warm_up_time / 4 {
                batch = batch.saturating_mul(2);
            }
        }
        let per_iter = if warm_iters > 0 {
            (warm_time.as_nanos() as u64 / warm_iters.max(1)).max(1)
        } else {
            1
        };
        let target_batches = self.settings.sample_size.max(1) as u64;
        let budget_ns = self.settings.measurement_time.as_nanos() as u64;
        batch = (budget_ns / per_iter / target_batches).clamp(1, 1 << 24);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut batches = 0u64;
        let deadline = Instant::now() + self.settings.measurement_time;
        while batches < target_batches || Instant::now() < deadline {
            total += f(batch);
            iters += batch;
            batches += 1;
            if batches >= target_batches && Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((total, iters));
    }
}

#[derive(Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke: bool,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            smoke: false,
            filter: None,
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the minimum number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`--test` smoke mode, a name filter).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.settings.smoke = true,
                "--bench" => {}
                // Options with a value we accept and ignore.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                filter => self.settings.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = id.into_id();
        run_one(&self.settings, &name, f);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the minimum number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&self.settings, &name, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&self.settings, &name, |b| f(b, input));
    }

    /// Ends the group (output is flushed per-bench; kept for API parity).
    pub fn finish(self) {}
}

fn run_one(settings: &Settings, name: &str, mut f: impl FnMut(&mut Bencher)) {
    if let Some(filter) = &settings.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        settings,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) if iters > 0 => {
            let ns = total.as_nanos() as f64 / iters as f64;
            println!("{name}: {ns:.1} ns/iter ({iters} iters in {total:.2?})");
        }
        _ => println!("{name}: no measurement recorded"),
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let settings = Settings {
            smoke: true,
            ..Default::default()
        };
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.result.unwrap().1, 1);
    }

    #[test]
    fn measured_mode_respects_budget() {
        let settings = Settings {
            sample_size: 5,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
            smoke: false,
            filter: None,
        };
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        b.iter(|| black_box(1 + 1));
        let (total, iters) = b.result.unwrap();
        assert!(iters > 0);
        assert!(total >= Duration::from_millis(10), "measured {total:?}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 256).into_id(), "f/256");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
