//! Vendored, dependency-free subset of the [`crossbeam-queue`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships minimal local implementations of the third-party APIs it
//! consumes (see `crates/compat/README.md`).
//!
//! [`SegQueue`] here is a mutex-protected `VecDeque` rather than the real
//! lock-free segmented queue: identical semantics (unbounded MPMC FIFO),
//! different scalability. The queues guarded by it in `nm-progress` are
//! control-plane paths (submission offload, tasklet pending lists), not the
//! per-message hot path, so the difference does not distort the paper's
//! figures.
//!
//! [`crossbeam-queue`]: https://docs.rs/crossbeam-queue

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// An unbounded MPMC FIFO queue.
pub struct SegQueue<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub const fn new() -> Self {
        SegQueue {
            q: Mutex::new(VecDeque::new()),
        }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.q.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `value` at the back.
    pub fn push(&self, value: T) {
        self.guard().push_back(value);
    }

    /// Dequeues from the front, `None` if empty.
    pub fn pop(&self) -> Option<T> {
        self.guard().pop_front()
    }

    /// Number of queued elements (racy snapshot, like the real crate).
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// `true` if the queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_delivers_everything_exactly_once() {
        let q = Arc::new(SegQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..1000 {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = q.pop() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        assert_eq!(seen.len(), 4000);
    }
}
