//! Vendored, dependency-free subset of the [`crossbeam-deque`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships minimal local implementations of the third-party APIs it
//! consumes (see `crates/compat/README.md`).
//!
//! [`Worker`], [`Stealer`] and [`Injector`] here are mutex-protected
//! `VecDeque`s rather than the real Chase–Lev lock-free deques: the
//! work-stealing *semantics* used by `nm-sched` (FIFO local queue, batch
//! refill from the injector, sibling stealing) are preserved, while the
//! synchronization is a plain lock. `nm-sched` schedules coarse tasks
//! (communication progression passes, bench workloads), so lock cost is
//! noise relative to task run time.
//!
//! [`crossbeam-deque`]: https://docs.rs/crossbeam-deque

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.
    ///
    /// The mutex-backed implementation never loses races, so this variant
    /// is never produced here; it exists so `match` arms written against
    /// the real crate still compile.
    Retry,
}

/// A FIFO worker queue owned by one scheduler thread.
pub struct Worker<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker {
            q: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a [`Stealer`] handle for other threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }

    /// Pushes a task onto the local queue.
    pub fn push(&self, task: T) {
        lock(&self.q).push_back(task);
    }

    /// Pops the next local task (FIFO order).
    pub fn pop(&self) -> Option<T> {
        lock(&self.q).pop_front()
    }

    /// `true` if the local queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Worker { .. }")
    }
}

/// A handle that steals tasks from another worker's queue.
pub struct Stealer<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals one task from the front of the sibling's queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

/// A global FIFO injector queue shared by all workers.
pub struct Injector<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        lock(&self.q).push_back(task);
    }

    /// Pops one task directly from the injector.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Moves a batch of tasks into `dest` and pops one of them.
    ///
    /// Like the real crate, takes roughly half the injector (bounded), so
    /// one worker does not drain the whole global queue.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        const MAX_BATCH: usize = 32;
        let mut g = lock(&self.q);
        let first = match g.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        let extra = (g.len() / 2).min(MAX_BATCH);
        if extra > 0 {
            let mut dest_q = lock(&dest.q);
            for _ in 0..extra {
                match g.pop_front() {
                    Some(t) => dest_q.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// `true` if the injector is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }

    /// Number of queued tasks (racy snapshot).
    pub fn len(&self) -> usize {
        lock(&self.q).len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_and_stealer() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_refill() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        // Pops 0, moves a batch of the rest into the worker.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty());
        let mut drained = Vec::new();
        while let Some(v) = w.pop() {
            drained.push(v);
        }
        while let Steal::Success(v) = inj.steal() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, (1..10).collect::<Vec<_>>());
    }

    #[test]
    fn everything_delivered_once_under_stealing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inj = Arc::new(Injector::new());
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..4000 {
            inj.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let w = Worker::new_fifo();
                    loop {
                        let task = w.pop().or_else(|| match inj.steal_batch_and_pop(&w) {
                            Steal::Success(t) => Some(t),
                            _ => None,
                        });
                        match task {
                            Some(_) => {
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 4000);
    }
}
