//! Vendored, dependency-free subset of the [`crossbeam-utils`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships minimal local implementations of the third-party APIs it
//! consumes (see `crates/compat/README.md`). Only [`CachePadded`] is used
//! by the nomad stack.
//!
//! [`crossbeam-utils`]: https://docs.rs/crossbeam-utils

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so two `CachePadded` values never
/// share a cache line (128 covers the spatial prefetcher pairs on x86 and
/// the 128-byte lines on some AArch64 parts).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let a = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let p0 = &a[0] as *const _ as usize;
        let p1 = &a[1] as *const _ as usize;
        assert!(p1 - p0 >= 128, "values share a cache line");
    }

    #[test]
    fn deref_round_trip() {
        let mut c = CachePadded::new(7u64);
        *c += 1;
        assert_eq!(*c, 8);
        assert_eq!(c.into_inner(), 8);
    }
}
