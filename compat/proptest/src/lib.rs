//! Vendored, dependency-free subset of the [`proptest`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships minimal local implementations of the third-party APIs it
//! consumes (see `crates/compat/README.md`). This crate supports the
//! surface the nomad test suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig { cases, .. })]` header,
//! * strategies: integer ranges, tuples (arity 2–6), [`any`],
//!   [`collection::vec`], [`Strategy::prop_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate, chosen for reproducibility in offline
//! CI:
//!
//! * **Deterministic by default.** Case seeds derive from the test name and
//!   case index, so every run and every machine explores the same inputs.
//!   Set `NOMAD_PROPTEST_RANDOM=1` to mix the clock into the base seed, or
//!   `NOMAD_PROPTEST_SEED=<hex>` to replay one specific case.
//! * **No shrinking.** On failure the runner reports the generated inputs
//!   and the case seed; inputs here are small enough to debug directly.
//! * **Regression files** (`<test>.proptest-regressions`) use a plain
//!   `seed <16-hex-digits>` line format. Legacy `cc <hash>` entries from
//!   the real proptest are ignored with a warning (their hashes are not
//!   reproducible outside the original implementation); convert any case
//!   they shrank to into an explicit unit test instead. New failures are
//!   appended in the new format automatically.
//!
//! [`proptest`]: https://docs.rs/proptest

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

pub mod collection;
pub mod runner;

/// Error type carried by failing [`prop_assert!`] macros.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration (subset of the real crate's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic splitmix64 RNG used for input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele et al.): passes BigCrush, two multiplications.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * bound,
        // irrelevant for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test inputs.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests over generated inputs.
///
/// Supported grammar (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 1..8)) {
///         prop_assert!(v.len() < 8 || x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run(
                &config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__nomad_rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __nomad_rng);)+
                    let __nomad_desc = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __nomad_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__nomad_desc, __nomad_result)
                },
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the enclosing property if `cond` is false (non-panicking return).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}: `{:?}` != `{:?}`", ::std::format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_checks(
            x in 1usize..100,
            v in prop::collection::vec(any::<u8>(), 0..16),
            ab in (0u16..10, 0u16..10),
        ) {
            let (a, b) = ab;
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 16);
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let config = crate::ProptestConfig {
            cases: 4,
            ..Default::default()
        };
        let err = std::panic::catch_unwind(|| {
            crate::runner::run(
                &config,
                env!("CARGO_MANIFEST_DIR"),
                "src/nonexistent_for_test.rs",
                "always_fails",
                |rng: &mut crate::TestRng| {
                    let x = Strategy::generate(&(0u32..10), rng);
                    (
                        format!("x = {x:?}; "),
                        Err(crate::TestCaseError::fail("boom")),
                    )
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "panic message was: {msg}");
        assert!(msg.contains("NOMAD_PROPTEST_SEED"), "no replay hint: {msg}");
        // Clean up the regression file the failing run appended.
        let _ = std::fs::remove_file(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/src/nonexistent_for_test.proptest-regressions"
        ));
    }
}
