//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::generate(&self.len, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let strat = vec(0u8..255, 2..5);
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
