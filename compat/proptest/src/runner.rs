//! The case runner: deterministic seeding, regression-file replay, and
//! failure reporting.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::{ProptestConfig, TestCaseError, TestRng};

/// Environment variable replaying a single case seed (16 hex digits).
pub const SEED_ENV: &str = "NOMAD_PROPTEST_SEED";
/// Environment variable mixing the clock into the base seed.
pub const RANDOM_ENV: &str = "NOMAD_PROPTEST_RANDOM";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Locates the source file on disk by walking up from the manifest dir
/// (`file!()` may be manifest-relative or workspace-relative depending on
/// how cargo invoked rustc).
fn locate_source(manifest_dir: &str, file: &str) -> Option<PathBuf> {
    let file = Path::new(file);
    if file.is_absolute() {
        return file.exists().then(|| file.to_path_buf());
    }
    for anc in Path::new(manifest_dir).ancestors() {
        let candidate = anc.join(file);
        if candidate.exists() {
            return Some(candidate);
        }
    }
    None
}

fn regression_path(manifest_dir: &str, file: &str) -> Option<PathBuf> {
    locate_source(manifest_dir, file).map(|p| p.with_extension("proptest-regressions"))
}

/// Parses `seed <16-hex>` lines; warns once about legacy `cc` entries.
fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("seed ") {
            let hex = rest.split_whitespace().next().unwrap_or("");
            let hex = hex.trim_start_matches("0x");
            match u64::from_str_radix(hex, 16) {
                Ok(s) => seeds.push(s),
                Err(_) => eprintln!(
                    "proptest-compat: ignoring malformed seed line in {}: {line:?}",
                    path.display()
                ),
            }
        } else if line.starts_with("cc ") {
            eprintln!(
                "proptest-compat: ignoring legacy upstream-proptest entry in {} \
                 (not replayable offline; convert it to an explicit unit test): {line:?}",
                path.display()
            );
        }
    }
    seeds
}

fn persist_failure(path: Option<&Path>, seed: u64, test: &str) {
    let Some(path) = path else { return };
    use std::io::Write;
    let new_file = !path.exists();
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| {
            if new_file {
                writeln!(
                    f,
                    "# Failing case seeds recorded by the vendored proptest runner.\n\
                     # Each `seed <16-hex>` line is replayed before generated cases.\n\
                     # Check this file in so CI replays past failures."
                )?;
            }
            writeln!(f, "seed {seed:016x} # {test}")
        });
    if let Err(e) = res {
        eprintln!("proptest-compat: could not persist regression seed: {e}");
    }
}

enum CaseSource {
    Regression,
    Generated,
    EnvReplay,
}

/// Runs one property: regression seeds first, then `config.cases` generated
/// cases. Panics (failing the `#[test]`) on the first failing case with the
/// inputs, the seed, and a replay hint.
pub fn run<F>(config: &ProptestConfig, manifest_dir: &str, file: &str, test: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let reg_path = regression_path(manifest_dir, file);

    let mut plan: Vec<(u64, CaseSource)> = Vec::new();
    if let Ok(seed_hex) = std::env::var(SEED_ENV) {
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16)
            .unwrap_or_else(|_| panic!("{SEED_ENV} must be a hex u64, got {seed_hex:?}"));
        plan.push((seed, CaseSource::EnvReplay));
    } else {
        if let Some(p) = reg_path.as_deref() {
            for s in load_regression_seeds(p) {
                plan.push((s, CaseSource::Regression));
            }
        }
        let mut base = fnv1a(test.as_bytes()) ^ fnv1a(file.as_bytes());
        if std::env::var_os(RANDOM_ENV).is_some() {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            base ^= t;
            eprintln!("proptest-compat: randomized base seed {base:016x} for {test}");
        }
        let mut seq = TestRng::new(base);
        for _ in 0..config.cases {
            plan.push((seq.next_u64(), CaseSource::Generated));
        }
    }

    for (i, (seed, source)) in plan.iter().enumerate() {
        let mut rng = TestRng::new(*seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        let (desc, failure) = match outcome {
            Ok((desc, Ok(()))) => (desc, None),
            Ok((desc, Err(e))) => (desc, Some(e.to_string())),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                ("<inputs unavailable: case panicked>".into(), Some(msg))
            }
        };
        if let Some(msg) = failure {
            if matches!(source, CaseSource::Generated) {
                persist_failure(reg_path.as_deref(), *seed, test);
            }
            let kind = match source {
                CaseSource::Regression => "regression-file case",
                CaseSource::Generated => "generated case",
                CaseSource::EnvReplay => "env-replayed case",
            };
            panic!(
                "property {test} failed on {kind} {i}\n  inputs: {desc}\n  cause: {msg}\n  \
                 replay with: {SEED_ENV}={seed:016x}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // A changed hash would silently change every derived case seed.
        assert_eq!(fnv1a(b"nomad"), fnv1a(b"nomad"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn regression_seed_parsing() {
        let dir = std::env::temp_dir().join("nomad-proptest-compat-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("sample.proptest-regressions");
        std::fs::write(
            &p,
            "# comment\n\
             cc 024108d3e4f97e19 # legacy, ignored\n\
             seed 00000000000000ff # replayable\n\
             seed 0x10\n",
        )
        .unwrap();
        assert_eq!(load_regression_seeds(&p), vec![0xff, 0x10]);
        let _ = std::fs::remove_file(&p);
    }
}
