//! Vendored, dependency-free subset of the [`parking_lot`] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships minimal local implementations of the third-party APIs it
//! consumes (see `crates/compat/README.md`). This crate wraps
//! `std::sync::{Mutex, RwLock, Condvar}` behind `parking_lot`'s
//! poison-free, guard-returning API:
//!
//! * [`Mutex::lock`] returns the guard directly (no `Result`),
//! * [`Condvar::wait`]/[`Condvar::wait_for`]/[`Condvar::wait_until`] take
//!   the guard by `&mut` and reacquire in place,
//! * poisoning is swallowed: a panic while holding a lock does not poison
//!   it for other threads (parking_lot semantics).
//!
//! Performance characteristics differ from the real parking_lot (std mutex
//! vs. adaptive WordLock) but every bench that compares "OS mutex" numbers
//! against `nm-sync` primitives still measures a genuine blocking mutex.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can take it out
/// for the duration of a wait and put the reacquired guard back — this is
/// what lets `wait` take `&mut MutexGuard` like the real parking_lot.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// Whether a timed condition-variable wait returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (std-backed).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or the `deadline` instant passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
        assert!(cv
            .wait_until(&mut g, Instant::now() - Duration::from_millis(1))
            .timed_out());
    }

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("on purpose");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
