//! Lock/event instrumentation — re-exported from [`nm_trace::counters`].
//!
//! [`LockStats`] and [`Counter`] used to be defined here; they moved to
//! `nm-trace` so every layer shares one counter registry
//! ([`nm_trace::counters::registry`]) instead of bespoke per-crate
//! stats structs. This module remains the `nm-sync`-facing path.

pub use nm_trace::counters::{registry, Counter, CounterRegistry, LockStats};
