//! Lightweight lock/event instrumentation.
//!
//! The paper decomposes thread-support overheads into per-primitive
//! constants (70 ns per lock acquire/release cycle, 750 ns per context
//! switch, …). These counters let the calibration harness attribute costs:
//! how many lock operations sit on the critical path of one pingpong
//! iteration, and how often they were contended.

use std::sync::atomic::{AtomicU64, Ordering};

/// Acquisition/contention counters attached to every lock in the stack.
///
/// All increments are `Relaxed` single atomic adds; on x86-64 this costs on
/// the order of a nanosecond and does not perturb the measured constants at
/// the precision the paper reports.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl LockStats {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        LockStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Records one successful acquisition; `contended` when the fast path
    /// failed and the acquirer had to spin.
    #[inline]
    pub fn record_acquire(&self, contended: bool) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the lock held and had to spin.
    pub fn contentions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        let acq = self.acquisitions();
        if acq == 0 {
            0.0
        } else {
            self.contentions() as f64 / acq as f64
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
    }
}

/// A general-purpose relaxed event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_stats_accumulate() {
        let s = LockStats::new();
        s.record_acquire(false);
        s.record_acquire(true);
        s.record_acquire(true);
        assert_eq!(s.acquisitions(), 3);
        assert_eq!(s.contentions(), 2);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.contention_ratio(), 0.0);
    }

    #[test]
    fn counter_take_swaps_to_zero() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }
}
