//! Lock/event instrumentation — re-exported from [`nm_trace::counters`]
//! (which itself re-exports the always-on `nm-metrics` crate).
//!
//! [`LockStats`] and [`Counter`] used to be defined here; they moved
//! down the stack so every layer shares one counter registry
//! ([`nm_trace::counters::registry`], the same object as
//! `nm_metrics::metrics().counters()`) instead of bespoke per-crate
//! stats structs. This module remains the `nm-sync`-facing path.

use std::sync::{Arc, OnceLock};

pub use nm_trace::counters::{registry, Counter, CounterRegistry, LockStats, ShardedCounter};

/// Stack-wide histogram of contended lock wait times, in nanoseconds.
///
/// Fed by every [`crate::RawSpin`]/[`crate::SpinLock`] acquisition that
/// missed its fast-path CAS and by every [`crate::TicketLock`]
/// acquisition that found an earlier ticket still being served. The
/// uncontended fast path never touches it (and pays no timestamp),
/// matching the paper's cost model where an uncontended acquire/release
/// cycle is a single CAS pair.
pub fn lock_wait_hist() -> &'static Arc<nm_metrics::Histogram> {
    static H: OnceLock<Arc<nm_metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| nm_metrics::metrics().histogram("sync.lock.wait_ns"))
}
