//! Runtime lock-order validation ("lockdep-lite").
//!
//! With the `lockcheck` feature enabled, every acquisition of a lock that
//! carries a *class* name records an ordering edge `held-class →
//! acquired-class` in a global graph, and every acquisition is checked
//! against that graph: if taking the lock would close a cycle (an AB/BA
//! inversion, or a longer one), the process panics immediately with
//! **both** conflicting acquisition stacks — the one being taken now and
//! the one that established the reverse order earlier. Deadlocks are thus
//! caught the first time the two code paths ever run, not the one time in
//! a million they actually interleave.
//!
//! Classes are static strings (e.g. `"core.collect"`, `"core.driver"`);
//! ordering is tracked per *class*, like Linux's lockdep, so one
//! validated run covers every instance. Acquiring two locks of the same
//! class at once is reported as a recursive acquisition — no class in the
//! nomad stack legitimately nests with itself (the section discipline in
//! `nm-core::locking` forbids it). The exception is *shared* classes
//! ([`acquired_shared`]): many distinct locks deliberately share one
//! class name (e.g. the `core.*.overflow` classes covering gate indices
//! beyond the static class tables), so same-class nesting is allowed for
//! them while cross-class ordering is still validated.
//!
//! [`dump_graph_json`] exports the edges observed so far, which is how
//! `cargo xtask analyze-locks` cross-checks its static
//! may-hold-while-acquiring graph against runtime evidence.
//!
//! Without the feature every function here is an empty `#[inline]` stub,
//! so the hot path costs nothing in normal builds. Enable it for tests
//! and debugging:
//!
//! ```sh
//! cargo test -p nm-sync -p nm-core -p nm-progress --features lockcheck
//! ```
//!
//! Backtraces honour `RUST_BACKTRACE=1`; without it the panic still
//! reports both held-lock stacks, just without source frames.

/// Records that the current thread acquired a lock of `class`, after
/// validating the acquisition against the global lock-order graph.
///
/// # Panics
///
/// Panics (feature `lockcheck` only) if the acquisition closes an
/// ordering cycle or recursively takes an already-held class.
#[inline]
pub fn acquired(class: &'static str) {
    #[cfg(feature = "lockcheck")]
    imp::acquire(class, false);
    #[cfg(not(feature = "lockcheck"))]
    let _ = class;
}

/// Like [`acquired`], but for *shared* (multi-instance) classes: many
/// distinct locks share the class name, so holding two of them at once is
/// legitimate and is not reported as a recursive acquisition. Ordering
/// against *other* classes is validated exactly as for [`acquired`].
///
/// Used for the lock-class overflow pools in `nm-core::locking`, where
/// every gate index beyond the static class table maps to one per-family
/// class (`core.collect.tx.overflow`, ...).
///
/// # Panics
///
/// Panics (feature `lockcheck` only) if the acquisition closes an
/// ordering cycle against a different class.
#[inline]
pub fn acquired_shared(class: &'static str) {
    #[cfg(feature = "lockcheck")]
    imp::acquire(class, true);
    #[cfg(not(feature = "lockcheck"))]
    let _ = class;
}

/// Records that the current thread released a lock of `class`.
#[inline]
pub fn released(class: &'static str) {
    #[cfg(feature = "lockcheck")]
    imp::released(class);
    #[cfg(not(feature = "lockcheck"))]
    let _ = class;
}

/// `true` when lock-order validation is compiled in.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "lockcheck")
}

/// The lock classes the current thread holds, outermost first. Empty
/// without the feature; useful in tests and diagnostics.
pub fn held_classes() -> Vec<&'static str> {
    #[cfg(feature = "lockcheck")]
    {
        imp::held_classes()
    }
    #[cfg(not(feature = "lockcheck"))]
    {
        Vec::new()
    }
}

/// Serializes every ordering edge observed so far as a JSON document:
///
/// ```json
/// {"schema": 1, "enabled": true,
///  "edges": [{"from": "core.api-global", "to": "core.request.data",
///             "held": ["core.api-global"]}]}
/// ```
///
/// `held` is the full held stack (outermost first) when the edge was
/// first recorded. Edges are sorted by `(from, to)` so the output is
/// deterministic for a given workload. Backtraces are not included —
/// consumers (`cargo xtask analyze-locks --runtime-graph`) only diff the
/// edge set. Without the `lockcheck` feature the document is
/// `{"schema": 1, "enabled": false, "edges": []}`.
pub fn dump_graph_json() -> String {
    #[cfg(feature = "lockcheck")]
    {
        imp::dump_graph_json()
    }
    #[cfg(not(feature = "lockcheck"))]
    {
        "{\"schema\": 1, \"enabled\": false, \"edges\": []}\n".to_string()
    }
}

#[cfg(feature = "lockcheck")]
mod imp {
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    // std-sync: the graph guard is lockcheck's own infrastructure — it
    // must not itself be a classed lock (it would recurse into the
    // checker), and PoisonError unwrapping keeps panics propagating.
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Where an ordering edge was first established.
    struct EdgeOrigin {
        /// The full held stack at the time (outermost first).
        held: Vec<&'static str>,
        backtrace: String,
    }

    #[derive(Default)]
    struct Graph {
        /// `edges[a][b]` exists ⇔ some thread acquired class `b` while
        /// holding class `a` (i.e. the validated order is `a` before `b`).
        edges: HashMap<&'static str, HashMap<&'static str, EdgeOrigin>>,
    }

    impl Graph {
        /// A path `from →* to` through recorded edges, if one exists.
        fn path(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
            let mut stack = vec![(from, vec![from])];
            let mut seen: HashSet<&'static str> = HashSet::new();
            while let Some((node, path)) = stack.pop() {
                if node == to {
                    return Some(path);
                }
                if !seen.insert(node) {
                    continue;
                }
                if let Some(next) = self.edges.get(node) {
                    for &n in next.keys() {
                        let mut p = path.clone();
                        p.push(n);
                        stack.push((n, p));
                    }
                }
            }
            None
        }
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    thread_local! {
        /// Lock classes held by this thread, outermost first.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn held_classes() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().clone())
    }

    pub(super) fn acquire(class: &'static str, shared: bool) {
        let held = held_classes();
        if !shared && held.contains(&class) {
            panic!(
                "lockcheck: recursive acquisition of lock class {class:?}\n\
                 held stack (outermost first): {held:?}\n\
                 acquisition backtrace:\n{}",
                Backtrace::capture()
            );
        }
        if held.iter().any(|&h| h != class) {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in &held {
                // Shared classes may legitimately nest with themselves;
                // a self-edge would be reported as a one-node cycle.
                if h == class {
                    continue;
                }
                // A known, already-validated edge needs no re-check.
                if g.edges.get(h).is_some_and(|m| m.contains_key(class)) {
                    continue;
                }
                // Adding h → class closes a cycle iff class →* h already.
                if let Some(path) = g.path(class, h) {
                    let origin = g
                        .edges
                        .get(path[0])
                        .and_then(|m| m.get(path[1]))
                        .expect("path edge must exist");
                    let msg = format!(
                        "lockcheck: lock-order cycle detected\n\
                         \n\
                         this thread acquires {class:?} while holding {held:?}\n\
                         acquisition backtrace:\n{bt_now}\n\
                         \n\
                         but the opposite order {path:?} was established earlier:\n\
                         {first:?} was held (stack {origin_held:?}) when {second:?} was acquired at:\n\
                         {bt_then}\n\
                         \n\
                         one of the two paths must reorder its locks",
                        bt_now = Backtrace::capture(),
                        path = path,
                        first = path[0],
                        second = path[1],
                        origin_held = origin.held,
                        bt_then = origin.backtrace,
                    );
                    drop(g);
                    panic!("{msg}");
                }
                g.edges.entry(h).or_default().insert(
                    class,
                    EdgeOrigin {
                        held: held.clone(),
                        backtrace: Backtrace::capture().to_string(),
                    },
                );
            }
        }
        HELD.with(|h| h.borrow_mut().push(class));
    }

    pub(super) fn released(class: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn dump_graph_json() -> String {
        let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        let mut edges: Vec<(&'static str, &'static str, &Vec<&'static str>)> = Vec::new();
        for (&from, tos) in &g.edges {
            for (&to, origin) in tos {
                edges.push((from, to, &origin.held));
            }
        }
        edges.sort();
        let mut out = String::from("{\"schema\": 1, \"enabled\": true, \"edges\": [");
        for (i, (from, to, held)) in edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Class names are plain &'static str literals; {:?} gives
            // JSON-compatible quoting for them.
            out.push_str(&format!(
                "\n  {{\"from\": {from:?}, \"to\": {to:?}, \"held\": ["
            ));
            for (j, h) in held.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{h:?}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n]}\n");
        out
    }
}
