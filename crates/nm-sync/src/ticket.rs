//! Fair FIFO ticket lock.
//!
//! Used by the `micro_overheads` ablation bench to compare the cost and
//! fairness of the paper's plain spinlock against a FIFO alternative. Under
//! the concurrent pingpong of Fig 5, fairness matters: an unfair spinlock
//! can let one pingpong thread starve the other, inflating tail latency.

use crate::sync_shim::atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::Backoff;

/// A fair (FIFO) spinlock: threads acquire in ticket order.
pub struct TicketLock<T: ?Sized> {
    next_ticket: AtomicUsize,
    now_serving: AtomicUsize,
    /// Lock-order class for `lockcheck` (None = untracked).
    class: Option<&'static str>,
    value: UnsafeCell<T>,
}

// SAFETY: mutual exclusion is provided by ticket ordering.
unsafe impl<T: ?Sized + Send> Send for TicketLock<T> {}
// SAFETY: as above — guarded access only, so &TicketLock is shareable.
unsafe impl<T: ?Sized + Send> Sync for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// Creates a new ticket lock protecting `value`.
    pub const fn new(value: T) -> Self {
        TicketLock {
            next_ticket: AtomicUsize::new(0),
            now_serving: AtomicUsize::new(0),
            class: None,
            value: UnsafeCell::new(value),
        }
    }

    /// Creates a new ticket lock tagged with a lock-order class for the
    /// `lockcheck` validator (see [`crate::lockcheck`]).
    pub const fn with_class(class: &'static str, value: T) -> Self {
        TicketLock {
            next_ticket: AtomicUsize::new(0),
            now_serving: AtomicUsize::new(0),
            class: Some(class),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> TicketLock<T> {
    /// Acquires the lock, spinning until this thread's ticket is served.
    pub fn lock(&self) -> TicketGuard<'_, T> {
        // relaxed: the ticket number is just a queue position; the
        // Acquire load of `now_serving` below synchronizes the data.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        if self.now_serving.load(Ordering::Acquire) != ticket {
            // Contended: an earlier ticket is still being served. Only
            // this path pays for a timestamp pair.
            let start = std::time::Instant::now();
            let mut backoff = Backoff::new();
            // `snooze` yields past the spin budget so earlier ticket holders
            // can run even on an oversubscribed machine.
            while self.now_serving.load(Ordering::Acquire) != ticket {
                backoff.snooze();
            }
            crate::stats::lock_wait_hist().record(start.elapsed().as_nanos() as u64);
        }
        if let Some(class) = self.class {
            crate::lockcheck::acquired(class);
        }
        TicketGuard { lock: self }
    }

    /// Attempts to take the lock only if nobody is queued.
    pub fn try_lock(&self) -> Option<TicketGuard<'_, T>> {
        // relaxed: speculative read of the serving counter.
        let serving = self.now_serving.load(Ordering::Relaxed);
        // relaxed: CAS failure publishes nothing (caller gets `None`);
        // its Acquire success ordering synchronizes.
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            if let Some(class) = self.class {
                crate::lockcheck::acquired(class);
            }
            Some(TicketGuard { lock: self })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TicketLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("TicketLock").field("value", &&*g).finish(),
            None => f.write_str("TicketLock { <locked> }"),
        }
    }
}

impl<T: Default> Default for TicketLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`TicketLock`]; serves the next ticket on drop.
pub struct TicketGuard<'a, T: ?Sized> {
    lock: &'a TicketLock<T>,
}

impl<T: ?Sized> Deref for TicketGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held by this thread.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for TicketGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for TicketGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(class) = self.lock.class {
            crate::lockcheck::released(class);
        }
        // Release hands the critical section to the next ticket holder.
        self.lock.now_serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let l = TicketLock::new(1);
        *l.lock() += 1;
        assert_eq!(*l.lock(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = TicketLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn counter_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 5_000;
        let l = Arc::new(TicketLock::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), (THREADS * ITERS) as u64);
    }

    #[test]
    fn acquisition_order_is_fifo() {
        // Thread A takes the lock, threads B then C queue up; when A
        // releases, B must win before C.
        let l = Arc::new(TicketLock::new(Vec::new()));
        let g = l.lock();
        let mut joins = Vec::new();
        for name in ["b", "c"] {
            let l = Arc::clone(&l);
            joins.push(thread::spawn(move || {
                l.lock().push(name);
            }));
            // Give each queued thread time to draw its ticket in order.
            thread::sleep(std::time::Duration::from_millis(50));
        }
        drop(g);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*l.lock(), vec!["b", "c"]);
    }
}
