//! Counting semaphore with strategy-driven acquisition.
//!
//! The paper's passive waiting (§3.3) blocks threads on semaphores whose
//! blocking path has been instrumented so the progression engine keeps
//! polling the network while the thread sleeps. This semaphore exposes the
//! hook the engine needs: [`Semaphore::acquire_with_poll`] takes a
//! [`WaitStrategy`] and a poll callback that runs during the spin phase.

use std::time::{Duration, Instant};

use crate::sync_shim::{Condvar, Mutex};

use crate::{Backoff, WaitStrategy};

/// A counting semaphore.
///
/// The permit count lives under a mutex and blocking uses a condition
/// variable — the blocking path is exactly where the ~750 ns context switch
/// of Fig 7 comes from. The spin phases of [`WaitStrategy::Busy`] and
/// [`WaitStrategy::FixedSpin`] avoid that path whenever the permit arrives
/// within the spin window.
pub struct Semaphore {
    permits: Mutex<isize>,
    cond: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: isize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cond: Condvar::new(),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> isize {
        *self.permits.lock()
    }

    /// Releases one permit, waking a blocked acquirer if any.
    pub fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        // Notify while holding the lock: a waiter between its predicate
        // check and `wait` cannot miss this wakeup.
        self.cond.notify_one();
    }

    /// Releases `n` permits at once.
    pub fn release_n(&self, n: usize) {
        let mut permits = self.permits.lock();
        *permits += n as isize;
        if n == 1 {
            self.cond.notify_one();
        } else {
            self.cond.notify_all();
        }
    }

    /// Attempts to take one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    /// Blocks until a permit is available (pure passive wait).
    pub fn acquire(&self) {
        self.acquire_with(WaitStrategy::Passive);
    }

    /// Acquires one permit using the given waiting strategy.
    pub fn acquire_with(&self, strategy: WaitStrategy) {
        self.acquire_with_poll(strategy, || {});
    }

    /// Acquires one permit, invoking `poll` on every spin iteration.
    ///
    /// `poll` is the integration point for the progression engine: a busy
    /// or fixed-spin waiter drives network progression itself while it
    /// spins; a passive waiter relies on someone else (the engine's
    /// progression thread or scheduler hooks) to poll and [`release`].
    ///
    /// [`release`]: Semaphore::release
    pub fn acquire_with_poll(&self, strategy: WaitStrategy, mut poll: impl FnMut()) {
        match strategy.spin_budget() {
            // Busy: spin forever, never block.
            None => {
                let mut backoff = Backoff::new();
                loop {
                    if self.try_acquire() {
                        return;
                    }
                    poll();
                    backoff.spin();
                }
            }
            // Fixed spin: poll until the window expires, then block.
            Some(budget) if !budget.is_zero() => {
                let deadline = Instant::now() + budget;
                loop {
                    if self.try_acquire() {
                        return;
                    }
                    poll();
                    std::hint::spin_loop();
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                self.acquire_blocking();
            }
            // Passive: block immediately.
            _ => self.acquire_blocking(),
        }
    }

    /// Acquires with a timeout; `true` on success.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut permits = self.permits.lock();
        while *permits <= 0 {
            if self.cond.wait_until(&mut permits, deadline).timed_out() {
                // Final re-check: the permit may have arrived exactly as we
                // timed out.
                if *permits > 0 {
                    break;
                }
                return false;
            }
        }
        *permits -= 1;
        true
    }

    fn acquire_blocking(&self) {
        let mut permits = self.permits.lock();
        if *permits <= 0 {
            // The ThreadBlock→ThreadWake span around an actual condvar
            // sleep is the paper's ~750 ns blocking context switch.
            nm_trace::trace_event!(ThreadBlock);
            while *permits <= 0 {
                self.cond.wait(&mut permits);
            }
            nm_trace::trace_event!(ThreadWake);
        }
        *permits -= 1;
    }
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("available", &self.available())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_acquire_respects_count() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn release_wakes_passive_acquirer() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || {
            s2.acquire_with(WaitStrategy::Passive);
            7
        });
        thread::sleep(Duration::from_millis(50));
        s.release();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn one_release_unblocks_exactly_one_of_two_waiters() {
        // Regression guard for the classic "global predicate" bug: with two
        // queued waiters, one release must let exactly one through.
        let s = Arc::new(Semaphore::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    s.acquire();
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        s.release();
        thread::sleep(Duration::from_millis(100));
        assert_eq!(done.load(Ordering::SeqCst), 1);
        s.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn fixed_spin_acquires_without_blocking_when_fast() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || {
            // Released almost immediately; a 50 ms window means the waiter
            // stays in its spin phase.
            s2.acquire_with(WaitStrategy::FixedSpin(Duration::from_millis(50)));
        });
        thread::sleep(Duration::from_millis(2));
        s.release();
        h.join().unwrap();
    }

    #[test]
    fn fixed_spin_falls_back_to_blocking() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || {
            s2.acquire_with(WaitStrategy::FixedSpin(Duration::from_micros(50)));
        });
        // Release long after the spin window expired.
        thread::sleep(Duration::from_millis(100));
        s.release();
        h.join().unwrap();
    }

    #[test]
    fn busy_acquire_invokes_poll_callback() {
        let s = Arc::new(Semaphore::new(0));
        let polls = Arc::new(AtomicUsize::new(0));
        let (s2, p2) = (Arc::clone(&s), Arc::clone(&polls));
        let h = thread::spawn(move || {
            s2.acquire_with_poll(WaitStrategy::Busy, || {
                p2.fetch_add(1, Ordering::Relaxed);
            });
        });
        thread::sleep(Duration::from_millis(20));
        s.release();
        h.join().unwrap();
        assert!(polls.load(Ordering::Relaxed) > 0, "poll callback never ran");
    }

    #[test]
    fn acquire_timeout_expires() {
        let s = Semaphore::new(0);
        let t0 = Instant::now();
        assert!(!s.acquire_timeout(Duration::from_millis(30)));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        // The failed wait must not corrupt the permit count.
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn acquire_timeout_succeeds_when_released() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.acquire_timeout(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        s.release();
        assert!(h.join().unwrap());
    }

    #[test]
    fn release_n_wakes_multiple_waiters() {
        let s = Arc::new(Semaphore::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || s.acquire())
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        s.release_n(3);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn many_producers_many_consumers() {
        const N: usize = 2000;
        let s = Arc::new(Semaphore::new(0));
        let consumed = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || {
                    for _ in 0..N / 4 {
                        s.acquire();
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    for _ in 0..N / 4 {
                        s.release();
                    }
                })
            })
            .collect();
        for h in producers.into_iter().chain(consumers) {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), N);
        assert_eq!(s.available(), 0);
    }
}
