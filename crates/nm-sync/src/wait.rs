//! Waiting strategies (§3.3 of the paper).

use std::time::Duration;

/// How a thread waits for a communication event to complete.
///
/// The paper contrasts three behaviours for `MPI_Wait`-like functions:
///
/// * **Busy waiting** — poll in a tight loop until the network request
///   succeeds. Fastest in a single-threaded run, but wastes a CPU and
///   degrades when several threads poll concurrently.
/// * **Passive waiting** — block on a semaphore and let the progression
///   engine signal completion. Frees the core for application threads, but
///   each wakeup pays a context switch (measured at ~750 ns in the paper,
///   Fig 7).
/// * **Fixed spin** — the competitive-spinning compromise of Karlin et al.:
///   poll for a bounded duration (the paper suggests 5 µs), then block. The
///   context switch is avoided whenever the event lands within the spin
///   window, and amortized when it does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitStrategy {
    /// Poll until completion, never block.
    Busy,
    /// Block immediately on the completion primitive.
    Passive,
    /// Poll for the given duration, then block.
    FixedSpin(Duration),
}

impl WaitStrategy {
    /// The fixed-spin window suggested by the paper (§3.3): 5 µs.
    pub const DEFAULT_SPIN: Duration = Duration::from_micros(5);

    /// Fixed-spin with the paper's default 5 µs window.
    pub const fn fixed_spin_default() -> Self {
        WaitStrategy::FixedSpin(Self::DEFAULT_SPIN)
    }

    /// Duration this strategy is willing to poll before blocking:
    /// `None` means "forever" (busy waiting).
    pub fn spin_budget(&self) -> Option<Duration> {
        match self {
            WaitStrategy::Busy => None,
            WaitStrategy::Passive => Some(Duration::ZERO),
            WaitStrategy::FixedSpin(d) => Some(*d),
        }
    }

    /// `true` if this strategy may end up blocking on a primitive.
    pub fn may_block(&self) -> bool {
        !matches!(self, WaitStrategy::Busy)
    }
}

impl Default for WaitStrategy {
    /// The default mirrors the paper's recommendation: fixed spin.
    fn default() -> Self {
        Self::fixed_spin_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_budgets() {
        assert_eq!(WaitStrategy::Busy.spin_budget(), None);
        assert_eq!(WaitStrategy::Passive.spin_budget(), Some(Duration::ZERO));
        assert_eq!(
            WaitStrategy::FixedSpin(Duration::from_micros(7)).spin_budget(),
            Some(Duration::from_micros(7))
        );
    }

    #[test]
    fn blocking_classification() {
        assert!(!WaitStrategy::Busy.may_block());
        assert!(WaitStrategy::Passive.may_block());
        assert!(WaitStrategy::fixed_spin_default().may_block());
    }

    #[test]
    fn default_is_paper_recommendation() {
        assert_eq!(
            WaitStrategy::default(),
            WaitStrategy::FixedSpin(Duration::from_micros(5))
        );
    }
}
