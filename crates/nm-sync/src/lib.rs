//! Synchronization primitives for the nomad communication stack.
//!
//! This crate provides the low-level building blocks that the paper's
//! thread-safety study is about:
//!
//! * [`SpinLock`] / [`RawSpin`] — test-and-test-and-set spinlocks with
//!   exponential backoff. The paper (§3.1) uses spinlocks for the very short
//!   critical sections of the communication library ("for such very short
//!   critical sections, spinlocks are more efficient than plain mutex").
//! * [`TicketLock`] — a fair FIFO spinlock, used for ablation benches.
//! * [`Semaphore`] — a counting semaphore built on a mutex + condition
//!   variable, the blocking primitive behind *passive waiting* (§3.3).
//! * [`WaitStrategy`] — busy waiting, passive waiting, and the *fixed spin*
//!   hybrid of Karlin et al. that spins for a bounded duration before
//!   blocking (§3.3).
//! * [`CompletionFlag`] — a one-shot event with strategy-driven waiting;
//!   every communication request in `nm-core` completes through one of
//!   these.
//! * [`Backoff`] — bounded exponential backoff for contended spin loops.
//! * [`stats`] — lightweight instrumentation (acquisition/contention
//!   counters) used by the calibration benches to reproduce the paper's
//!   in-text constants (70 ns per lock cycle, etc.).
//!
//! Memory-ordering discipline follows *Rust Atomics and Locks* (Bos):
//! acquire on lock, release on unlock, and mutex-protected condition
//! variables for blocking paths. The full discipline — lock hierarchy,
//! ordering rules, and how to model-check changes — is documented in
//! `docs/CONCURRENCY.md` at the repository root.
//!
//! # Model checking
//!
//! Every primitive sources its atomics and blocking types from
//! [`sync_shim`], which compiles to plain `std`/`parking_lot` re-exports
//! normally and to the vendored `nm-loom` model checker under
//! `RUSTFLAGS="--cfg loom"`. `cargo test -p nm-sync --test loom` with
//! that cfg explores randomized thread interleavings and verifies the
//! declared memory orderings symbolically.

#![warn(missing_docs)]

mod backoff;
mod flag;
pub mod lockcheck;
mod sem;
mod spin;
pub mod stats;
pub mod sync_shim;
mod ticket;
mod wait;
mod waker;

pub use backoff::Backoff;
pub use flag::CompletionFlag;
pub use sem::Semaphore;
pub use spin::{RawSpin, SpinGuard, SpinLock};
pub use ticket::{TicketGuard, TicketLock};
pub use wait::WaitStrategy;
pub use waker::WakerCell;

pub use crossbeam_utils::CachePadded;
