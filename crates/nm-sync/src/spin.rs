//! Test-and-test-and-set spinlocks.
//!
//! The paper keeps the critical sections of the communication library to "a
//! few microseconds at most" and therefore protects them with spinlocks
//! rather than blocking mutexes (§3.1): if the lock is taken, the acquiring
//! thread waits actively, avoiding a context switch that would cost more
//! than the whole critical section.

use crate::sync_shim::atomic::{AtomicBool, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::stats::LockStats;
use crate::Backoff;

/// A raw spinlock: just the lock word, no protected data.
///
/// `nm-core` uses raw spinlocks to guard data structures whose ownership
/// pattern does not fit the `Mutex<T>` model (e.g. the per-list locks of the
/// fine-grain mode, where the lists live in a layer-owned arena and the lock
/// taken depends on the configured [locking mode]).
///
/// [locking mode]: ../nm_core/enum.LockingMode.html
pub struct RawSpin {
    locked: AtomicBool,
    stats: LockStats,
    /// Lock-order class for `lockcheck` (None = untracked).
    class: Option<&'static str>,
    /// `true` for multi-instance classes: many distinct locks share the
    /// class name, so same-class nesting is legitimate (see
    /// [`crate::lockcheck::acquired_shared`]).
    shared_class: bool,
}

impl RawSpin {
    /// Creates an unlocked raw spinlock.
    pub const fn new() -> Self {
        RawSpin {
            locked: AtomicBool::new(false),
            stats: LockStats::new(),
            class: None,
            shared_class: false,
        }
    }

    /// Creates an unlocked raw spinlock tagged with a lock-order class.
    ///
    /// With the `lockcheck` feature enabled, every acquisition is recorded
    /// in the global lock-order graph under this class and validated
    /// against inversions (see [`crate::lockcheck`]). Without the feature
    /// the class is inert.
    pub const fn with_class(class: &'static str) -> Self {
        RawSpin {
            locked: AtomicBool::new(false),
            stats: LockStats::new(),
            class: Some(class),
            shared_class: false,
        }
    }

    /// Like [`RawSpin::with_class`], but the class is *shared* by many
    /// distinct lock instances (e.g. the `core.*.overflow` pools for gate
    /// indices beyond the static class tables): holding two locks of the
    /// class at once is allowed, while ordering against other classes is
    /// still validated.
    pub const fn with_shared_class(class: &'static str) -> Self {
        RawSpin {
            locked: AtomicBool::new(false),
            stats: LockStats::new(),
            class: Some(class),
            shared_class: true,
        }
    }

    /// The lock-order class, if one was assigned.
    pub fn class(&self) -> Option<&'static str> {
        self.class
    }

    /// Stable id for trace events: the lock word's address.
    #[inline]
    fn lock_id(&self) -> usize {
        &self.locked as *const _ as usize
    }

    /// Acquires the lock, spinning with exponential backoff while contended.
    #[inline]
    pub fn lock(&self) {
        // Fast path: a single CAS, matching the cost model of the paper's
        // "each acquire/release cycle costs 70 ns".
        // relaxed: CAS failure publishes nothing; we retry or spin.
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.stats.record_acquire(false);
            self.note_acquired();
            nm_trace::trace_event!(LockAcquire, self.lock_id(), 0u64);
            return;
        }
        self.lock_contended();
    }

    /// Reports the acquisition to the lock-order validator (no-op unless
    /// the `lockcheck` feature is on and this lock has a class).
    #[inline]
    fn note_acquired(&self) {
        if let Some(class) = self.class {
            if self.shared_class {
                crate::lockcheck::acquired_shared(class);
            } else {
                crate::lockcheck::acquired(class);
            }
        }
    }

    #[inline]
    fn note_released(&self) {
        if let Some(class) = self.class {
            crate::lockcheck::released(class);
        }
    }

    #[cold]
    fn lock_contended(&self) {
        // Timestamping only happens here, on the contended slow path; the
        // fast path above stays a bare CAS plus counter bump.
        let start = std::time::Instant::now();
        let mut backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: spin on a plain load so that waiting
            // cores only hit their local cache line until it is invalidated.
            // `snooze` keeps this an active wait but yields to the OS once
            // the spin budget is exhausted, so a preempted lock holder can
            // run (essential on machines with fewer cores than threads).
            // relaxed: speculative peek; the CAS below is the Acquire.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            // relaxed: CAS failure publishes nothing; we go back to spinning.
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                crate::stats::lock_wait_hist().record(start.elapsed().as_nanos() as u64);
                self.stats.record_acquire(true);
                self.note_acquired();
                nm_trace::trace_event!(LockAcquire, self.lock_id(), 1u64);
                return;
            }
        }
    }

    /// Attempts to acquire the lock without spinning.
    #[inline]
    pub fn try_lock(&self) -> bool {
        // relaxed: CAS failure publishes nothing; caller just gets `false`.
        let ok = self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            self.stats.record_acquire(false);
            self.note_acquired();
            nm_trace::trace_event!(LockAcquire, self.lock_id(), 0u64);
        }
        ok
    }

    /// Releases the lock.
    ///
    /// Callers must hold the lock; releasing an unheld `RawSpin` is a logic
    /// error (it is detected and panics in debug builds).
    #[inline]
    pub fn unlock(&self) {
        debug_assert!(
            // relaxed: diagnostic only; the caller already holds the lock.
            self.locked.load(Ordering::Relaxed),
            "RawSpin::unlock called on an unlocked lock"
        );
        self.note_released();
        nm_trace::trace_event!(LockRelease, self.lock_id());
        self.locked.store(false, Ordering::Release);
    }

    /// `true` if the lock is currently held by some thread.
    #[inline]
    pub fn is_locked(&self) -> bool {
        // relaxed: advisory snapshot; callers must not infer ownership.
        self.locked.load(Ordering::Relaxed)
    }

    /// Acquisition/contention counters for this lock.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Runs `f` with the lock held.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        // Any panic in `f` leaves the lock held; since RawSpin guards
        // library-internal invariants that are broken mid-panic anyway,
        // we deliberately do not implement unlock-on-unwind here. The
        // typed `SpinLock` below does, via its RAII guard.
        let r = f();
        self.unlock();
        r
    }
}

impl Default for RawSpin {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RawSpin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawSpin")
            .field("locked", &self.is_locked())
            .finish()
    }
}

/// A test-and-test-and-set spinlock protecting a value of type `T`.
///
/// Equivalent in role to the "library-wide lock" of the paper's coarse-grain
/// mode (Fig 2): very cheap to take when uncontended, fully serializing when
/// several threads communicate.
pub struct SpinLock<T: ?Sized> {
    raw: RawSpin,
    value: UnsafeCell<T>,
}

// SAFETY: SpinLock provides mutual exclusion; T must be Send for the lock
// to be shared (same bounds as std::sync::Mutex).
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
// SAFETY: as above — guarded access only, so &SpinLock is shareable.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates a new spinlock protecting `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            raw: RawSpin::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// Creates a new spinlock tagged with a lock-order class for the
    /// `lockcheck` validator (see [`RawSpin::with_class`]).
    pub const fn with_class(class: &'static str, value: T) -> Self {
        SpinLock {
            raw: RawSpin::with_class(class),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, returning an RAII guard.
    #[inline]
    pub fn lock(&self) -> SpinGuard<'_, T> {
        self.raw.lock();
        SpinGuard { lock: self }
    }

    /// Attempts to acquire the lock without spinning.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// `true` if the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.raw.is_locked()
    }

    /// Acquisition/contention counters for this lock.
    pub fn stats(&self) -> &LockStats {
        self.raw.stats()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("value", &&*g).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`SpinLock`]; releases the lock on drop.
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held by this thread.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.raw.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let l = SpinLock::new(41);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn counter_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 10_000;
        let l = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..ITERS {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), (THREADS * ITERS) as u64);
    }

    #[test]
    fn raw_spin_with_runs_closure_exclusively() {
        let raw = Arc::new(RawSpin::new());
        let shared = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let raw = Arc::clone(&raw);
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        raw.with(|| {
                            // Non-atomic-looking read-modify-write made of two
                            // atomic ops; only mutual exclusion keeps it exact.
                            let v = shared.load(Ordering::Relaxed);
                            shared.store(v + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn stats_count_acquisitions() {
        let l = SpinLock::new(());
        for _ in 0..5 {
            drop(l.lock());
        }
        assert_eq!(l.stats().acquisitions(), 5);
    }

    #[test]
    fn guard_releases_on_panic() {
        let l = Arc::new(SpinLock::new(0));
        let l2 = Arc::clone(&l);
        let res = thread::spawn(move || {
            let _g = l2.lock();
            panic!("poisoned on purpose");
        })
        .join();
        assert!(res.is_err());
        // The guard's Drop ran during unwinding, so the lock is free again.
        assert!(!l.is_locked());
        assert_eq!(*l.lock(), 0);
    }

    #[test]
    fn into_inner_returns_value() {
        let l = SpinLock::new(String::from("payload"));
        assert_eq!(l.into_inner(), "payload");
    }
}
