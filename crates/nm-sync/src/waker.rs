//! [`WakerCell`] — a waker-capable completion primitive for async waits.
//!
//! A [`CompletionFlag`](crate::CompletionFlag) parks a *thread*; a
//! `WakerCell` notifies a *future*. It is the one-shot slot behind the
//! progress engine's waker table: a future's `poll` registers its
//! [`std::task::Waker`] here, and completion delivery wakes it — at most
//! once, with no thread ever blocked.
//!
//! The fundamental race is a completion arriving between the future's
//! completion check and its waker store. The cell resolves it with a
//! state machine checked under the slot mutex:
//!
//! * [`WakerCell::register`] returns `false` when [`WakerCell::wake`]
//!   already ran — the caller must treat the operation as complete
//!   instead of going to sleep.
//! * A successful `register` (`true`) guarantees the waker will be
//!   woken by the next `wake`, whenever it lands.
//!
//! Callers should still re-check their completion condition *after* a
//! successful registration (the register-then-recheck protocol): the
//! cell orders `register` against `wake`, but not against completion
//! state published through other objects.
//!
//! Like every nm-sync primitive, the cell sources its atomics and mutex
//! from [`sync_shim`](crate::sync_shim), so the loom suite can model the
//! registration/wake race exhaustively.

use std::task::Waker;

use crate::sync_shim::atomic::{AtomicU32, Ordering};
use crate::sync_shim::Mutex;

/// No waker stored, not yet woken.
const EMPTY: u32 = 0;
/// A waker is stored.
const ARMED: u32 = 1;
/// `wake` ran; any stored waker has been consumed and late registrations
/// are rejected.
const WOKEN: u32 = 2;

/// One-shot waker slot: `register` a future's waker, `wake` it on
/// completion. See the module docs for the race protocol.
#[derive(Debug)]
pub struct WakerCell {
    state: AtomicU32,
    slot: Mutex<Option<Waker>>,
}

impl WakerCell {
    /// Creates an empty, un-woken cell.
    pub fn new() -> Self {
        WakerCell {
            state: AtomicU32::new(EMPTY),
            slot: Mutex::new(None),
        }
    }

    /// Stores `waker`, replacing any previous registration.
    ///
    /// Returns `false` if [`WakerCell::wake`] already ran: the waker is
    /// *not* stored and will never be woken — the caller must complete
    /// immediately rather than wait.
    pub fn register(&self, waker: &Waker) -> bool {
        let mut slot = self.slot.lock();
        // The load is under the mutex: if `wake` won the race, its WOKEN
        // store happened before it released this mutex, so we see it here
        // and refuse; if we win, `wake` finds our waker in the slot.
        if self.state.load(Ordering::Acquire) == WOKEN {
            return false;
        }
        *slot = Some(waker.clone());
        self.state.store(ARMED, Ordering::Release);
        true
    }

    /// Marks the cell woken and wakes the registered waker, if any.
    ///
    /// Idempotent; the waker is consumed, so at most one wake-up is ever
    /// delivered. The foreign waker runs outside the slot mutex.
    pub fn wake(&self) {
        self.state.store(WOKEN, Ordering::Release);
        let waker = self.slot.lock().take();
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// `true` once [`WakerCell::wake`] has run.
    pub fn is_woken(&self) -> bool {
        self.state.load(Ordering::Acquire) == WOKEN
    }
}

impl Default for WakerCell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc;
    use std::task::Wake;

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, StdOrdering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWaker>, Waker) {
        let inner = Arc::new(CountingWaker(AtomicUsize::new(0)));
        (Arc::clone(&inner), Waker::from(Arc::clone(&inner)))
    }

    #[test]
    fn register_then_wake_delivers_exactly_once() {
        let cell = WakerCell::new();
        let (count, waker) = counting_waker();
        assert!(cell.register(&waker));
        assert!(!cell.is_woken());
        cell.wake();
        assert_eq!(count.0.load(StdOrdering::SeqCst), 1);
        assert!(cell.is_woken());
        cell.wake(); // idempotent: the waker was consumed
        assert_eq!(count.0.load(StdOrdering::SeqCst), 1);
    }

    #[test]
    fn wake_before_register_is_rejected() {
        let cell = WakerCell::new();
        cell.wake();
        let (count, waker) = counting_waker();
        assert!(!cell.register(&waker), "late registration must be refused");
        cell.wake();
        assert_eq!(count.0.load(StdOrdering::SeqCst), 0, "never stored");
    }

    #[test]
    fn reregistration_replaces_the_stored_waker() {
        let cell = WakerCell::new();
        let (stale_count, stale) = counting_waker();
        let (live_count, live) = counting_waker();
        assert!(cell.register(&stale));
        assert!(cell.register(&live));
        cell.wake();
        assert_eq!(stale_count.0.load(StdOrdering::SeqCst), 0);
        assert_eq!(live_count.0.load(StdOrdering::SeqCst), 1);
    }

    #[test]
    fn cross_thread_register_wake_race_never_loses_a_wake() {
        for _ in 0..200 {
            let cell = Arc::new(WakerCell::new());
            let (count, waker) = counting_waker();
            let c = Arc::clone(&cell);
            let h = std::thread::spawn(move || c.wake());
            let registered = cell.register(&waker);
            h.join().unwrap();
            // Either the registration was refused (wake won) or the
            // stored waker was woken — never silence.
            assert!(!registered || count.0.load(StdOrdering::SeqCst) == 1);
        }
    }
}
