//! cfg(loom)-switchable synchronization imports.
//!
//! Every primitive in this crate pulls its atomics, `Mutex`/`Condvar` and
//! threads from this module instead of naming `std`/`parking_lot`
//! directly. A normal build re-exports the real types with zero overhead;
//! compiling with `RUSTFLAGS="--cfg loom"` swaps in the model-checked
//! versions from the vendored `nm-loom` crate, so the loom test suite
//! (`cargo test -p nm-sync --test loom` under that cfg) can explore
//! thread interleavings and validate the declared memory orderings.
//!
//! Keep additions here mirrored between the two halves — the whole point
//! is that the primitive sources compile unchanged under both.

/// Atomic types and memory orderings.
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(not(loom))]
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Closure-scoped interior-mutability cell (loom API shape). The loom
/// build race-checks every access; the std build is a plain wrapper.
pub mod cell {
    #[cfg(loom)]
    pub use loom::cell::UnsafeCell;

    /// Pass-through `UnsafeCell` with the loom `with`/`with_mut` API.
    #[cfg(not(loom))]
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(loom))]
    impl<T> UnsafeCell<T> {
        /// Creates a new cell holding `value`.
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Immutable access to the contents via raw pointer.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access to the contents via raw pointer.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Consumes the cell, returning the value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    // SAFETY: same contract as `std::cell::UnsafeCell` being `Send`.
    #[cfg(not(loom))]
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
    // SAFETY: callers assert their own synchronization protocol, as with
    // a raw cell inside a lock; the loom build checks it dynamically.
    #[cfg(not(loom))]
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}
}

/// Thread spawn/join/yield, model-scheduled under loom.
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};

    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Spin-loop hint; a schedule point under loom.
pub mod hint {
    #[cfg(loom)]
    pub use loom::hint::spin_loop;

    #[cfg(not(loom))]
    pub use std::hint::spin_loop;
}
