//! Bounded exponential backoff for contended spin loops.

use std::hint;

/// Exponential backoff helper for spin loops.
///
/// Starts with a handful of [`hint::spin_loop`] iterations and doubles the
/// spin count on every step until [`Backoff::SPIN_LIMIT`]; past that point
/// [`Backoff::snooze`] yields the thread to the OS scheduler so that a
/// preempted lock holder can run.
///
/// This mirrors the behaviour of `crossbeam_utils::Backoff` but exposes the
/// completion state explicitly so callers (e.g. fixed-spin waiting) can
/// decide when to transition from spinning to blocking.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps after which spinning stops growing (2^6 = 64 spin hints).
    pub const SPIN_LIMIT: u32 = 6;
    /// Steps after which [`Backoff::snooze`] starts yielding to the OS.
    pub const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh backoff state.
    #[inline]
    pub const fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the initial (shortest) backoff step.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins for the current step without ever yielding.
    ///
    /// Appropriate while waiting for another core to finish a very short
    /// critical section.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(Self::SPIN_LIMIT) {
            hint::spin_loop();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Spins for the current step, yielding to the OS once the spin budget
    /// is exhausted.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// `true` once the spin budget is exhausted and the caller should
    /// consider blocking instead of spinning.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > Self::YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_backoff_is_not_completed() {
        let b = Backoff::new();
        assert!(!b.is_completed());
    }

    #[test]
    fn backoff_completes_after_yield_limit() {
        let mut b = Backoff::new();
        for _ in 0..=Backoff::YIELD_LIMIT {
            assert!(!b.is_completed());
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn spin_never_completes() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        // `spin` saturates at SPIN_LIMIT + 1 and never reaches the yield
        // threshold, so a pure spin loop runs forever by design.
        assert!(!b.is_completed());
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
