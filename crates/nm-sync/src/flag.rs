//! One-shot completion flags.
//!
//! Every communication request in `nm-core` (send, receive, rendezvous
//! handshake) completes through a [`CompletionFlag`]. The flag is where the
//! waiting-strategy study of §3.3 becomes concrete: `wait` takes a
//! [`WaitStrategy`] and an optional poll callback so that a busy waiter can
//! drive network progression itself, while a passive waiter blocks and lets
//! the progression engine signal it.

use crate::sync_shim::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use crate::sync_shim::{Condvar, Mutex};

use crate::{Backoff, WaitStrategy};

const PENDING: u32 = 0;
const SET: u32 = 1;

/// A one-shot event flag with strategy-driven waiting.
///
/// Can be [`reset`](CompletionFlag::reset) for reuse so a pingpong loop
/// does not allocate a fresh flag per iteration.
pub struct CompletionFlag {
    state: AtomicU32,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CompletionFlag {
    /// Creates a flag in the pending state.
    pub fn new() -> Self {
        CompletionFlag {
            state: AtomicU32::new(PENDING),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// `true` once [`signal`](CompletionFlag::signal) has been called.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.state.load(Ordering::Acquire) == SET
    }

    /// Sets the flag and wakes all waiters.
    ///
    /// Establishes a happens-before edge: everything written before
    /// `signal` is visible to a thread that observed `is_set()`.
    pub fn signal(&self) {
        self.state.store(SET, Ordering::Release);
        nm_trace::trace_event!(FlagSignal);
        // Taking the lock orders this notify after any concurrent waiter's
        // predicate check, so the wakeup cannot be lost.
        let _g = self.lock.lock();
        self.cond.notify_all();
    }

    /// Returns the flag to the pending state.
    ///
    /// Only sound once all waiters of the previous completion have
    /// returned; `nm-core` reuses flags strictly iteration-by-iteration.
    pub fn reset(&self) {
        self.state.store(PENDING, Ordering::Release);
    }

    /// Waits for the flag with the given strategy.
    pub fn wait(&self, strategy: WaitStrategy) {
        self.wait_with_poll(strategy, || {});
    }

    /// Waits for the flag, calling `poll` on every spin iteration.
    ///
    /// With [`WaitStrategy::Busy`] this is the paper's classic busy wait:
    /// the calling thread polls the network (via `poll`) until the request
    /// completes. With [`WaitStrategy::FixedSpin`] the thread polls for the
    /// window and then blocks; with [`WaitStrategy::Passive`] it blocks
    /// immediately and `poll` is never called.
    pub fn wait_with_poll(&self, strategy: WaitStrategy, mut poll: impl FnMut()) {
        if self.is_set() {
            return;
        }
        match strategy.spin_budget() {
            None => {
                let mut backoff = Backoff::new();
                loop {
                    poll();
                    if self.is_set() {
                        nm_trace::trace_event!(WaitSpun, 0u64);
                        return;
                    }
                    backoff.spin();
                }
            }
            Some(budget) if !budget.is_zero() => {
                let deadline = Instant::now() + budget;
                loop {
                    poll();
                    if self.is_set() {
                        nm_trace::trace_event!(WaitSpun, 1u64);
                        return;
                    }
                    std::hint::spin_loop();
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                nm_trace::trace_event!(WaitBlocked, 1u64);
                self.block();
            }
            _ => {
                nm_trace::trace_event!(WaitBlocked, 2u64);
                self.block();
            }
        }
    }

    /// Waits with a deadline; `true` if the flag was set in time.
    ///
    /// Spin-phase polling still runs for busy/fixed-spin strategies.
    pub fn wait_timeout(&self, strategy: WaitStrategy, timeout: Duration) -> bool {
        if self.is_set() {
            return true;
        }
        let deadline = Instant::now() + timeout;
        match strategy.spin_budget() {
            None => {
                let mut backoff = Backoff::new();
                while !self.is_set() {
                    if Instant::now() >= deadline {
                        return self.is_set();
                    }
                    backoff.spin();
                }
                true
            }
            Some(budget) => {
                let spin_deadline = Instant::now() + budget;
                while Instant::now() < spin_deadline {
                    if self.is_set() {
                        return true;
                    }
                    std::hint::spin_loop();
                }
                self.block_until(deadline)
            }
        }
    }

    fn block(&self) {
        let mut guard = self.lock.lock();
        if self.is_set() {
            return;
        }
        nm_trace::trace_event!(ThreadBlock);
        while !self.is_set() {
            self.cond.wait(&mut guard);
        }
        nm_trace::trace_event!(ThreadWake);
    }

    fn block_until(&self, deadline: Instant) -> bool {
        let mut guard = self.lock.lock();
        if self.is_set() {
            return true;
        }
        nm_trace::trace_event!(ThreadBlock);
        while !self.is_set() {
            if self.cond.wait_until(&mut guard, deadline).timed_out() {
                return self.is_set();
            }
        }
        nm_trace::trace_event!(ThreadWake);
        true
    }
}

impl Default for CompletionFlag {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CompletionFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionFlag")
            .field("set", &self.is_set())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn signal_then_wait_returns_immediately() {
        let f = CompletionFlag::new();
        f.signal();
        f.wait(WaitStrategy::Passive);
        f.wait(WaitStrategy::Busy);
        assert!(f.is_set());
    }

    #[test]
    fn passive_wait_blocks_until_signal() {
        let f = Arc::new(CompletionFlag::new());
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || {
            f2.wait(WaitStrategy::Passive);
            99
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!f.is_set());
        f.signal();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn busy_wait_polls() {
        let f = Arc::new(CompletionFlag::new());
        let polls = Arc::new(AtomicUsize::new(0));
        let (f2, p2) = (Arc::clone(&f), Arc::clone(&polls));
        let h = thread::spawn(move || {
            f2.wait_with_poll(WaitStrategy::Busy, || {
                p2.fetch_add(1, Ordering::Relaxed);
            });
        });
        thread::sleep(Duration::from_millis(20));
        f.signal();
        h.join().unwrap();
        assert!(polls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn poll_callback_may_itself_signal() {
        // Models busy waiting in nm-core: the waiter's own polling completes
        // the request it is waiting on.
        let f = Arc::new(CompletionFlag::new());
        let f2 = Arc::clone(&f);
        let mut count = 0;
        f.wait_with_poll(WaitStrategy::Busy, move || {
            count += 1;
            if count == 10 {
                f2.signal();
            }
        });
        assert!(f.is_set());
    }

    #[test]
    fn fixed_spin_blocks_after_window() {
        let f = Arc::new(CompletionFlag::new());
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || {
            f2.wait(WaitStrategy::FixedSpin(Duration::from_micros(100)));
        });
        thread::sleep(Duration::from_millis(80));
        f.signal();
        h.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires() {
        let f = CompletionFlag::new();
        assert!(!f.wait_timeout(WaitStrategy::Passive, Duration::from_millis(20)));
        assert!(!f.wait_timeout(
            WaitStrategy::FixedSpin(Duration::from_micros(10)),
            Duration::from_millis(20)
        ));
        f.signal();
        assert!(f.wait_timeout(WaitStrategy::Passive, Duration::from_millis(1)));
    }

    #[test]
    fn busy_wait_timeout_expires() {
        let f = CompletionFlag::new();
        let t0 = Instant::now();
        assert!(!f.wait_timeout(WaitStrategy::Busy, Duration::from_millis(10)));
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn reset_allows_reuse() {
        let f = Arc::new(CompletionFlag::new());
        for _ in 0..3 {
            let f2 = Arc::clone(&f);
            let h = thread::spawn(move || f2.wait(WaitStrategy::Passive));
            thread::sleep(Duration::from_millis(10));
            f.signal();
            h.join().unwrap();
            f.reset();
            assert!(!f.is_set());
        }
    }

    #[test]
    fn many_waiters_all_wake() {
        let f = Arc::new(CompletionFlag::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let f = Arc::clone(&f);
                thread::spawn(move || {
                    let strat = if i % 2 == 0 {
                        WaitStrategy::Passive
                    } else {
                        WaitStrategy::fixed_spin_default()
                    };
                    f.wait(strat);
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        f.signal();
        for h in handles {
            h.join().unwrap();
        }
    }
}
