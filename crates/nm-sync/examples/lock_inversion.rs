//! Demonstrates the `lockcheck` lock-order validator.
//!
//! Run with the validator on to see the AB/BA inversion panic, with both
//! acquisition stacks in the report:
//!
//! ```text
//! cargo run -p nm-sync --features lockcheck --example lock_inversion
//! ```
//!
//! Without `--features lockcheck` the classed locks cost nothing and the
//! inversion goes unreported (until it deadlocks for real under
//! contention — which is the point of turning the feature on in tests).

use nm_sync::SpinLock;

fn main() {
    let a = SpinLock::with_class("example.a", 0u32);
    let b = SpinLock::with_class("example.b", 0u32);

    // Establish the order a -> b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
        println!("took a then b: ok");
    }

    // Now take them in the opposite order. With lockcheck enabled this
    // panics immediately — no second thread or actual deadlock needed.
    {
        let _gb = b.lock();
        let _ga = a.lock();
        println!("took b then a: lockcheck is OFF (no inversion report)");
    }
}
