//! Tests for the runtime lock-order validator.
//!
//! Run with:
//!
//! ```sh
//! cargo test -p nm-sync --features lockcheck --test lockcheck
//! ```
//!
//! The ordering graph is process-global, so every test uses its own lock
//! classes to stay independent of test-thread scheduling.

#![cfg(feature = "lockcheck")]

use nm_sync::{lockcheck, RawSpin, SpinLock, TicketLock};

#[test]
fn consistent_nesting_is_accepted() {
    let outer = SpinLock::with_class("t1.outer", ());
    let inner = SpinLock::with_class("t1.inner", ());
    for _ in 0..3 {
        let a = outer.lock();
        let b = inner.lock();
        drop(b);
        drop(a);
    }
    // Same order from another thread: still fine.
    std::thread::scope(|s| {
        s.spawn(|| {
            let a = outer.lock();
            let b = inner.lock();
            drop(b);
            drop(a);
        });
    });
}

#[test]
fn held_classes_tracks_the_stack() {
    let a = SpinLock::with_class("t2.a", ());
    let b = SpinLock::with_class("t2.b", ());
    assert!(lockcheck::enabled());
    assert_eq!(lockcheck::held_classes(), Vec::<&str>::new());
    let ga = a.lock();
    let gb = b.lock();
    assert_eq!(lockcheck::held_classes(), vec!["t2.a", "t2.b"]);
    drop(gb);
    assert_eq!(lockcheck::held_classes(), vec!["t2.a"]);
    drop(ga);
    assert!(lockcheck::held_classes().is_empty());
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn ab_ba_inversion_panics_with_both_stacks() {
    let a = SpinLock::with_class("t3.a", ());
    let b = SpinLock::with_class("t3.b", ());
    // Establish the order a → b...
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
    // ...then invert it: acquiring `a` while holding `b` must panic,
    // reporting this acquisition AND the recorded a→b edge.
    let _gb = b.lock();
    let _ga = a.lock();
}

#[test]
#[should_panic(expected = "recursive acquisition")]
fn same_class_never_nests() {
    // Two *instances* of one class: class-level tracking treats nesting
    // them as self-deadlock potential, mirroring the section discipline.
    let first = RawSpin::with_class("t4.lock");
    let second = RawSpin::with_class("t4.lock");
    first.lock();
    second.lock();
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn three_way_cycle_detected() {
    let a = TicketLock::with_class("t5.a", ());
    let b = TicketLock::with_class("t5.b", ());
    let c = TicketLock::with_class("t5.c", ());
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
    {
        let gb = b.lock();
        let gc = c.lock();
        drop(gc);
        drop(gb);
    }
    // a → b → c is recorded; closing c → a completes a cycle.
    let _gc = c.lock();
    let _ga = a.lock();
}

#[test]
fn shared_class_instances_may_nest() {
    // A *shared* class covers many distinct lock instances (the overflow
    // pools in nm-core): same-class nesting is fine...
    let first = RawSpin::with_shared_class("t6.pool");
    let second = RawSpin::with_shared_class("t6.pool");
    first.lock();
    second.lock();
    assert_eq!(lockcheck::held_classes(), vec!["t6.pool", "t6.pool"]);
    second.unlock();
    first.unlock();
    assert!(lockcheck::held_classes().is_empty());
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn shared_class_still_orders_against_other_classes() {
    // ...but cross-class ordering is validated exactly as usual.
    let pool = RawSpin::with_shared_class("t7.pool");
    let leaf = RawSpin::with_class("t7.leaf");
    pool.lock();
    leaf.lock();
    leaf.unlock();
    pool.unlock();
    // The inversion: t7.leaf held while acquiring t7.pool.
    leaf.lock();
    pool.lock();
}

#[test]
fn dump_graph_json_exports_observed_edges() {
    let a = SpinLock::with_class("t8.outer", ());
    let b = SpinLock::with_class("t8.inner", ());
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
    let doc = lockcheck::dump_graph_json();
    // The document is shared with other tests' edges (global graph);
    // just check schema markers and that our edge is present verbatim.
    assert!(
        doc.starts_with("{\"schema\": 1, \"enabled\": true"),
        "{doc}"
    );
    assert!(
        doc.contains("{\"from\": \"t8.outer\", \"to\": \"t8.inner\", \"held\": [\"t8.outer\"]}"),
        "edge missing from dump: {doc}"
    );
}

#[test]
fn untracked_locks_stay_silent() {
    // Locks without a class never touch the graph — opposite orders are
    // not reported (they are invisible to the validator).
    let a = SpinLock::new(());
    let b = SpinLock::new(());
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
    assert!(lockcheck::held_classes().is_empty());
}
