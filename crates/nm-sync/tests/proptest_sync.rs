//! Property-based tests of the synchronization primitives.

use proptest::prelude::*;

use nm_sync::{Backoff, CompletionFlag, Semaphore, SpinLock, TicketLock, WaitStrategy};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Sequential semaphore operations match a counter model.
    #[test]
    fn semaphore_matches_counter_model(
        initial in 0isize..8,
        ops in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let sem = Semaphore::new(initial);
        let mut model = initial;
        for acquire in ops {
            if acquire {
                let got = sem.try_acquire();
                prop_assert_eq!(got, model > 0);
                if got {
                    model -= 1;
                }
            } else {
                sem.release();
                model += 1;
            }
        }
        prop_assert_eq!(sem.available(), model);
    }

    /// A spinlock-protected counter incremented `n` times reads `n`;
    /// try_lock always succeeds sequentially.
    #[test]
    fn spinlock_counts_exactly(n in 0u64..500) {
        let lock = SpinLock::new(0u64);
        for _ in 0..n {
            *lock.lock() += 1;
        }
        prop_assert_eq!(*lock.try_lock().expect("uncontended"), n);
        prop_assert_eq!(lock.stats().acquisitions(), n + 1);
        prop_assert_eq!(lock.stats().contentions(), 0);
    }

    /// Ticket lock behaves identically for sequential use.
    #[test]
    fn ticket_lock_counts_exactly(n in 0u64..500) {
        let lock = TicketLock::new(0u64);
        for _ in 0..n {
            *lock.lock() += 1;
        }
        prop_assert_eq!(lock.into_inner(), n);
    }

    /// A completion flag observes any signal/reset sequence consistently.
    #[test]
    fn flag_state_machine(ops in prop::collection::vec(any::<bool>(), 0..64)) {
        let flag = CompletionFlag::new();
        let mut set = false;
        for signal in ops {
            if signal {
                flag.signal();
                set = true;
            } else if set {
                // Reset is only legal once set (library usage pattern).
                flag.reset();
                set = false;
            }
            prop_assert_eq!(flag.is_set(), set);
            if set {
                // Must return immediately for every strategy.
                flag.wait(WaitStrategy::Busy);
                flag.wait(WaitStrategy::Passive);
                flag.wait(WaitStrategy::fixed_spin_default());
            }
        }
    }

    /// Backoff completes after a bounded number of snoozes, never from
    /// pure spinning.
    #[test]
    fn backoff_bounded(snoozes in 0u32..32) {
        let mut b = Backoff::new();
        for _ in 0..snoozes {
            b.snooze();
        }
        prop_assert_eq!(b.is_completed(), snoozes > Backoff::YIELD_LIMIT);
    }

    /// Wait-strategy budgets classify exactly.
    #[test]
    fn strategy_budget_classification(us in 1u64..100_000) {
        let d = std::time::Duration::from_micros(us);
        let s = WaitStrategy::FixedSpin(d);
        prop_assert_eq!(s.spin_budget(), Some(d));
        prop_assert!(s.may_block());
    }
}
