//! Model-checked interleaving tests for the nm-sync primitives.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p nm-sync --test loom
//! ```
//!
//! Each test body runs under `loom::model`, which explores many seeded
//! thread schedules and symbolically checks the declared memory orderings
//! with vector clocks (see `compat/nm-loom`). The `UnsafeCell` payloads
//! attached next to the locks are what turns an ordering bug into a test
//! failure: if a weakened ordering (say `Release` → `Relaxed` in
//! `RawSpin::unlock`) no longer orders the cell accesses, the model
//! reports a data race on *every* schedule.

#![cfg(loom)]

use std::sync::Arc;

use nm_sync::sync_shim::atomic::{AtomicBool, Ordering};
use nm_sync::sync_shim::{cell::UnsafeCell, thread};
use nm_sync::{CompletionFlag, RawSpin, Semaphore, SpinLock, TicketLock, WaitStrategy};

/// A spinlock guarding a checked cell — the workhorse harness. Mutual
/// exclusion *and* the release/acquire edge of unlock/lock are both
/// verified through the cell's race detector.
struct SpinCounter {
    lock: RawSpin,
    value: UnsafeCell<u64>,
}

// SAFETY: `value` is only accessed while `lock` is held; the loom model
// verifies exactly this claim on every explored schedule.
unsafe impl Sync for SpinCounter {}

#[test]
fn raw_spin_guards_data_across_threads() {
    loom::model(|| {
        let shared = Arc::new(SpinCounter {
            lock: RawSpin::new(),
            value: UnsafeCell::new(0),
        });
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                thread::spawn(move || {
                    for _ in 0..2 {
                        s.lock.lock();
                        s.value.with_mut(|p| {
                            // SAFETY: exclusive by the spinlock; checked
                            // by the model.
                            unsafe { *p += 1 }
                        });
                        s.lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        shared.lock.lock();
        shared.value.with(|p| {
            // SAFETY: lock held.
            assert_eq!(unsafe { *p }, 4);
        });
        shared.lock.unlock();
    });
}

#[test]
fn raw_spin_try_lock_never_double_enters() {
    loom::model(|| {
        let shared = Arc::new(SpinCounter {
            lock: RawSpin::new(),
            value: UnsafeCell::new(0),
        });
        let s = Arc::clone(&shared);
        let h = thread::spawn(move || {
            if s.lock.try_lock() {
                s.value.with_mut(|p| {
                    // SAFETY: try_lock succeeded → exclusive.
                    unsafe { *p += 1 }
                });
                s.lock.unlock();
            }
        });
        if shared.lock.try_lock() {
            shared.value.with_mut(|p| {
                // SAFETY: try_lock succeeded → exclusive.
                unsafe { *p += 1 }
            });
            shared.lock.unlock();
        }
        h.join().unwrap();
    });
}

#[test]
fn spin_lock_counter_is_consistent() {
    loom::model(|| {
        let counter = Arc::new(SpinLock::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..2 {
                        *c.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 4);
    });
}

struct TicketCounter {
    lock: TicketLock<()>,
    value: UnsafeCell<u64>,
}

// SAFETY: `value` is only accessed under `lock`; verified by the model.
unsafe impl Sync for TicketCounter {}

#[test]
fn ticket_lock_orders_critical_sections() {
    loom::model(|| {
        let shared = Arc::new(TicketCounter {
            lock: TicketLock::new(()),
            value: UnsafeCell::new(0),
        });
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                thread::spawn(move || {
                    let _g = s.lock.lock();
                    s.value.with_mut(|p| {
                        // SAFETY: exclusive by the ticket lock.
                        unsafe { *p += 1 }
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _g = shared.lock.lock();
        shared.value.with(|p| {
            // SAFETY: lock held.
            assert_eq!(unsafe { *p }, 2);
        });
    });
}

/// The request-completion handoff: a producer writes the "result", then
/// signals the flag; the consumer waits and reads. The flag's
/// release-store / acquire-load pair is the only thing ordering the cell
/// accesses, so the model validates precisely the protocol every nm-core
/// request relies on.
struct Handoff {
    flag: CompletionFlag,
    result: UnsafeCell<u64>,
}

// SAFETY: `result` is written before `signal()` and read only after the
// wait returns; the flag provides the happens-before edge (model-checked).
unsafe impl Sync for Handoff {}

fn completion_flag_publishes_result(strategy: WaitStrategy) {
    loom::model(move || {
        let shared = Arc::new(Handoff {
            flag: CompletionFlag::new(),
            result: UnsafeCell::new(0),
        });
        let s = Arc::clone(&shared);
        let h = thread::spawn(move || {
            s.result.with_mut(|p| {
                // SAFETY: the consumer cannot read until `signal`.
                unsafe { *p = 99 }
            });
            s.flag.signal();
        });
        shared.flag.wait(strategy);
        shared.result.with(|p| {
            // SAFETY: wait returned → signal's release edge observed.
            assert_eq!(unsafe { *p }, 99);
        });
        h.join().unwrap();
    });
}

#[test]
fn completion_flag_busy_wait_handoff() {
    completion_flag_publishes_result(WaitStrategy::Busy);
}

#[test]
fn completion_flag_passive_wait_handoff() {
    completion_flag_publishes_result(WaitStrategy::Passive);
}

#[test]
fn completion_flag_signal_before_wait_is_not_lost() {
    loom::model(|| {
        let flag = Arc::new(CompletionFlag::new());
        let f = Arc::clone(&flag);
        let h = thread::spawn(move || {
            f.signal();
        });
        // Whatever the interleaving — signal before, during, or after the
        // wait entry — the waiter must come back.
        flag.wait(WaitStrategy::Passive);
        assert!(flag.is_set());
        h.join().unwrap();
    });
}

/// The per-gate rx handoff of nm-core's sharded collect layer: the app
/// thread posts a receive under its gate's *own* rx lock; the progress
/// engine matches and writes the result under the same lock, then
/// completes the request **after** releasing it (completions run outside
/// the section in `comm.rs`), so the completion flag's release edge is
/// what publishes the delivered payload to the unlocked reader.
struct GateRx {
    lock: RawSpin,
    state: UnsafeCell<RxCell>,
    flag: CompletionFlag,
}

#[derive(Default)]
struct RxCell {
    posted: bool,
    unexpected: Option<u64>,
    delivered: Option<u64>,
}

// SAFETY: `posted`/`unexpected` are only accessed while `lock` is held;
// `delivered` is written under the lock and read by the app thread only
// after `flag.wait` returns (signal's release edge, model-checked).
unsafe impl Sync for GateRx {}

impl GateRx {
    fn new() -> Self {
        GateRx {
            lock: RawSpin::new(),
            state: UnsafeCell::new(RxCell::default()),
            flag: CompletionFlag::new(),
        }
    }

    /// App side: match an early message or post and wait.
    fn recv(&self) -> u64 {
        self.lock.lock();
        let early = self.state.with_mut(|p| {
            // SAFETY: rx lock held.
            unsafe { (*p).unexpected.take() }
        });
        if let Some(v) = early {
            self.lock.unlock();
            return v;
        }
        self.state.with_mut(|p| {
            // SAFETY: rx lock held.
            unsafe { (*p).posted = true }
        });
        self.lock.unlock();
        self.flag.wait(WaitStrategy::Passive);
        self.state.with(|p| {
            // SAFETY: wait returned → the deliverer's writes (made before
            // its release-signal) are visible; it never writes again.
            unsafe { (*p).delivered.expect("signalled without delivery") }
        })
    }

    /// Progress side: deliver to the posted receive or buffer unexpected.
    fn deliver(&self, v: u64) {
        self.lock.lock();
        let matched = self.state.with_mut(|p| {
            // SAFETY: rx lock held.
            unsafe {
                if (*p).posted {
                    (*p).delivered = Some(v);
                    true
                } else {
                    (*p).unexpected = Some(v);
                    false
                }
            }
        });
        self.lock.unlock();
        // Completion outside the section, as in CommCore::dispatch.
        if matched {
            self.flag.signal();
        }
    }
}

#[test]
fn per_gate_rx_lock_handoff_between_app_and_progress() {
    loom::model(|| {
        // Two gates with independent rx shards: each app thread talks to
        // its own gate, the progress thread walks both (as a progression
        // pass does), and no interleaving may race or lose a message.
        let gates = Arc::new([GateRx::new(), GateRx::new()]);
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let g = Arc::clone(&gates);
                thread::spawn(move || g[i].recv())
            })
            .collect();
        for (i, g) in gates.iter().enumerate() {
            g.deliver(10 + i as u64);
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), 10 + i as u64);
        }
    });
}

/// A waker that counts its invocations through a loom atomic, so the
/// model sees the wake as an event it can order.
struct CountingWaker(Arc<nm_sync::sync_shim::atomic::AtomicUsize>);

impl std::task::Wake for CountingWaker {
    fn wake(self: std::sync::Arc<Self>) {
        self.0
            .fetch_add(1, nm_sync::sync_shim::atomic::Ordering::Release);
    }
}

/// The completion-delivery vs waker-registration race of the async
/// facade. Delivery signals the request's completion flag *before*
/// waking (`Request::deliver` in nm-core); a polling future checks the
/// flag, registers its waker, then re-checks (`poll_state` in nm-mpi).
/// The model proves that on every interleaving the future either
/// observes completion directly (returns Ready) or its waker fires — a
/// future parked forever on a completed request is impossible.
#[test]
fn waker_register_vs_completion_delivery_never_loses_the_wake() {
    use nm_sync::sync_shim::atomic::{AtomicUsize, Ordering};
    use nm_sync::WakerCell;

    loom::model(|| {
        let cell = Arc::new(WakerCell::new());
        let flag = Arc::new(CompletionFlag::new());
        let woken = Arc::new(AtomicUsize::new(0));

        let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
        let deliver = thread::spawn(move || {
            // The delivery order `request.rs` guarantees: terminal state
            // first, then the wakeup.
            f.signal();
            c.wake();
        });

        // One poll, exactly as the future's register-then-recheck path.
        let waker = std::task::Waker::from(std::sync::Arc::new(CountingWaker(Arc::clone(&woken))));
        let pending = if flag.is_set() {
            false
        } else if !cell.register(&waker) {
            // Delivery already ran; completion is observable.
            assert!(flag.is_set(), "refused registration before completion");
            false
        } else {
            // Registered; Pending only if completion still not visible.
            !flag.is_set()
        };
        deliver.join().unwrap();
        if pending {
            assert_eq!(
                woken.load(Ordering::Acquire),
                1,
                "future returned Pending but its waker never fired"
            );
        }
    });
}

#[test]
fn semaphore_handoff_transfers_permit() {
    loom::model(|| {
        let sem = Arc::new(Semaphore::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (s, st) = (Arc::clone(&sem), Arc::clone(&stop));
        let h = thread::spawn(move || {
            st.store(true, Ordering::Relaxed);
            s.release();
        });
        sem.acquire_with(WaitStrategy::Passive);
        // The permit was released exactly once and we consumed it.
        assert!(!sem.try_acquire());
        assert!(stop.load(Ordering::Relaxed));
        h.join().unwrap();
    });
}

#[test]
fn semaphore_two_consumers_two_permits() {
    loom::model(|| {
        let sem = Arc::new(Semaphore::new(0));
        let s = Arc::clone(&sem);
        let consumer = thread::spawn(move || {
            s.acquire_with(WaitStrategy::Passive);
        });
        let s2 = Arc::clone(&sem);
        let producer = thread::spawn(move || {
            s2.release_n(2);
        });
        sem.acquire_with(WaitStrategy::Passive);
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(sem.available(), 0);
    });
}

/// The cancel-vs-completion race of `nm-core::Request`: both sides call
/// `try_finish` (one `compare_exchange(false, true, AcqRel, Acquire)` on
/// a `finished` flag); only the winner writes the outcome and signals
/// the completion flag. The model proves that on every interleaving
/// exactly one outcome is recorded, delivery runs exactly once, and the
/// waiter always observes the winner's writes — a cancelled request can
/// never surface the completion's data and vice versa.
struct CancellableOp {
    finished: nm_sync::sync_shim::atomic::AtomicBool,
    flag: CompletionFlag,
    outcome: UnsafeCell<Option<&'static str>>,
    delivered: nm_sync::sync_shim::atomic::AtomicUsize,
}

// SAFETY: `outcome` is written only by the thread whose `try_finish` CAS
// succeeded (exactly one, by the CAS), strictly before `flag.signal()`;
// the reader waits for the flag first. Model-checked.
unsafe impl Sync for CancellableOp {}

impl CancellableOp {
    fn new() -> Self {
        CancellableOp {
            finished: nm_sync::sync_shim::atomic::AtomicBool::new(false),
            flag: CompletionFlag::new(),
            outcome: UnsafeCell::new(None),
            delivered: nm_sync::sync_shim::atomic::AtomicUsize::new(0),
        }
    }

    /// `Request::try_finish` verbatim: the single finish arbiter.
    fn try_finish(&self) -> bool {
        self.finished
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn complete(&self) {
        if !self.try_finish() {
            return;
        }
        self.outcome.with_mut(|p| {
            // SAFETY: finish CAS won → sole writer.
            unsafe { *p = Some("completed") }
        });
        self.flag.signal();
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    fn cancel(&self) -> bool {
        if !self.try_finish() {
            return false;
        }
        self.outcome.with_mut(|p| {
            // SAFETY: finish CAS won → sole writer.
            unsafe { *p = Some("cancelled") }
        });
        self.flag.signal();
        self.delivered.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[test]
fn cancel_vs_completion_race_resolves_to_exactly_one_outcome() {
    loom::model(|| {
        let op = Arc::new(CancellableOp::new());
        let o = Arc::clone(&op);
        let completer = thread::spawn(move || o.complete());
        let cancelled = op.cancel();
        op.flag.wait(WaitStrategy::Passive);
        completer.join().unwrap();
        let outcome = op.outcome.with(|p| {
            // SAFETY: flag set → winner's release-signal ordered its
            // write before this read; no writes follow the signal.
            unsafe { (*p).expect("flag signalled without an outcome") }
        });
        if cancelled {
            assert_eq!(outcome, "cancelled", "cancel won the CAS");
        } else {
            assert_eq!(outcome, "completed", "completion won the CAS");
        }
        assert_eq!(
            op.delivered.load(Ordering::Relaxed),
            1,
            "completion must be delivered exactly once"
        );
    });
}
