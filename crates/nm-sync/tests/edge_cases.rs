//! Edge-case coverage for the waiting primitives: `Backoff` saturation,
//! the `FixedSpin` spin→block crossover, and `CompletionFlag` misuse
//! (double signal, flag outliving its creator while a waiter blocks).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use nm_sync::{Backoff, CompletionFlag, WaitStrategy};

// ---------------------------------------------------------------- Backoff

#[test]
fn snooze_step_saturates_without_overflow() {
    let mut b = Backoff::new();
    // Far beyond YIELD_LIMIT: the step counter must clamp, not wrap.
    // (A wrapping u32 would need 2^32 iterations to surface; the clamp is
    // observable immediately because `is_completed` would flip back.)
    for _ in 0..10_000 {
        b.snooze();
        // Cheap loop guard: yielding 10k times must stay well under CI
        // timeouts, so no explicit time assertion is needed.
    }
    assert!(b.is_completed(), "saturated backoff must stay completed");
    b.snooze();
    assert!(b.is_completed(), "extra snoozes must not reset completion");
}

#[test]
fn spin_saturates_below_completion_threshold() {
    let mut b = Backoff::new();
    for _ in 0..10_000 {
        b.spin();
    }
    // `spin` clamps at SPIN_LIMIT + 1: a pure spinner never reports that
    // it should block. Only `snooze` walks the step up to YIELD_LIMIT.
    assert!(!b.is_completed());
    // From the saturated-spin state, snoozing still reaches completion.
    for _ in 0..=Backoff::YIELD_LIMIT {
        b.snooze();
    }
    assert!(b.is_completed());
}

#[test]
fn reset_from_saturation_restarts_the_schedule() {
    let mut b = Backoff::new();
    for _ in 0..100 {
        b.snooze();
    }
    assert!(b.is_completed());
    b.reset();
    assert!(!b.is_completed());
    // The schedule replays identically after reset.
    for _ in 0..=Backoff::YIELD_LIMIT {
        assert!(!b.is_completed());
        b.snooze();
    }
    assert!(b.is_completed());
}

// ------------------------------------------------- FixedSpin crossover

#[test]
fn fixed_spin_polls_during_window_then_blocks() {
    let flag = Arc::new(CompletionFlag::new());
    let polls = Arc::new(AtomicUsize::new(0));
    let (f2, p2) = (Arc::clone(&flag), Arc::clone(&polls));
    let waiter = thread::spawn(move || {
        f2.wait_with_poll(WaitStrategy::FixedSpin(Duration::from_millis(1)), || {
            p2.fetch_add(1, Ordering::Relaxed);
        });
    });
    // Let the 1 ms window expire; the waiter must have crossed over to
    // blocking, after which the poll counter freezes.
    thread::sleep(Duration::from_millis(100));
    let after_window = polls.load(Ordering::Relaxed);
    assert!(
        after_window > 0,
        "no polling happened during the spin window"
    );
    thread::sleep(Duration::from_millis(50));
    assert_eq!(
        polls.load(Ordering::Relaxed),
        after_window,
        "waiter kept polling after the spin window: it never blocked"
    );
    flag.signal();
    waiter.join().unwrap();
}

#[test]
fn fixed_spin_zero_window_blocks_like_passive() {
    let flag = Arc::new(CompletionFlag::new());
    let f2 = Arc::clone(&flag);
    let waiter = thread::spawn(move || {
        f2.wait(WaitStrategy::FixedSpin(Duration::ZERO));
        7
    });
    thread::sleep(Duration::from_millis(30));
    assert!(!flag.is_set());
    flag.signal();
    assert_eq!(waiter.join().unwrap(), 7);
}

#[test]
fn fixed_spin_completing_within_window_skips_the_block() {
    // With the flag already set, a huge spin window must return
    // immediately — the fast path never arms the spin loop at all.
    let flag = CompletionFlag::new();
    flag.signal();
    let t0 = Instant::now();
    flag.wait(WaitStrategy::FixedSpin(Duration::from_secs(60)));
    assert!(t0.elapsed() < Duration::from_secs(1));
}

#[test]
fn fixed_spin_timeout_crossover_expires_in_block_phase() {
    // Spin budget (10 µs) < timeout (30 ms): the waiter crosses into the
    // blocking phase and the timeout must fire there, returning false.
    let flag = CompletionFlag::new();
    let t0 = Instant::now();
    let ok = flag.wait_timeout(
        WaitStrategy::FixedSpin(Duration::from_micros(10)),
        Duration::from_millis(30),
    );
    assert!(!ok);
    assert!(t0.elapsed() >= Duration::from_millis(25));
}

// ---------------------------------------------------- CompletionFlag

#[test]
fn double_signal_is_idempotent() {
    let flag = CompletionFlag::new();
    flag.signal();
    flag.signal(); // second signal must be a harmless no-op
    assert!(flag.is_set());
    flag.wait(WaitStrategy::Passive);
    flag.wait(WaitStrategy::Busy);
}

#[test]
fn concurrent_double_signal_wakes_every_waiter() {
    let flag = Arc::new(CompletionFlag::new());
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let f = Arc::clone(&flag);
            thread::spawn(move || f.wait(WaitStrategy::Passive))
        })
        .collect();
    thread::sleep(Duration::from_millis(20));
    let signalers: Vec<_> = (0..2)
        .map(|_| {
            let f = Arc::clone(&flag);
            thread::spawn(move || f.signal())
        })
        .collect();
    for h in signalers.into_iter().chain(waiters) {
        h.join().unwrap();
    }
    assert!(flag.is_set());
}

#[test]
fn flag_outlives_creator_while_waiter_blocks() {
    // The creator drops its handle while a waiter is still blocked; the
    // waiter's own Arc must keep the flag (and its condvar) alive.
    let flag = Arc::new(CompletionFlag::new());
    let f2 = Arc::clone(&flag);
    let waiter = thread::spawn(move || {
        f2.wait(WaitStrategy::Passive);
        f2.is_set()
    });
    thread::sleep(Duration::from_millis(20));
    flag.signal();
    drop(flag); // creator's handle gone before the waiter returns
    assert!(waiter.join().unwrap());
}

#[test]
fn signal_reset_signal_cycles_with_blocked_waiters() {
    // Reuse across iterations, each with a fresh blocked waiter: the
    // reset must not eat the *next* iteration's wakeup.
    let flag = Arc::new(CompletionFlag::new());
    for _ in 0..5 {
        let f = Arc::clone(&flag);
        let waiter = thread::spawn(move || f.wait(WaitStrategy::fixed_spin_default()));
        thread::sleep(Duration::from_millis(5));
        flag.signal();
        waiter.join().unwrap();
        flag.reset();
        assert!(!flag.is_set());
    }
}
