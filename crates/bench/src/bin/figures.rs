//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [all|fig3|fig5|fig6|fig7|fig8|fig9|msgrate|cq|chaos|table1|sec33|bench] [options]
//!
//!   --real        measure the real stack (meaningful on multicore hosts)
//!   --calibrated  feed host-calibrated primitive costs to the simulator
//!   --from-trace  table1: derive constants from trace events instead of
//!                 stopwatch timing (needs the `trace` cargo feature;
//!                 with --real it traces the real stack, otherwise it
//!                 replays a bit-deterministic virtual-clock script)
//!   --folded      table1 --from-trace: also print flamegraph-folded lines
//!   --dual        fig8: use the dual-socket topology
//!   --csv         CSV output instead of Markdown
//!   --quick       fewer sizes and iterations
//!   --json        bench: write BENCH_FIGURES.json / BENCH_PINGPONG.json
//!   --out DIR     bench --json: output directory (default: cwd)
//!   --sim-only    bench --json: skip the wall-clock records
//! ```
//!
//! The `bench` subcommand produces the machine-readable regression
//! baselines consumed by `cargo xtask bench-check` (docs/METRICS.md).
//!
//! Default mode is the deterministic simulator with the paper's cost
//! constants, so output is reproducible anywhere; `--real` drives the
//! actual library instead.

use std::sync::Arc;
use std::time::Duration;

use nm_bench::calibrate::{self, Calibration};
use nm_bench::concurrent::concurrent_series;
use nm_bench::overlap::{overlap_series, OverlapOpts};
use nm_bench::pingpong::{pingpong_series, PingpongOpts};
use nm_bench::table::{constants_table, series_csv, series_table, ConstantRow};
use nm_bench::Series;
use nm_core::LockingMode;
use nm_progress::{IdlePolicy, OffloadMode, ProgressEngine, ProgressionThread};
use nm_sim::experiments as sim;
use nm_sim::SimCosts;
use nm_sync::WaitStrategy;
use nm_topo::Topology;

#[derive(Clone)]
struct Options {
    real: bool,
    calibrated: bool,
    from_trace: bool,
    folded: bool,
    dual: bool,
    csv: bool,
    quick: bool,
    json: bool,
    sim_only: bool,
    out: Option<String>,
}

/// Every experiment name the CLI accepts, in `all` run order
/// (printed by `--list` and by the unknown-name error path).
const EXPERIMENTS: [&str; 17] = [
    "all",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig7sweep",
    "fig8",
    "fig9",
    "bw",
    "rdvoverlap",
    "msgrate",
    "cq",
    "chaos",
    "breakdown",
    "table1",
    "sec33",
    "bench",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = Vec::new();
    let mut opts = Options {
        real: false,
        calibrated: false,
        from_trace: false,
        folded: false,
        dual: false,
        csv: false,
        quick: false,
        json: false,
        sim_only: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        match a.as_str() {
            "--real" => opts.real = true,
            "--calibrated" => opts.calibrated = true,
            "--from-trace" => opts.from_trace = true,
            "--folded" => opts.folded = true,
            "--dual" => opts.dual = true,
            "--csv" => opts.csv = true,
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--sim-only" => opts.sim_only = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => opts.out = Some(dir.clone()),
                    None => {
                        eprintln!("--out needs a directory argument");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if EXPERIMENTS.contains(&other) => what.push(a.clone()),
            other => {
                eprintln!("unknown experiment: {other}");
                eprintln!("known experiments (also `figures --list`):");
                for name in EXPERIMENTS {
                    eprintln!("  {name}");
                }
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "fig3",
            "fig5",
            "fig6",
            "fig7",
            "fig7sweep",
            "fig8",
            "fig9",
            "bw",
            "rdvoverlap",
            "msgrate",
            "cq",
            "chaos",
            "breakdown",
            "table1",
            "sec33",
        ]
        .map(String::from)
        .to_vec();
    }

    let costs = if opts.calibrated {
        let cal = calibrate::calibrate();
        eprintln!("# calibrated costs: {cal:?}");
        cal.to_sim_costs()
    } else {
        SimCosts::paper()
    };

    for w in &what {
        match w.as_str() {
            "fig3" => fig3(&opts, costs),
            "fig5" => fig5(&opts, costs),
            "fig6" => fig6(&opts, costs),
            "fig7" => fig7(&opts, costs),
            "fig7sweep" => fig7sweep(&opts, costs),
            "bw" => bandwidth(&opts, costs),
            "rdvoverlap" => rdv_overlap(&opts, costs),
            "fig8" => fig8(&opts, costs),
            "fig9" => fig9(&opts, costs),
            "msgrate" => msgrate(&opts, costs),
            "cq" => cq(&opts, costs),
            "chaos" => chaos(&opts, costs),
            "breakdown" => breakdown_report(&opts, costs),
            "table1" => table1(&opts, costs),
            "sec33" => sec33(),
            "bench" => bench(&opts, costs),
            _ => unreachable!(),
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: figures [all|fig3|fig5|fig6|fig7|fig8|fig9|msgrate|cq|chaos|breakdown|table1|sec33|bench] \
         [--list] [--real] [--calibrated] [--from-trace] [--folded] [--dual] [--csv] [--quick] \
         [--json] [--out DIR] [--sim-only]"
    );
}

fn sizes(opts: &Options) -> Vec<usize> {
    if opts.quick {
        vec![4, 64, 1024]
    } else {
        sim::small_sizes()
    }
}

fn emit(opts: &Options, title: &str, series: &[Series]) {
    if opts.csv {
        println!("# {title}");
        print!("{}", series_csv(series));
    } else {
        println!("{}", series_table(title, series));
    }
}

fn mode_note(opts: &Options) -> &'static str {
    if opts.real {
        "real stack"
    } else {
        "deterministic simulator"
    }
}

fn real_pingpong_opts(locking: LockingMode, via_engine: bool, quick: bool) -> PingpongOpts {
    PingpongOpts {
        locking,
        via_engine,
        iters: if quick { 30 } else { 200 },
        warmup: if quick { 5 } else { 20 },
        ..PingpongOpts::default()
    }
}

fn fig3(opts: &Options, costs: SimCosts) {
    let sz = sizes(opts);
    let series = if opts.real {
        [
            LockingMode::Coarse,
            LockingMode::Fine,
            LockingMode::SingleThread,
        ]
        .iter()
        .map(|&m| {
            pingpong_series(
                &real_pingpong_opts(m, false, opts.quick),
                &format!("{} locking", m.label()),
                &sz,
            )
        })
        .collect::<Vec<_>>()
    } else {
        sim::fig3_locking_latency(costs, &sz)
    };
    emit(
        opts,
        &format!(
            "Figure 3 — impact of locking on latency ({})",
            mode_note(opts)
        ),
        &series,
    );
}

fn fig5(opts: &Options, costs: SimCosts) {
    let sz = sizes(opts);
    let series = if opts.real {
        let mut out = vec![pingpong_series(
            &real_pingpong_opts(LockingMode::Fine, false, opts.quick),
            "1 thread",
            &sz,
        )];
        for m in [LockingMode::Fine, LockingMode::Coarse] {
            out.extend(concurrent_series(
                &real_pingpong_opts(m, false, opts.quick),
                &format!("{} locking", m.label()),
                &sz,
            ));
        }
        out
    } else {
        sim::fig5_concurrent_pingpong(costs, &sz)
    };
    emit(
        opts,
        &format!(
            "Figure 5 — two threads perform concurrently pingpong programs ({})",
            mode_note(opts)
        ),
        &series,
    );
}

fn fig6(opts: &Options, costs: SimCosts) {
    let sz = sizes(opts);
    let series = if opts.real {
        let mut out = Vec::new();
        for (via, tag) in [(true, "PIOMan "), (false, "")] {
            for m in [LockingMode::Coarse, LockingMode::Fine] {
                out.push(pingpong_series(
                    &real_pingpong_opts(m, via, opts.quick),
                    &format!("{tag}{} locking", m.label()),
                    &sz,
                ));
            }
        }
        out
    } else {
        sim::fig6_pioman_overhead(costs, &sz)
    };
    emit(
        opts,
        &format!(
            "Figure 6 — impact of PIOMan on latency ({})",
            mode_note(opts)
        ),
        &series,
    );
}

fn fig7(opts: &Options, costs: SimCosts) {
    let sz = sizes(opts);
    let series = if opts.real {
        fig7_real(opts, &sz)
    } else {
        sim::fig7_waiting_strategies(costs, &sz)
    };
    emit(
        opts,
        &format!(
            "Figure 7 — impact of semaphores on latency ({})",
            mode_note(opts)
        ),
        &series,
    );
}

/// Real-mode Fig 7: a progression thread per side keeps polling so that
/// passive waiters are woken.
fn fig7_real(opts: &Options, sz: &[usize]) -> Vec<Series> {
    let mut out = Vec::new();
    for (wait, wname) in [
        (WaitStrategy::Passive, "passive waiting"),
        (WaitStrategy::Busy, "active waiting"),
    ] {
        for m in [LockingMode::Coarse, LockingMode::Fine] {
            let label = format!("{wname} ({} locking)", m.label());
            let points = sz
                .iter()
                .map(|&s| {
                    let mut po = real_pingpong_opts(m, false, opts.quick);
                    po.wait = wait;
                    // Progression threads drive both cores for passive
                    // waiters.
                    let (a, b) = nm_bench::pingpong::build_pair(&po);
                    let engine = Arc::new(ProgressEngine::new());
                    engine.register(Arc::clone(&a) as _);
                    engine.register(Arc::clone(&b) as _);
                    let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);
                    let stats = pingpong_with_cores(&a, &b, &po, s);
                    pt.stop();
                    (s, stats)
                })
                .collect();
            out.push(Series { label, points });
        }
    }
    out
}

/// Pingpong over pre-built cores (so callers can attach machinery).
fn pingpong_with_cores(
    a: &Arc<nm_core::CommCore>,
    b: &Arc<nm_core::CommCore>,
    opts: &PingpongOpts,
    size: usize,
) -> f64 {
    use bytes::Bytes;
    use nm_core::GateId;
    let total = opts.warmup + opts.iters;
    let wait = opts.wait;
    let b2 = Arc::clone(b);
    let echo = std::thread::spawn(move || {
        for _ in 0..total {
            let r = b2.irecv(GateId(0), 0).expect("irecv");
            b2.wait(&r, wait).unwrap();
            let data = r.take_data().expect("payload");
            let s = b2.isend(GateId(0), 0, data).expect("isend");
            b2.wait(&s, wait).unwrap();
        }
    });
    let payload = Bytes::from(vec![1u8; size]);
    let mut samples = Vec::new();
    for i in 0..total {
        let t0 = std::time::Instant::now();
        let s = a.isend(GateId(0), 0, payload.clone()).expect("isend");
        a.wait(&s, wait).unwrap();
        let r = a.irecv(GateId(0), 0).expect("irecv");
        a.wait(&r, wait).unwrap();
        if i >= opts.warmup {
            samples.push(t0.elapsed().as_nanos() as u64 / 2);
        }
    }
    echo.join().expect("echo");
    nm_bench::stats::LatencyStats::from_ns(samples).median_us()
}

/// Ablation: sweep the fixed-spin window around the paper's 5 µs
/// suggestion (x-axis is the window in ns, not a message size).
fn fig7sweep(opts: &Options, costs: SimCosts) {
    let windows: Vec<u64> = [0u64, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000].to_vec();
    let series = vec![sim::fig7_fixed_spin_sweep(costs, 64, &windows)];
    emit(
        opts,
        "Figure 7 extension — fixed-spin window sweep (x = window ns, deterministic simulator)",
        &series,
    );
}

/// The §3.1 bandwidth claim: locking overheads vanish at large sizes.
fn bandwidth(opts: &Options, costs: SimCosts) {
    let sizes: Vec<usize> = if opts.quick {
        vec![64, 4096, 32 * 1024]
    } else {
        (6..=15).map(|p| 1usize << p).collect()
    };
    let series = sim::bandwidth_by_mode(costs, &sizes);
    emit(
        opts,
        "Bandwidth vs locking mode (MB/s; §3.1's \"no impact on bandwidth\", deterministic simulator)",
        &series,
    );
}

/// §4.1: rendezvous handshakes managed by idle cores overlap the
/// transfer of large messages with computation.
fn rdv_overlap(opts: &Options, costs: SimCosts) {
    let sizes: Vec<usize> = if opts.quick {
        vec![64 * 1024, 256 * 1024]
    } else {
        (14..=19).map(|p| 1usize << p).collect()
    };
    let series = sim::rdv_overlap(costs, &sizes);
    emit(
        opts,
        "§4.1 — rendezvous overlap: RTS + 30 µs compute + wait, total µs (deterministic simulator)",
        &series,
    );
}

fn fig8(opts: &Options, costs: SimCosts) {
    let topo = if opts.dual {
        Topology::dual_xeon_x5460()
    } else {
        Topology::xeon_x5460()
    };
    let sz = sizes(opts);
    if opts.real {
        let host = Topology::discover();
        if host.num_cores() < 4 || !nm_topo::affinity::is_supported() {
            eprintln!(
                "# fig8 --real needs >= 4 bindable cores (host has {}); using the simulator",
                host.num_cores()
            );
        } else {
            eprintln!("# fig8 --real not yet distinct from sim placements; see benches/fig8");
        }
    }
    let series = sim::fig8_cache_affinity(costs, &topo, &sz);
    emit(
        opts,
        &format!(
            "Figure 8 — impact of cache affinity ({}, {})",
            topo.name(),
            mode_note(opts)
        ),
        &series,
    );
}

fn fig9(opts: &Options, costs: SimCosts) {
    let sz = if opts.quick {
        vec![2048, 8192, 32768]
    } else {
        sim::fig9_sizes()
    };
    let series = if opts.real {
        OffloadMode::ALL
            .iter()
            .map(|&mode| {
                overlap_series(
                    &OverlapOpts {
                        offload: mode,
                        iters: if opts.quick { 20 } else { 100 },
                        warmup: 5,
                        ..OverlapOpts::default()
                    },
                    &sz,
                )
            })
            .collect::<Vec<_>>()
    } else {
        sim::fig9_offload_tasklets(costs, &sz)
    };
    emit(
        opts,
        &format!(
            "Figure 9 — impact of tasklets on deferred message submission ({})",
            mode_note(opts)
        ),
        &series,
    );
}

/// Flow counts of the message-rate scaling experiment.
fn msgrate_flows(opts: &Options) -> Vec<usize> {
    if opts.quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Message-rate scaling: aggregate small-message rate vs concurrent
/// single-gate flows (the endpoints argument applied to the collect
/// layer). Sim mode compares per-gate collect locks against the
/// pre-sharding node-wide lock; real mode measures the actual stack,
/// where fine-grain *is* the sharded layout and coarse stands in for a
/// single library-wide lock.
fn msgrate(opts: &Options, costs: SimCosts) {
    use nm_bench::table::series_table_with;

    let flows = msgrate_flows(opts);
    let series = if opts.real {
        use nm_bench::msgrate::{msgrate_threaded, MsgrateOpts};
        [LockingMode::Fine, LockingMode::Coarse]
            .iter()
            .map(|&m| Series {
                label: format!("{} locking", m.label()),
                points: flows
                    .iter()
                    .map(|&n| {
                        let mo = MsgrateOpts {
                            locking: m,
                            flows: n,
                            rounds: if opts.quick { 10 } else { 50 },
                            ..MsgrateOpts::default()
                        };
                        (n, msgrate_threaded(&mo))
                    })
                    .collect(),
            })
            .collect::<Vec<_>>()
    } else {
        sim::msgrate_scaling(costs, &flows)
    };
    let title = format!(
        "Message-rate scaling — concurrent single-gate flows ({})",
        mode_note(opts)
    );
    if opts.csv {
        println!("# {title}");
        print!("{}", series_csv(&series));
    } else {
        println!("{}", series_table_with(&title, "flows", "Mmsg/s", &series));
    }

    // Flows × VCIs: the multi-VCI transfer layer's scaling axis. One
    // context is the classic shared-ring NIC (every flow funnels through
    // one tx/completion ring); with contexts ≥ flows each flow owns its
    // rings outright. Sim mode models the shared-completion-queue scan;
    // real mode drives the actual striped per-(rail, VCI) lanes.
    let vci_flows: Vec<usize> = if opts.quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let vci_counts: Vec<usize> = if opts.quick {
        vec![1, 16]
    } else {
        vec![1, 4, 16]
    };
    let vci_series = if opts.real {
        use nm_bench::msgrate::{msgrate_threaded, MsgrateOpts};
        vci_counts
            .iter()
            .map(|&v| Series {
                label: format!("{v} VCI{}", if v == 1 { "" } else { "s" }),
                points: vci_flows
                    .iter()
                    .map(|&n| {
                        let mo = MsgrateOpts {
                            locking: LockingMode::Fine,
                            flows: n,
                            vcis: v,
                            rounds: if opts.quick { 10 } else { 50 },
                            ..MsgrateOpts::default()
                        };
                        (n, msgrate_threaded(&mo))
                    })
                    .collect(),
            })
            .collect::<Vec<_>>()
    } else {
        sim::msgrate_vci_scaling(costs, &vci_flows, &vci_counts)
    };
    let title = format!(
        "Message-rate scaling — flows × VCI contexts, fine-grain locking ({})",
        mode_note(opts)
    );
    if opts.csv {
        println!("# {title}");
        print!("{}", series_csv(&vci_series));
    } else {
        println!(
            "{}",
            series_table_with(&title, "flows", "Mmsg/s", &vci_series)
        );
    }

    // CI runs this sweep under `--features lockcheck` and archives the
    // lock graph the striped lanes actually exercised; without the
    // feature the document just says `enabled: false`.
    if let Some(path) = std::env::var_os("NOMAD_LOCKGRAPH_OUT") {
        std::fs::write(&path, nm_sync::lockcheck::dump_graph_json())
            .expect("write NOMAD_LOCKGRAPH_OUT");
        eprintln!("lock graph written to {}", path.to_string_lossy());
    }
}

/// Outstanding-request counts of the completion-queue experiment.
fn cq_outstanding(opts: &Options) -> Vec<usize> {
    if opts.quick {
        vec![512, 2048]
    } else {
        vec![2560, 10240, 20480]
    }
}

/// Completion-queue drain scaling: aggregate completion rate vs
/// outstanding requests — two cores draining one shared
/// `CompletionQueue` against dedicated per-request busy-wait threads.
/// Simulator-only: the model isolates delivery cost (see
/// `nm_sim::experiments::cq_completion_scaling`).
fn cq(opts: &Options, costs: SimCosts) {
    use nm_bench::table::series_table_with;

    if opts.real {
        eprintln!("# cq: simulator-only experiment; ignoring --real");
    }
    let series = sim::cq_completion_scaling(costs, &cq_outstanding(opts));
    let title = "Completion-queue drain — 2 cores vs dedicated wait threads \
                 (deterministic simulator)";
    if opts.csv {
        println!("# {title}");
        print!("{}", series_csv(&series));
    } else {
        println!(
            "{}",
            series_table_with(title, "outstanding", "Mmsg/s", &series)
        );
    }
}

/// Chaos sweep — the reliability layer under deterministic fault
/// injection: goodput and p99 in-order delivery latency vs frame-loss
/// rate, coarse vs fine locking. Simulator-only: the model prices the
/// ack/retransmit/backoff protocol in virtual time (see
/// `nm_sim::experiments::chaos_loss_sweep`); the real stack's chaos
/// coverage lives in the `nm-core` reliability tests.
fn chaos(opts: &Options, costs: SimCosts) {
    use nm_bench::table::series_table_with;

    if opts.real {
        eprintln!("# chaos: simulator-only experiment; ignoring --real");
    }
    let loss = sim::chaos_loss_points();
    let (goodput, p99) = sim::chaos_loss_sweep(costs, &loss);
    let g_title = "Chaos sweep — goodput vs frame-loss rate (deterministic simulator)";
    let p_title = "Chaos sweep — p99 in-order delivery latency vs frame-loss rate \
                   (deterministic simulator)";
    if opts.csv {
        println!("# {g_title}");
        print!("{}", series_csv(&goodput));
        println!("# {p_title}");
        print!("{}", series_csv(&p99));
    } else {
        println!(
            "{}",
            series_table_with(g_title, "loss (\u{2030})", "MB/s", &goodput)
        );
        println!(
            "{}",
            series_table_with(p_title, "loss (\u{2030})", "µs", &p99)
        );
    }
}

fn table1(opts: &Options, costs: SimCosts) {
    if opts.from_trace {
        table1_from_trace(opts, costs);
        return;
    }
    let cal = calibrate::calibrate();
    let rows = vec![
        ConstantRow {
            name: "spinlock acquire/release cycle".into(),
            paper_ns: 70,
            ours_ns: cal.lock_cycle_ns,
        },
        ConstantRow {
            name: "ticket lock cycle (ablation)".into(),
            paper_ns: 70,
            ours_ns: cal.ticket_cycle_ns,
        },
        ConstantRow {
            name: "parking_lot mutex cycle (ablation)".into(),
            paper_ns: 70,
            ours_ns: cal.mutex_cycle_ns,
        },
        ConstantRow {
            name: "PIOMan pass (lists + locking)".into(),
            paper_ns: 200,
            ours_ns: cal.pioman_pass_ns,
        },
        ConstantRow {
            name: "blocking context switch".into(),
            paper_ns: 750,
            ours_ns: cal.ctx_switch_ns,
        },
        ConstantRow {
            name: "completion flag signal+wait".into(),
            paper_ns: 0,
            ours_ns: cal.flag_cycle_ns,
        },
        // The sharding payoff in one pair of rows: the same 4-thread
        // collect-section hammering, on per-gate shards vs the seed's
        // single lock (paper prices one uncontended cycle at 70 ns).
        ConstantRow {
            name: "collect-section cycle (4 threads, per-gate shards)".into(),
            paper_ns: 70,
            ours_ns: calibrate::collect_cycle_ns(4, true),
        },
        ConstantRow {
            name: "collect-section cycle (4 threads, single lock)".into(),
            paper_ns: 70,
            ours_ns: calibrate::collect_cycle_ns(4, false),
        },
    ];
    println!(
        "{}",
        constants_table("Table 1 — in-text constants, paper vs this host", &rows)
    );
    let _ = Calibration::paper_reference();
}

/// Table 1 derived from trace timestamps instead of stopwatch timing:
/// the constants come out of `LockAcquire` gaps, `PollPass` spans,
/// `ThreadBlock`→`ThreadWake` spans and `OffloadSubmit`→`OffloadRun`
/// hops alone.
fn table1_from_trace(opts: &Options, costs: SimCosts) {
    use nm_bench::fromtrace;
    use nm_trace::TraceReport;

    if !nm_trace::enabled() {
        eprintln!(
            "table1 --from-trace needs event tracing compiled in; rerun as\n\
             \n    cargo run --release --features trace --bin figures -- table1 --from-trace\n"
        );
        std::process::exit(2);
    }
    let (trace, mode) = if opts.real {
        (fromtrace::real_trace(), "traced real stack")
    } else {
        (
            fromtrace::sim_trace(&costs),
            "deterministic virtual-clock replay",
        )
    };
    let c = fromtrace::derive(&trace);
    let rows = vec![
        ConstantRow {
            name: "spinlock acquire/release cycle".into(),
            paper_ns: 70,
            ours_ns: c.lock_cycle_ns,
        },
        ConstantRow {
            name: "PIOMan pass (lists + locking)".into(),
            paper_ns: 200,
            ours_ns: c.pioman_pass_ns,
        },
        ConstantRow {
            name: "blocking context switch".into(),
            paper_ns: 750,
            ours_ns: c.ctx_switch_ns,
        },
        ConstantRow {
            name: "offload hop (idle core)".into(),
            paper_ns: 400,
            ours_ns: c.offload_hop_ns,
        },
    ];
    println!(
        "{}",
        constants_table(
            &format!("Table 1 — in-text constants from trace events ({mode})"),
            &rows
        )
    );
    let report = TraceReport::from_trace(&trace);
    println!("{report}");
    if opts.folded {
        println!("```folded\n{}```", report.folded());
    }
}

/// Sizes used for the committed benchmark baselines. Deliberately fixed
/// (not `--quick`-dependent): the baselines in git must always cover
/// the same points, or bench-check would report spurious missing
/// records.
const BENCH_SIZES: &[usize] = &[4, 64, 1024, 16384];

/// The `bench` subcommand: machine-readable regression baselines.
///
/// `BENCH_FIGURES.json` holds deterministic simulator results (compared
/// exactly by `cargo xtask bench-check`); `BENCH_PINGPONG.json` holds
/// wall-clock measurements of the real stack plus the metrics-layer
/// record-cost microbench (compared within ±15%). `--sim-only` skips
/// the wall-clock file for hosts/CI where timing is not comparable.
/// Critical-path latency breakdown per locking mode: the deterministic
/// virtual-clock model in `nm_bench::breakdown`, decomposed by the
/// production span assembler (`nm-obs`). Components always sum exactly
/// to the end-to-end total.
fn breakdown_report(opts: &Options, costs: SimCosts) {
    let rows = nm_bench::breakdown::all_breakdowns(costs);
    if opts.csv {
        println!("# critical-path breakdown (ns)");
        println!("mode,submit,collect,retransmit,wire,delivery,total");
        for (mode, b) in &rows {
            println!(
                "{mode},{},{},{},{},{},{}",
                b.submit_ns, b.collect_ns, b.retransmit_ns, b.wire_ns, b.delivery_ns, b.total_ns
            );
        }
    } else {
        println!("critical-path breakdown: one eager message, ns per stage");
        println!(
            "{:<14} {:>8} {:>8} {:>10} {:>8} {:>9} {:>8}",
            "mode", "submit", "collect", "retransmit", "wire", "delivery", "total"
        );
        for (mode, b) in &rows {
            println!(
                "{:<14} {:>8} {:>8} {:>10} {:>8} {:>9} {:>8}",
                mode,
                b.submit_ns,
                b.collect_ns,
                b.retransmit_ns,
                b.wire_ns,
                b.delivery_ns,
                b.total_ns
            );
        }
        println!();
    }
}

fn bench(opts: &Options, costs: SimCosts) {
    use nm_bench::report::{write_json, BenchRecord};

    if !opts.json {
        eprintln!("bench: only --json output is supported; pass --json");
        std::process::exit(2);
    }
    let out_dir = std::path::PathBuf::from(opts.out.as_deref().unwrap_or("."));

    // --- BENCH_FIGURES.json: deterministic sim records ----------------
    let mut records = Vec::new();
    let flatten = |records: &mut Vec<BenchRecord>, fig: &str, series: Vec<Series>| {
        for s in series {
            for (size, v) in s.points {
                records.push(BenchRecord::sim(
                    format!("{fig}/{}/size={size}", s.label),
                    "us",
                    v,
                ));
            }
        }
    };
    flatten(
        &mut records,
        "fig3",
        sim::fig3_locking_latency(costs, BENCH_SIZES),
    );
    flatten(
        &mut records,
        "fig5",
        sim::fig5_concurrent_pingpong(costs, BENCH_SIZES),
    );
    flatten(
        &mut records,
        "fig6",
        sim::fig6_pioman_overhead(costs, BENCH_SIZES),
    );
    flatten(
        &mut records,
        "fig7",
        sim::fig7_waiting_strategies(costs, BENCH_SIZES),
    );
    flatten(
        &mut records,
        "fig9",
        sim::fig9_offload_tasklets(costs, &[2048, 8192, 32768]),
    );
    // Message-rate scaling: x is the flow count, unit is Mmsg/s (the
    // `flatten` helper assumes size/µs, so these records are explicit).
    for s in sim::msgrate_scaling(costs, &[1, 2, 4, 8]) {
        for (flows, v) in s.points {
            records.push(BenchRecord::sim(
                format!("msgrate/{}/flows={flows}", s.label),
                "Mmsg/s",
                v,
            ));
        }
    }
    // Completion-queue drain: x is the outstanding-request count.
    for s in sim::cq_completion_scaling(costs, &[2560, 10240, 20480]) {
        for (n, v) in s.points {
            records.push(BenchRecord::sim(
                format!("cq/{}/outstanding={n}", s.label),
                "Mmsg/s",
                v,
            ));
        }
    }
    // Chaos sweep: x is the frame-loss rate in per-mille.
    let (chaos_goodput, chaos_p99) = sim::chaos_loss_sweep(costs, &sim::chaos_loss_points());
    for (fig, unit, series) in [
        ("chaos/goodput", "MB/s", chaos_goodput),
        ("chaos/p99", "us", chaos_p99),
    ] {
        for s in series {
            for (pm, v) in s.points {
                records.push(BenchRecord::sim(
                    format!("{fig}/{}/loss_pm={pm}", s.label),
                    unit,
                    v,
                ));
            }
        }
    }
    // Critical-path breakdown: per-mode latency decomposition through
    // the nm-obs span assembler (appended last so the records above keep
    // their historical positions in the file).
    for (mode, b) in nm_bench::breakdown::all_breakdowns(costs) {
        for (component, v) in b.components() {
            records.push(BenchRecord::sim(
                format!("breakdown/{mode}/{component}"),
                "ns",
                v as f64,
            ));
        }
        records.push(BenchRecord::sim(
            format!("breakdown/{mode}/total"),
            "ns",
            b.total_ns as f64,
        ));
    }
    // Multi-VCI message rate: x is the flow count, one record family per
    // context count (appended after everything above so the pre-existing
    // records keep their historical positions in the file).
    for s in sim::msgrate_vci_scaling(costs, &[1, 4, 16], &[1, 4, 16]) {
        for (flows, v) in s.points {
            records.push(BenchRecord::sim(
                format!("msgrate-vci/{}/flows={flows}", s.label),
                "Mmsg/s",
                v,
            ));
        }
    }
    let figures_path = out_dir.join("BENCH_FIGURES.json");
    write_json(&figures_path, &records).expect("write BENCH_FIGURES.json");
    eprintln!(
        "# wrote {} ({} records)",
        figures_path.display(),
        records.len()
    );

    // --- BENCH_PINGPONG.json: wall-clock records ----------------------
    if opts.sim_only {
        return;
    }
    let mut records = Vec::new();
    for &size in &[4usize, 1024] {
        let po = PingpongOpts {
            locking: LockingMode::Fine,
            iters: if opts.quick { 50 } else { 400 },
            warmup: if opts.quick { 10 } else { 40 },
            ..PingpongOpts::default()
        };
        let stats = nm_bench::pingpong::pingpong_singlethread(&po, size);
        records.push(BenchRecord::real(
            format!("pingpong/singlethread/myri10g/size={size}"),
            "us",
            stats.median_us(),
            stats.median_us(),
            stats.percentile_ns(99.0) as f64 / 1_000.0,
        ));
    }
    let mo = nm_bench::msgrate::MsgrateOpts {
        rounds: if opts.quick { 10 } else { 50 },
        ..nm_bench::msgrate::MsgrateOpts::default()
    };
    let rate = nm_bench::msgrate::msgrate_singlethread(&mo);
    records.push(BenchRecord::real(
        format!("msgrate/singlethread/fine/flows={}", mo.flows),
        "Mmsg/s",
        rate,
        rate,
        rate,
    ));
    let rec_ns = nm_bench::report::measure_hist_record_ns();
    records.push(BenchRecord::real(
        "micro/hist_record/ns",
        "ns",
        rec_ns,
        rec_ns,
        rec_ns,
    ));
    let pingpong_path = out_dir.join("BENCH_PINGPONG.json");
    write_json(&pingpong_path, &records).expect("write BENCH_PINGPONG.json");
    eprintln!(
        "# wrote {} ({} records)",
        pingpong_path.display(),
        records.len()
    );
}

fn sec33() {
    let cores = Topology::discover().num_cores();
    println!("## §3.3 — cost of dedicating one core to communication\n");
    println!(
        "analytic model: 1/{cores} of compute throughput = {:.1} % \
         (paper: up to 25 % on a quad-core)\n",
        100.0 * nm_bench::compute_loss::ComputeLoss::analytic(cores)
    );
    let r = nm_bench::compute_loss::measure(cores, Duration::from_millis(500));
    println!(
        "measured on this host ({} cores): baseline {:.0} iters/s, \
         with dedicated poller {:.0} iters/s -> {:.1} % loss\n",
        r.cores,
        r.baseline_rate,
        r.with_poller_rate,
        100.0 * r.loss()
    );
}
