//! Shared helpers for the figure benches.
//!
//! The key device is the *co-polled pingpong*: both endpoints' cores are
//! driven by the calling thread, so a roundtrip measures the real software
//! path (locks, strategy, wire format, matching) without any thread
//! scheduling noise — the right baseline for the paper's single-threaded
//! latency figures on any host, including single-CPU CI boxes.

#![warn(missing_docs)]

use std::sync::Arc;

use bytes::Bytes;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{Driver, LoopbackDriver, WireModel};

/// Builds two connected cores over an ideal (zero-latency) wire so that
/// measured time is pure software overhead.
pub fn build_ideal_pair(locking: LockingMode) -> (Arc<CommCore>, Arc<CommCore>) {
    let (da, db) = LoopbackDriver::pair(64);
    let config = CoreConfig::default().locking(locking);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    (a, b)
}

/// Builds two connected cores over a real-time simulated NIC.
pub fn build_wire_pair(locking: LockingMode, wire: WireModel) -> (Arc<CommCore>, Arc<CommCore>) {
    let fabric = nm_fabric::Fabric::real_time();
    let (pa, pb) = fabric.pair(&[wire], true);
    let config = CoreConfig::default().locking(locking);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();
    (a, b)
}

/// One co-polled roundtrip: A sends to B, B echoes, the calling thread
/// polls both cores throughout. Panics if the roundtrip does not finish
/// within a progress-pass budget (broken protocol rather than hang).
pub fn co_polled_roundtrip(a: &Arc<CommCore>, b: &Arc<CommCore>, payload: &Bytes) {
    const MAX_PASSES: usize = 1_000_000;
    let send = a.isend(GateId(0), 0, payload.clone()).expect("isend");
    let recv_b = b.irecv(GateId(0), 0).expect("irecv");
    let mut passes = 0;
    while !recv_b.is_complete() {
        a.progress();
        b.progress();
        passes += 1;
        assert!(passes < MAX_PASSES, "ping never arrived");
    }
    let data = recv_b.take_data().expect("payload");
    let echo = b.isend(GateId(0), 0, data).expect("echo isend");
    let recv_a = a.irecv(GateId(0), 0).expect("irecv");
    while !recv_a.is_complete() {
        b.progress();
        a.progress();
        passes += 1;
        assert!(passes < MAX_PASSES, "pong never arrived");
    }
    // Local completions follow from the progression above.
    debug_assert!(send.is_complete());
    debug_assert!(echo.is_complete());
    let _ = recv_a.take_data();
}

/// The small-message sizes the figures sweep (subset for benches).
pub fn bench_sizes() -> [usize; 3] {
    [4, 256, 2048]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_polled_roundtrip_all_modes() {
        for mode in LockingMode::ALL {
            let (a, b) = build_ideal_pair(mode);
            let payload = Bytes::from_static(b"co-polled");
            for _ in 0..10 {
                co_polled_roundtrip(&a, &b, &payload);
            }
            assert_eq!(a.stats().sends_posted.get(), 10);
            assert_eq!(b.stats().recvs_posted.get(), 10);
        }
    }

    #[test]
    fn co_polled_over_wire_pair() {
        let (a, b) = build_wire_pair(LockingMode::Fine, WireModel::ideal());
        co_polled_roundtrip(&a, &b, &Bytes::from(vec![7u8; 2048]));
    }
}
