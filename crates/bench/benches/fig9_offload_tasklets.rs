//! Figure 9 — impact of tasklets on deferred message submission.
//!
//! Measures the *submission path* of each offload mode on the real stack:
//! `isend` with inline submission runs the strategy and doorbell on the
//! caller; idle-core mode pays one queue push; tasklet mode pays the
//! scheduling state machine and runner wakeup. The full overlap pingpong
//! (with the 10 µs compute phase) is exercised at a reduced iteration
//! count.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nm_core::{CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{Driver, LoopbackDriver, WireModel};
use nm_progress::{OffloadMode, TaskletEngine};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

/// Benchmarks the `isend` submission path per offload mode: what the
/// application thread pays before it can start computing.
fn submission_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_submission_path");
    for mode in OffloadMode::ALL {
        let (da, db) = LoopbackDriver::pair(1024);
        let mut config = CoreConfig::default()
            .locking(LockingMode::Fine)
            .offload(mode);
        let mut _tasklets = None;
        if mode == OffloadMode::Tasklet {
            let engine = Arc::new(TaskletEngine::new(1, None));
            config = config.tasklet_engine(Arc::clone(&engine));
            _tasklets = Some(engine);
        }
        let a = CoreBuilder::new(config)
            .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
            .build();
        let b = CoreBuilder::new(CoreConfig::default())
            .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
            .build();

        let payload = Bytes::from(vec![0u8; 2048]);
        g.bench_function(
            BenchmarkId::new("isend_to_delivery", mode.label()),
            |bench| {
                bench.iter(|| {
                    // One message end to end: the deferred-submission path
                    // (queue push, tasklet state machine + runner wakeup)
                    // rides the measured interval.
                    let r = b.irecv(GateId(0), 0).expect("irecv");
                    let s = a.isend(GateId(0), 0, payload.clone()).expect("isend");
                    while !r.is_complete() {
                        // The measuring thread doubles as the idle core for
                        // IdleCore mode; tasklet mode is drained by its
                        // runner thread.
                        a.drain_offload();
                        a.progress();
                        b.progress();
                    }
                    criterion::black_box((s, r.take_data()))
                });
            },
        );
    }
    g.finish();
}

/// The full overlap pingpong at one size per mode (reduced iterations).
fn overlap_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_overlap_pingpong");
    g.sample_size(10);
    for mode in OffloadMode::ALL {
        g.bench_function(BenchmarkId::new("overlap_8K", mode.label()), |bench| {
            bench.iter_custom(|iters| {
                let opts = nm_bench::overlap::OverlapOpts {
                    offload: mode,
                    wire: WireModel::ideal(),
                    compute: Duration::from_micros(10),
                    iters: iters.clamp(1, 30) as usize,
                    warmup: 1,
                };
                let stats = nm_bench::overlap::overlap_latency(&opts, 8192);
                // Total time represented by the measured iterations,
                // normalized back to the requested count.
                Duration::from_nanos((stats.mean_ns() * iters as f64) as u64)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = submission_path, overlap_pingpong
}
criterion_main!(benches);
