//! Figure 6 — impact of PIOMan on latency.
//!
//! Same co-polled pingpong as Fig 3, but the polling goes through the
//! progression engine's registry (list + lock per pass); the delta vs the
//! direct curves is the paper's ~200 ns.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nm_benches::{bench_sizes, build_ideal_pair};
use nm_core::{CommCore, GateId, LockingMode};
use nm_progress::ProgressEngine;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

/// Co-polled roundtrip where all progression goes through `engine`.
fn engine_roundtrip(
    a: &Arc<CommCore>,
    b: &Arc<CommCore>,
    engine: &Arc<ProgressEngine>,
    payload: &Bytes,
) {
    let _send = a.isend(GateId(0), 0, payload.clone()).expect("isend");
    let recv_b = b.irecv(GateId(0), 0).expect("irecv");
    while !recv_b.is_complete() {
        engine.poll_all();
    }
    let data = recv_b.take_data().expect("payload");
    let _echo = b.isend(GateId(0), 0, data).expect("echo");
    let recv_a = a.irecv(GateId(0), 0).expect("irecv");
    while !recv_a.is_complete() {
        engine.poll_all();
    }
    let _ = recv_a.take_data();
}

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_pioman_overhead");
    for mode in [LockingMode::Coarse, LockingMode::Fine] {
        // Through the engine.
        let (a, b) = build_ideal_pair(mode);
        let engine = Arc::new(ProgressEngine::new());
        engine.register(Arc::clone(&a) as _);
        engine.register(Arc::clone(&b) as _);
        for size in bench_sizes() {
            let payload = Bytes::from(vec![0u8; size]);
            g.bench_with_input(
                BenchmarkId::new(format!("pioman-{}", mode.label()), size),
                &size,
                |bench, _| bench.iter(|| engine_roundtrip(&a, &b, &engine, &payload)),
            );
        }
        // Direct polling reference.
        let (a2, b2) = build_ideal_pair(mode);
        for size in bench_sizes() {
            let payload = Bytes::from(vec![0u8; size]);
            g.bench_with_input(
                BenchmarkId::new(format!("direct-{}", mode.label()), size),
                &size,
                |bench, _| bench.iter(|| nm_benches::co_polled_roundtrip(&a2, &b2, &payload)),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig6
}
criterion_main!(benches);
