//! Cost of the always-on metrics layer (`nm-metrics`).
//!
//! The layer's contract is one relaxed atomic add — or one log-linear
//! histogram record — per operation, ≤ 25 ns on the reference host in
//! release mode (docs/METRICS.md). These benches measure each record
//! primitive through a pre-resolved handle (the cold registry lookup is
//! benched separately so its cost is visible, not hidden in the hot
//! numbers), plus the end-to-end snapshot/render path.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

fn record_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_record");
    let hist = nm_metrics::metrics().histogram("bench.overhead.hist");
    hist.record(0); // warm this thread's stripe
    let mut v = 0u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            // Vary the value so the bucket computation spans the linear
            // and log-linear ranges rather than hitting one hot bucket.
            v = v.wrapping_add(977);
            hist.record(black_box(v % 65_536));
        })
    });
    let counter = nm_metrics::metrics().counter("bench.overhead.counter");
    g.bench_function("counter_incr", |b| b.iter(|| counter.incr()));
    let gauge = nm_metrics::metrics().gauge("bench.overhead.gauge");
    g.bench_function("gauge_set", |b| {
        b.iter(|| {
            v = v.wrapping_add(1);
            gauge.set(black_box(v as i64));
        })
    });
    let timer_hist = nm_metrics::metrics().histogram("bench.overhead.timer");
    g.bench_function("hist_timer_drop", |b| {
        b.iter(|| {
            let _t = timer_hist.timer();
        })
    });
    g.finish();
}

fn cold_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_cold");
    // Repeated lookup of an existing metric: the cost callers pay if
    // they *don't* cache the handle (why the `global_hist!` pattern
    // caches it in a OnceLock).
    g.bench_function("registry_lookup", |b| {
        b.iter(|| nm_metrics::metrics().histogram(black_box("bench.overhead.hist")))
    });
    let hist = nm_metrics::metrics().histogram("bench.overhead.snapshot");
    for i in 0..10_000u64 {
        hist.record(i);
    }
    g.bench_function("histogram_snapshot", |b| b.iter(|| hist.snapshot()));
    g.bench_function("openmetrics_render", |b| {
        b.iter(|| nm_metrics::export::to_openmetrics(&nm_metrics::metrics().snapshot()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = record_path, cold_paths
}
criterion_main!(benches);
