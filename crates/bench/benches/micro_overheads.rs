//! "Table 1": microbenchmarks of the primitives whose costs the paper
//! quotes in-text — lock acquire/release cycles (70 ns), the progression
//! engine's pass (200 ns), blocking context switches (750 ns) — plus
//! ablations (ticket lock, OS mutex, tasklet scheduling).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use nm_progress::{PollOutcome, ProgressEngine, Tasklet, TaskletEngine};
use nm_sync::{CompletionFlag, Semaphore, SpinLock, TicketLock, WaitStrategy};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

fn lock_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_cycle");
    let spin = SpinLock::new(0u64);
    g.bench_function("spinlock", |b| {
        b.iter(|| {
            *spin.lock() += 1;
        })
    });
    let ticket = TicketLock::new(0u64);
    g.bench_function("ticket_lock", |b| {
        b.iter(|| {
            *ticket.lock() += 1;
        })
    });
    let mutex = parking_lot::Mutex::new(0u64);
    g.bench_function("parking_lot_mutex", |b| {
        b.iter(|| {
            *mutex.lock() += 1;
        })
    });
    let std_mutex = std::sync::Mutex::new(0u64);
    g.bench_function("std_mutex", |b| {
        b.iter(|| {
            *std_mutex.lock().unwrap() += 1;
        })
    });
    g.finish();
}

fn engine_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("pioman_pass");
    let engine = ProgressEngine::new();
    engine.register(Arc::new(|| PollOutcome::Idle));
    g.bench_function("engine_one_idle_source", |b| b.iter(|| engine.poll_all()));
    let engine8 = ProgressEngine::new();
    for _ in 0..8 {
        engine8.register(Arc::new(|| PollOutcome::Idle));
    }
    g.bench_function("engine_eight_idle_sources", |b| {
        b.iter(|| engine8.poll_all())
    });
    g.finish();
}

fn flag_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("completion_flag");
    let flag = CompletionFlag::new();
    g.bench_function("signal_wait_reset", |b| {
        b.iter(|| {
            flag.signal();
            flag.wait(WaitStrategy::Busy);
            flag.reset();
        })
    });
    g.finish();
}

fn context_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_switch");
    g.bench_function("semaphore_hop", |b| {
        b.iter_custom(|iters| {
            let hops = iters.max(1);
            let ping = Arc::new(Semaphore::new(0));
            let pong = Arc::new(Semaphore::new(0));
            let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
            let peer = std::thread::spawn(move || {
                for _ in 0..hops {
                    p2.acquire();
                    q2.release();
                }
            });
            let t0 = Instant::now();
            for _ in 0..hops {
                ping.release();
                pong.acquire();
            }
            let elapsed = t0.elapsed();
            peer.join().unwrap();
            // Two switches per hop; report one.
            elapsed / 2
        })
    });
    g.finish();
}

fn tasklet_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("offload");
    g.bench_function("tasklet_schedule_to_done", |b| {
        let engine = TaskletEngine::new(1, None);
        let flag = Arc::new(CompletionFlag::new());
        let f2 = Arc::clone(&flag);
        let t = Tasklet::new("bench", move || f2.signal());
        b.iter(|| {
            flag.reset();
            engine.schedule(&t);
            flag.wait(WaitStrategy::Busy);
        });
    });
    g.bench_function("idle_queue_push_drain", |b| {
        let off = nm_progress::Offloader::idle_core();
        b.iter(|| {
            off.submit(|| {});
            off.drain()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = lock_cycles, engine_pass, flag_ops, context_switch, tasklet_schedule
}
criterion_main!(benches);
