//! Figure 7 — impact of semaphores on latency.
//!
//! Measures the wake-up path of each waiting strategy on a real
//! completion flag: a producer thread signals, the consumer waits with
//! busy / passive / fixed-spin strategies. Passive pays the context
//! switch the paper measures at ~750 ns; fixed spin avoids it whenever
//! the event lands within the window.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use nm_sync::{CompletionFlag, Semaphore, WaitStrategy};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

/// `hops` handoffs through a flag pair with the given waiting strategy;
/// returns total elapsed time.
fn flag_hops(strategy: WaitStrategy, hops: u64) -> Duration {
    let ping = Arc::new(CompletionFlag::new());
    let pong = Arc::new(CompletionFlag::new());
    let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
    let peer = std::thread::spawn(move || {
        for _ in 0..hops {
            p2.wait(strategy);
            p2.reset();
            q2.signal();
        }
    });
    let t0 = Instant::now();
    for _ in 0..hops {
        ping.signal();
        pong.wait(strategy);
        pong.reset();
    }
    let elapsed = t0.elapsed();
    peer.join().expect("peer");
    elapsed
}

fn waiting_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_waiting_strategies");
    for (name, strategy) in [
        ("active", WaitStrategy::Busy),
        ("passive", WaitStrategy::Passive),
        ("fixed_spin_5us", WaitStrategy::fixed_spin_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let hops = iters.clamp(1, 2_000);
                let reps = iters.div_ceil(hops);
                let mut total = Duration::ZERO;
                for _ in 0..reps {
                    total += flag_hops(strategy, hops);
                }
                total.mul_f64(iters as f64 / (hops * reps) as f64)
            })
        });
    }
    g.finish();
}

fn semaphore_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_semaphore_acquire");
    for (name, strategy) in [
        ("passive", WaitStrategy::Passive),
        ("fixed_spin_5us", WaitStrategy::fixed_spin_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let hops = iters.clamp(1, 2_000);
                let reps = iters.div_ceil(hops);
                let mut total = Duration::ZERO;
                for _ in 0..reps {
                    let ping = Arc::new(Semaphore::new(0));
                    let pong = Arc::new(Semaphore::new(0));
                    let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
                    let peer = std::thread::spawn(move || {
                        for _ in 0..hops {
                            p2.acquire_with(strategy);
                            q2.release();
                        }
                    });
                    let t0 = Instant::now();
                    for _ in 0..hops {
                        ping.release();
                        pong.acquire_with(strategy);
                    }
                    total += t0.elapsed();
                    peer.join().expect("peer");
                }
                total.mul_f64(iters as f64 / (hops * reps) as f64)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = waiting_strategies, semaphore_strategies
}
criterion_main!(benches);
