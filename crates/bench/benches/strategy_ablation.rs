//! Ablation of the optimization layer's scheduling strategies.
//!
//! DESIGN.md calls out the aggregation strategy as a design choice to
//! ablate: under bursty many-small-message traffic, coalescing entries
//! into shared packets (NewMadeleine's trademark optimization) reduces
//! per-packet overheads; control-first reordering additionally keeps
//! rendezvous handshakes off the queueing critical path.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nm_core::{CoreBuilder, CoreConfig, GateId, LockingMode, StrategyKind};
use nm_fabric::{Driver, LoopbackDriver};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

/// Sends a burst of `n` small messages and drives them to delivery.
fn burst(strategy: StrategyKind, n: usize) {
    // Depth-1 driver: bursts pile up in the collect queue, giving the
    // strategy something to arrange.
    let (da, db) = LoopbackDriver::pair(1);
    let config = CoreConfig::default()
        .locking(LockingMode::Fine)
        .strategy(strategy);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    let payload =
        Bytes::from_static(b"burst-payload-64-bytes.........................................");
    let recvs: Vec<_> = (0..n)
        .map(|i| b.irecv(GateId(0), i as u64).expect("irecv"))
        .collect();
    let sends: Vec<_> = (0..n)
        .map(|i| {
            a.isend(GateId(0), i as u64, payload.clone())
                .expect("isend")
        })
        .collect();
    while recvs.iter().any(|r| !r.is_complete()) {
        a.progress();
        b.progress();
    }
    for s in sends {
        assert!(s.is_complete());
    }
    for r in recvs {
        let _ = r.take_data();
    }
}

fn strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_ablation");
    for strategy in [
        StrategyKind::Fifo,
        StrategyKind::Aggregate,
        StrategyKind::ControlFirst,
    ] {
        for n in [8usize, 64] {
            g.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), n),
                &n,
                |bench, &n| bench.iter(|| burst(strategy, n)),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = strategies
}
criterion_main!(benches);
