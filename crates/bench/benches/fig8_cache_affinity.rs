//! Figure 8 — impact of cache affinity on a quad-core chip.
//!
//! Real mode needs ≥ 2 bindable cores: the application thread is bound to
//! core 0 and a progression thread to each representative core; the
//! measured quantity is the completion-handoff latency (flag written by
//! the poller, observed by the app). On hosts without enough cores the
//! bench falls back to measuring the deterministic simulator's figure
//! generation (still exercising the code path end to end).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nm_sim::{experiments as sim, SimCosts};
use nm_sync::{CompletionFlag, WaitStrategy};
use nm_topo::{affinity, Topology};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

/// `hops` flag handoffs between a thread on `core_a` and one on `core_b`.
fn cross_core_hops(core_a: usize, core_b: usize, hops: u64) -> Duration {
    let ping = Arc::new(CompletionFlag::new());
    let pong = Arc::new(CompletionFlag::new());
    let stop = Arc::new(AtomicBool::new(false));
    let (p2, q2, s2) = (Arc::clone(&ping), Arc::clone(&pong), Arc::clone(&stop));
    let peer = std::thread::spawn(move || {
        let _ = affinity::bind_current_thread(core_b);
        while !s2.load(Ordering::Acquire) {
            if p2.wait_timeout(WaitStrategy::Busy, Duration::from_millis(10)) {
                p2.reset();
                q2.signal();
            }
        }
    });
    let _ = affinity::bind_current_thread(core_a);
    let t0 = Instant::now();
    for _ in 0..hops {
        ping.signal();
        pong.wait(WaitStrategy::Busy);
        pong.reset();
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Release);
    peer.join().expect("peer");
    elapsed
}

fn fig8(c: &mut Criterion) {
    let host = Topology::discover();
    let mut g = c.benchmark_group("fig8_cache_affinity");

    if affinity::is_supported() && host.num_cores() >= 2 {
        // Real cross-core handoff per distance class available on this
        // host.
        for (dist, core) in host.representative_cores(0) {
            g.bench_with_input(
                BenchmarkId::new("real_handoff", format!("{dist:?}-cpu{core}")),
                &core,
                |b, &core| {
                    b.iter_custom(|iters| {
                        let hops = iters.clamp(1, 5_000);
                        let reps = iters.div_ceil(hops);
                        let mut total = Duration::ZERO;
                        for _ in 0..reps {
                            total += cross_core_hops(0, core, hops);
                        }
                        total.mul_f64(iters as f64 / (hops * reps) as f64)
                    })
                },
            );
        }
    }

    // Deterministic simulator per placement (always available).
    let topo = Topology::xeon_x5460();
    // One representative placement is enough for the sim timing; the
    // series itself contains every placement.
    if let Some((dist, core)) = topo.representative_cores(0).into_iter().next() {
        g.bench_with_input(
            BenchmarkId::new("sim_pingpong", format!("{dist:?}-cpu{core}")),
            &core,
            |b, &_core| {
                b.iter(|| {
                    let s = sim::fig8_cache_affinity(SimCosts::paper(), &topo, &[64]);
                    criterion::black_box(s)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig8
}
criterion_main!(benches);
