//! Figure 5 — two threads perform pingpongs concurrently.
//!
//! Real threads over a zero-latency wire; coarse locking serializes the
//! two flows while fine-grain locking lets them proceed in parallel.
//! Iteration counts are kept small: on a single-CPU host every handoff
//! costs a scheduler preemption.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nm_benches::build_ideal_pair;
use nm_core::{GateId, LockingMode};
use nm_sync::WaitStrategy;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

/// Runs `rounds` roundtrips on each of two concurrent flows; returns the
/// elapsed wall time (both flows included).
fn concurrent_rounds(mode: LockingMode, size: usize, rounds: u64) -> Duration {
    let (a, b) = build_ideal_pair(mode);
    let mut echoes = Vec::new();
    for tag in 0..2u64 {
        let b = Arc::clone(&b);
        echoes.push(std::thread::spawn(move || {
            for _ in 0..rounds {
                let r = b.irecv(GateId(0), tag).expect("irecv");
                b.wait(&r, WaitStrategy::Busy).unwrap();
                let data = r.take_data().expect("payload");
                let s = b.isend(GateId(0), tag, data).expect("isend");
                b.wait(&s, WaitStrategy::Busy).unwrap();
            }
        }));
    }
    let t0 = Instant::now();
    let mut pingers = Vec::new();
    for tag in 0..2u64 {
        let a = Arc::clone(&a);
        pingers.push(std::thread::spawn(move || {
            let payload = Bytes::from(vec![tag as u8; size]);
            for _ in 0..rounds {
                let s = a.isend(GateId(0), tag, payload.clone()).expect("isend");
                a.wait(&s, WaitStrategy::Busy).unwrap();
                let r = a.irecv(GateId(0), tag).expect("irecv");
                a.wait(&r, WaitStrategy::Busy).unwrap();
            }
        }));
    }
    for h in pingers {
        h.join().expect("pinger");
    }
    let elapsed = t0.elapsed();
    for h in echoes {
        h.join().expect("echo");
    }
    elapsed
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_concurrent_pingpong");
    for mode in [LockingMode::Fine, LockingMode::Coarse] {
        g.bench_with_input(
            BenchmarkId::new(mode.label(), 256),
            &256usize,
            |bench, &size| {
                bench.iter_custom(|iters| {
                    let rounds = iters.clamp(1, 50);
                    let reps = iters.div_ceil(rounds);
                    let mut total = Duration::ZERO;
                    for _ in 0..reps {
                        total += concurrent_rounds(mode, size, rounds);
                    }
                    // Normalize to the requested iteration count.
                    total.mul_f64(iters as f64 / (rounds * reps) as f64)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig5
}
criterion_main!(benches);
