//! Figure 3 — impact of locking on latency.
//!
//! Co-polled pingpong over an ideal wire: measured time is the real
//! software path of one roundtrip, so the deltas between locking modes
//! are the paper's constants (coarse ≈ +140 ns, fine ≈ +230 ns per
//! one-way on their testbed).

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nm_benches::{bench_sizes, build_ideal_pair, co_polled_roundtrip};
use nm_core::LockingMode;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_locking_latency");
    for mode in LockingMode::ALL {
        let (a, b) = build_ideal_pair(mode);
        for size in bench_sizes() {
            let payload = Bytes::from(vec![0u8; size]);
            g.bench_with_input(BenchmarkId::new(mode.label(), size), &size, |bench, _| {
                bench.iter(|| co_polled_roundtrip(&a, &b, &payload));
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig3
}
criterion_main!(benches);
