//! The communication core: collect, optimization and transfer layers.
//!
//! Data path (paper Fig 1):
//!
//! ```text
//!  application ── isend/irecv ──▶ collect layer (per-gate submit lists)
//!                                     │   when a NIC is idle
//!                                     ▼
//!                             optimization layer (Strategy:
//!                             aggregation, control-first reordering)
//!                                     │   arranged packet
//!                                     ▼
//!                             transfer layer (per-driver lists)
//!                                     │
//!                                     ▼
//!                                NIC drivers (polling)
//! ```
//!
//! Small messages travel eagerly inside one packet; large ones use a
//! rendezvous (RTS → CTS → chunked DATA, chunks distributed round-robin
//! across rails — the multirail optimization).

use std::sync::{Arc, Weak};

use bytes::{Bytes, BytesMut};

use nm_progress::{OffloadMode, Offloader, PollOutcome, PollSource};
use nm_sync::WaitStrategy;

use crate::completion::Completion;
use crate::config::CoreConfig;
use crate::error::CommError;
use crate::gate::{
    Gate, GateId, PendingRts, PostedRecv, RdvRecv, RdvSend, RdvSendDone, TagPattern, UnexpectedMsg,
    XferItem,
};
use crate::locking::{LockPolicy, SectionKind};
use crate::request::{Request, RequestKind};
use crate::stats::CoreStats;
use crate::strategy::{SendItem, SendItemKind, Strategy};
use crate::wire::{decode_packet, encode_packet, Entry, ENTRY_HEADER, PACKET_HEADER};

/// Builder for a [`CommCore`]: configure, add gates, build.
pub struct CoreBuilder {
    config: CoreConfig,
    gates: Vec<Vec<Arc<dyn nm_fabric::Driver>>>,
}

impl CoreBuilder {
    /// Starts a builder with the given configuration.
    pub fn new(config: CoreConfig) -> Self {
        CoreBuilder {
            config,
            gates: Vec::new(),
        }
    }

    /// Adds a gate (peer connection) with one driver per rail. Gate ids
    /// are assigned in call order, starting at 0.
    pub fn add_gate(mut self, drivers: Vec<Arc<dyn nm_fabric::Driver>>) -> Self {
        assert!(!drivers.is_empty(), "a gate needs at least one rail");
        self.gates.push(drivers);
        self
    }

    /// Builds the core.
    ///
    /// # Panics
    /// Panics on inconsistent configuration: no gates, an eager threshold
    /// that cannot fit any rail's MTU, a deferred offload mode combined
    /// with single-thread locking, or tasklet offload without an engine.
    pub fn build(self) -> Arc<CommCore> {
        assert!(!self.gates.is_empty(), "at least one gate required");
        if self.config.offload != OffloadMode::Inline {
            assert!(
                self.config.locking.thread_safe(),
                "deferred offload runs on another thread; single-thread locking cannot be used"
            );
        }
        let offloader = Arc::new(Offloader::for_mode(
            self.config.offload,
            self.config.tasklet_engine.clone(),
        ));

        let mut gates = Vec::with_capacity(self.gates.len());
        let mut driver_base = 0;
        for (id, drivers) in self.gates.into_iter().enumerate() {
            let gate = Gate::new(GateId(id), drivers, driver_base);
            let needed = self.config.eager_threshold + ENTRY_HEADER + PACKET_HEADER;
            assert!(
                gate.min_mtu() >= needed,
                "eager threshold {} does not fit rail MTU {} of gate {}",
                self.config.eager_threshold,
                gate.min_mtu(),
                id
            );
            driver_base += gate.num_rails();
            gates.push(gate);
        }
        let policy = LockPolicy::new(self.config.locking, gates.len(), driver_base);
        let strategy = self.config.strategy.build();

        Arc::new_cyclic(|weak| CommCore {
            config: self.config,
            policy,
            gates,
            strategy,
            offloader,
            stats: CoreStats::default(),
            self_weak: weak.clone(),
        })
    }
}

/// The NewMadeleine-style communication core.
///
/// All methods take `&self` and are safe for concurrent callers under the
/// `Coarse` and `Fine` locking modes; `SingleThread` mode enforces its
/// single-caller restriction at runtime.
pub struct CommCore {
    config: CoreConfig,
    policy: LockPolicy,
    gates: Vec<Gate>,
    strategy: Box<dyn Strategy>,
    offloader: Arc<Offloader>,
    stats: CoreStats,
    self_weak: Weak<CommCore>,
}

impl CommCore {
    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The lock policy (lock statistics for calibration benches).
    pub fn lock_policy(&self) -> &LockPolicy {
        &self.policy
    }

    /// The submission offloader. In `IdleCore` mode, register this (or the
    /// core itself plus periodic [`CommCore::drain_offload`] calls) with a
    /// progression engine so deferred submissions execute.
    pub fn offloader(&self) -> &Arc<Offloader> {
        &self.offloader
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Posts a non-blocking send of `data` to `gate` with `tag`.
    ///
    /// Messages up to the eager threshold complete locally once injected;
    /// larger messages complete when the last rendezvous chunk is
    /// injected.
    pub fn isend(&self, gate: GateId, tag: u64, data: Bytes) -> Result<Request, CommError> {
        self.isend_with(gate, tag, data, Completion::Flag)
    }

    /// Like [`CommCore::isend`], delivering completion through
    /// `completion` (queue push, handler call, or async waker wake-up)
    /// instead of only signalling the request's flag.
    pub fn isend_with(
        &self,
        gate: GateId,
        tag: u64,
        data: Bytes,
        completion: Completion,
    ) -> Result<Request, CommError> {
        let _t = crate::metrics::send_hist().timer();
        let g = self.gate(gate)?;
        if data.len() > u32::MAX as usize {
            return Err(CommError::MessageTooLarge { len: data.len() });
        }
        let req = Request::new_with(RequestKind::Send, completion);
        self.stats.sends_posted.incr();
        nm_trace::trace_event!(SubmitBegin, gate.0, data.len());
        {
            let api = self.policy.enter_api();
            let item = if data.len() <= self.config.eager_threshold {
                self.stats.eager_sent.incr();
                SendItem {
                    tag,
                    seq: g.alloc_eager_seq(),
                    kind: SendItemKind::Eager(data),
                    req: Some(req.clone()),
                }
            } else {
                self.stats.rdv_started.incr();
                let seq = g.alloc_seq();
                let total = data.len() as u32;
                let rdv = RdvSend {
                    tag,
                    seq,
                    data,
                    req: req.clone(),
                };
                let s = self.policy.enter(SectionKind::CollectTx(gate.0));
                g.tx.with(&s, |tx| tx.rdv_out_insert(rdv));
                drop(s);
                SendItem {
                    tag,
                    seq,
                    kind: SendItemKind::Rts { total },
                    req: None,
                }
            };
            let s = self.policy.enter(SectionKind::CollectTx(gate.0));
            let depth = g.tx.with(&s, |tx| {
                tx.queue.push_back(item);
                tx.queue.len()
            });
            drop(s);
            nm_trace::trace_event!(QueueDepth, gate.0, depth);
            // Release between submission and transmission, exactly like
            // the paper's coarse mode ("the spinlock is held and released
            // twice: once for submitting ..., once to transmit").
            drop(api);
        }
        nm_trace::trace_event!(SubmitEnd, gate.0);
        // Submission: inline, or deferred to an idle core / tasklet
        // (§4.2) — the expensive part (strategy, encode, doorbell).
        if self.config.offload == OffloadMode::Inline {
            let api = self.policy.enter_api();
            self.pump_gate(g);
            drop(api);
        }
        if self.config.offload != OffloadMode::Inline {
            let weak = self.self_weak.clone();
            self.offloader.submit(move || {
                if let Some(core) = weak.upgrade() {
                    core.pump(gate);
                }
            });
        }
        Ok(req)
    }

    /// Posts a non-blocking receive for `tag` on `gate`.
    ///
    /// On completion the request carries the payload
    /// ([`Request::take_data`]) and the matched tag
    /// ([`Request::matched_tag`]). Matching is FIFO per tag.
    pub fn irecv(&self, gate: GateId, tag: u64) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Exact(tag), Completion::Flag)
    }

    /// Like [`CommCore::irecv`], delivering completion through
    /// `completion` instead of only signalling the request's flag.
    pub fn irecv_with(
        &self,
        gate: GateId,
        tag: u64,
        completion: Completion,
    ) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Exact(tag), completion)
    }

    /// Posts a wildcard receive (`MPI_ANY_TAG`): matches the earliest
    /// message of any tag; the matched tag is reported by
    /// [`Request::matched_tag`].
    ///
    /// Note: wildcards match *any* tag, including the reserved internal
    /// tag space used by `nm-mpi`'s collectives — do not mix wildcard
    /// receives with concurrent collectives on the same gate.
    pub fn irecv_any(&self, gate: GateId) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Any, Completion::Flag)
    }

    /// Like [`CommCore::irecv_any`], with a [`Completion`] object.
    pub fn irecv_any_with(
        &self,
        gate: GateId,
        completion: Completion,
    ) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Any, completion)
    }

    fn irecv_matching(
        &self,
        gate: GateId,
        pattern: TagPattern,
        completion: Completion,
    ) -> Result<Request, CommError> {
        let _t = crate::metrics::recv_hist().timer();
        let g = self.gate(gate)?;
        let req = Request::new_with(RequestKind::Recv, completion);
        self.stats.recvs_posted.incr();
        enum Then {
            Nothing,
            Complete(u64, Bytes),
            PumpCts(u64, u32),
        }
        let mut then = Then::Nothing;
        {
            let api = self.policy.enter_api();
            {
                let s = self.policy.enter(SectionKind::CollectRx(gate.0));
                g.rx.with(&s, |rx| {
                    if let Some(msg) = rx.take_unexpected_matching(pattern) {
                        then = Then::Complete(msg.tag, msg.data);
                    } else if let Some(rts) = rx.take_pending_rts(pattern) {
                        rx.rdv_in_insert(RdvRecv {
                            tag: rts.tag,
                            seq: rts.seq,
                            total: rts.total,
                            received: 0,
                            buf: BytesMut::zeroed(rts.total as usize),
                            req: req.clone(),
                        });
                        self.stats.rdv_accepted.incr();
                        then = Then::PumpCts(rts.tag, rts.seq);
                    } else {
                        rx.post(PostedRecv {
                            pattern,
                            req: req.clone(),
                        });
                    }
                });
            }
            // The CTS rides the tx shard; rx and tx sections are never
            // held together (no nesting in the sharded lock order).
            if let &Then::PumpCts(tag, seq) = &then {
                let s = self.policy.enter(SectionKind::CollectTx(gate.0));
                g.tx.with(&s, |tx| {
                    tx.queue.push_back(SendItem {
                        tag,
                        seq,
                        kind: SendItemKind::Cts,
                        req: None,
                    });
                });
                drop(s);
                self.pump_gate(g);
            }
            drop(api);
        }
        if let Then::Complete(tag, data) = then {
            req.complete_with_tagged_data(tag, data);
        }
        nm_trace::trace_event!(RecvPosted, gate.0);
        Ok(req)
    }

    /// One progression pass: polls every rail of every gate, dispatches
    /// inbound packets, and pumps outbound queues. Returns the number of
    /// wire events handled.
    pub fn progress(&self) -> usize {
        let api = self.policy.enter_api();
        let events = self.progress_body();
        drop(api);
        events
    }

    /// The progression pass itself; the caller holds the API guard.
    fn progress_body(&self) -> usize {
        self.stats.progress_passes.incr();
        let mut events = 0;
        for g in &self.gates {
            events += self.poll_gate(g);
            events += self.pump_gate(g);
        }
        nm_trace::trace_event!(ProgressPass, events);
        events
    }

    /// Runs deferred (offloaded) submissions on the calling thread.
    ///
    /// Intended for the progression engine / idle cores; calling it from
    /// the application thread is correct but defeats the offload.
    pub fn drain_offload(&self) -> usize {
        self.offloader.drain()
    }

    /// Waits for a request, polling this core during spin phases.
    ///
    /// The spin phase runs *inside* the library: in coarse mode the
    /// library-wide lock is held across the whole wait (Fig 2) — which is
    /// why two busy-waiting threads serialize in the paper's Fig 5 — and
    /// released before any blocking, per the paper's deadlock-avoidance
    /// rule. With [`WaitStrategy::Passive`] the caller never polls: a
    /// progression thread (or scheduler hooks) must be driving
    /// [`CommCore::progress`].
    ///
    /// Returns the operation's outcome: `Err` consumes the completion
    /// error (substrate failure, protocol violation) exactly as
    /// [`Request::take_error`] would — the two layers (`nm-core`,
    /// `nm-mpi`) share one error story.
    pub fn wait(&self, req: &Request, strategy: WaitStrategy) -> Result<(), CommError> {
        let _t = crate::metrics::wait_hist().timer();
        match strategy.spin_budget() {
            // Busy: poll under the API guard until complete.
            None => {
                let api = self.policy.enter_api();
                while !req.is_complete() {
                    self.progress_body();
                }
                drop(api);
            }
            // Fixed spin: poll under the guard for the window, then
            // release it and block.
            Some(budget) if !budget.is_zero() => {
                let deadline = std::time::Instant::now() + budget;
                {
                    let api = self.policy.enter_api();
                    while !req.is_complete() && std::time::Instant::now() < deadline {
                        self.progress_body();
                    }
                    drop(api);
                }
                if !req.is_complete() {
                    req.flag().wait(WaitStrategy::Passive);
                }
            }
            // Passive: block immediately.
            _ => req.flag().wait(WaitStrategy::Passive),
        }
        match req.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Snapshot of the queue depths across all layers (diagnostics).
    pub fn pending(&self) -> PendingCounts {
        let api = self.policy.enter_api();
        let mut counts = PendingCounts::default();
        for g in &self.gates {
            let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
            g.tx.with(&s, |tx| {
                counts.collect_items += tx.queue.len();
                counts.rdv_awaiting_cts += tx.rdv_out.len();
            });
            drop(s);
            let s = self.policy.enter(SectionKind::CollectRx(g.id.0));
            g.rx.with(&s, |rx| {
                counts.posted_recvs += rx.posted_len();
                counts.unexpected += rx.unexpected_len();
                counts.pending_rts += rx.pending_rts_len();
                counts.rdv_reassembling += rx.rdv_in_len();
                counts.eager_out_of_order += rx.eager_ooo_len();
            });
            drop(s);
            for rail in 0..g.num_rails() {
                let s = self.policy.enter(SectionKind::Driver(g.driver_base + rail));
                g.xfer[rail].with(&s, |q| counts.xfer_items += q.len());
                drop(s);
            }
        }
        drop(api);
        counts
    }

    /// Drives progression until a full pass makes no progress and every
    /// internal send queue is empty. Returns the number of passes run.
    ///
    /// Inbound completion still depends on the peer; this flushes the
    /// *local* side (collect + transfer lists drained into the NICs).
    pub fn flush_local(&self) -> usize {
        let mut passes = 0;
        loop {
            let events = self.progress();
            passes += 1;
            let p = self.pending();
            if events == 0 && p.collect_items == 0 && p.xfer_items == 0 {
                return passes;
            }
        }
    }

    /// Waits for every request in `reqs`.
    ///
    /// Every request is waited to completion even on failure; the first
    /// error encountered (in `reqs` order) is returned.
    pub fn wait_all(&self, reqs: &[Request], strategy: WaitStrategy) -> Result<(), CommError> {
        let mut first_err = None;
        for r in reqs {
            if let Err(e) = self.wait(r, strategy) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Non-blocking completion test (`MPI_Test`): one progression pass,
    /// then reports whether the request has completed.
    pub fn test(&self, req: &Request) -> bool {
        if req.is_complete() {
            return true;
        }
        self.progress();
        req.is_complete()
    }

    /// Blocking send: `isend` + wait.
    pub fn send(
        &self,
        gate: GateId,
        tag: u64,
        data: Bytes,
        strategy: WaitStrategy,
    ) -> Result<(), CommError> {
        let req = self.isend(gate, tag, data)?;
        self.wait(&req, strategy)
    }

    /// Blocking receive: `irecv` + wait; returns the payload.
    pub fn recv(&self, gate: GateId, tag: u64, strategy: WaitStrategy) -> Result<Bytes, CommError> {
        let req = self.irecv(gate, tag)?;
        self.wait(&req, strategy)?;
        Ok(req.take_data().expect("completed recv carries data"))
    }

    // ----- internal machinery -------------------------------------------

    fn gate(&self, gate: GateId) -> Result<&Gate, CommError> {
        self.gates.get(gate.0).ok_or(CommError::InvalidGate(gate.0))
    }

    /// Public pump entry for offloaded submissions.
    fn pump(&self, gate: GateId) {
        if let Ok(g) = self.gate(gate) {
            let api = self.policy.enter_api();
            self.pump_gate(g);
            drop(api);
        }
    }

    /// Polls one gate's rails and dispatches everything deliverable.
    fn poll_gate(&self, g: &Gate) -> usize {
        let mut events = 0;
        for rail in 0..g.num_rails() {
            for _ in 0..self.config.max_polls_per_pass {
                let pkt = {
                    let s = self.policy.enter(SectionKind::Driver(g.driver_base + rail));
                    let p = g.drivers[rail].poll();
                    drop(s);
                    p
                };
                match pkt {
                    Some(raw) => {
                        self.stats.packets_rx.incr();
                        events += 1;
                        self.dispatch(g, raw);
                    }
                    None => break,
                }
            }
        }
        events
    }

    /// Decodes one inbound packet and applies its entries.
    fn dispatch(&self, g: &Gate, raw: Bytes) {
        nm_trace::trace_event!(DispatchBegin, g.id.0, raw.len());
        let entries = match decode_packet(raw) {
            Ok(e) => e,
            Err(_) => {
                self.stats.wire_errors.incr();
                nm_trace::trace_event!(DispatchEnd, g.id.0);
                return;
            }
        };
        let mut after = Vec::new();
        // CTS traffic crosses from the rx shard to the tx shard; the two
        // sections are taken one after the other, never nested. Phase 1
        // (rx) records what phase 2 (tx) must do.
        let mut cts_out: Vec<(u64, u32)> = Vec::new();
        let mut cts_in: Vec<u32> = Vec::new();
        {
            let s = self.policy.enter(SectionKind::CollectRx(g.id.0));
            for entry in entries {
                match entry {
                    Entry::Eager { tag, seq, data } => g.rx.with(&s, |rx| {
                        if self.config.ordered_eager {
                            // Resequencer: release eager messages strictly
                            // in send order; park later ones.
                            if seq != rx.expected_eager {
                                rx.push_eager_ooo(UnexpectedMsg { tag, seq, data });
                                return;
                            }
                            self.deliver_eager(rx, tag, seq, data, &mut after);
                            rx.expected_eager = rx.expected_eager.wrapping_add(1);
                            // Drain any now-in-order parked messages.
                            while let Some(m) = rx.take_eager_ooo(rx.expected_eager) {
                                self.deliver_eager(rx, m.tag, m.seq, m.data, &mut after);
                                rx.expected_eager = rx.expected_eager.wrapping_add(1);
                            }
                        } else {
                            self.deliver_eager(rx, tag, seq, data, &mut after);
                        }
                    }),
                    Entry::Rts { tag, seq, total } => g.rx.with(&s, |rx| {
                        if let Some(p) = rx.take_posted(tag) {
                            rx.rdv_in_insert(RdvRecv {
                                tag,
                                seq,
                                total,
                                received: 0,
                                buf: BytesMut::zeroed(total as usize),
                                req: p.req,
                            });
                            self.stats.rdv_accepted.incr();
                            cts_out.push((tag, seq));
                        } else {
                            rx.push_pending_rts(PendingRts { tag, seq, total });
                        }
                    }),
                    Entry::Cts { tag: _, seq } => cts_in.push(seq),
                    Entry::Data {
                        tag,
                        seq,
                        offset,
                        data,
                    } => g.rx.with(&s, |rx| {
                        let Some(r) = rx.rdv_in_get_mut(seq) else {
                            self.stats.wire_errors.incr();
                            return;
                        };
                        if r.tag != tag {
                            self.stats.wire_errors.incr();
                            return;
                        }
                        let (start, end) = (offset as usize, offset as usize + data.len());
                        if end > r.buf.len() {
                            self.stats.wire_errors.incr();
                            return;
                        }
                        r.buf[start..end].copy_from_slice(&data);
                        r.received += data.len() as u32;
                        if r.received == r.total {
                            let done = rx.rdv_in_remove(seq).expect("reassembly just updated");
                            after.push(After::CompleteRecv(done.req, done.tag, done.buf.freeze()));
                        }
                    }),
                }
            }
        }
        let queued_cts = !cts_out.is_empty();
        if queued_cts || !cts_in.is_empty() {
            let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
            g.tx.with(&s, |tx| {
                for &(tag, seq) in &cts_out {
                    tx.queue.push_back(SendItem {
                        tag,
                        seq,
                        kind: SendItemKind::Cts,
                        req: None,
                    });
                }
                for seq in cts_in {
                    match tx.rdv_out_remove(seq) {
                        Some(rdv) => after.push(After::StartData(rdv)),
                        None => self.stats.wire_errors.incr(),
                    }
                }
            });
            drop(s);
        }
        for act in after {
            match act {
                After::CompleteRecv(req, tag, data) => req.complete_with_tagged_data(tag, data),
                After::StartData(rdv) => self.start_rdv_data(g, rdv),
            }
        }
        if queued_cts {
            self.pump_gate(g);
        }
        nm_trace::trace_event!(DispatchEnd, g.id.0);
    }

    /// Chunks an acknowledged rendezvous send and distributes the chunks
    /// round-robin across rails (multirail distribution).
    fn start_rdv_data(&self, g: &Gate, rdv: RdvSend) {
        let chunk = self.rdv_chunk_size(g);
        let total = rdv.data.len();
        let num_chunks = total.div_ceil(chunk);
        let done = Arc::new(RdvSendDone {
            remaining: std::sync::atomic::AtomicUsize::new(num_chunks),
            req: rdv.req,
        });
        // relaxed: round-robin cursor; any interleaving is a valid rail
        // choice, no data is published through it.
        let start_rail = g.rr_rail.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for i in 0..num_chunks {
            let offset = i * chunk;
            let end = (offset + chunk).min(total);
            let entry = Entry::Data {
                tag: rdv.tag,
                seq: rdv.seq,
                offset: offset as u32,
                data: rdv.data.slice(offset..end),
            };
            let packet = encode_packet(&[entry]);
            let rail = (start_rail + i) % g.num_rails();
            let s = self.policy.enter(SectionKind::Driver(g.driver_base + rail));
            g.xfer[rail].with(&s, |q| {
                q.push_back(XferItem {
                    packet,
                    complete_on_post: Vec::new(),
                    rdv_done: Some(Arc::clone(&done)),
                });
            });
            drop(s);
        }
        self.pump_gate(g);
    }

    /// Pushes queued work toward the NICs: flushes transfer lists, then
    /// invokes the optimization layer for every idle rail.
    fn pump_gate(&self, g: &Gate) -> usize {
        let mut events = 0;
        for rail in 0..g.num_rails() {
            events += self.flush_xfer(g, rail);
        }
        // Optimization layer: fill idle rails from the collect queue.
        // relaxed: round-robin cursor, see above.
        let mut rail_cursor = g.rr_rail.load(std::sync::atomic::Ordering::Relaxed);
        while let Some(rail) = self.pick_idle_rail(g, rail_cursor) {
            rail_cursor = rail + 1;
            let budget = self.packet_budget(g);
            let items = {
                let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
                let items =
                    g.tx.with(&s, |tx| self.strategy.next_packet(&mut tx.queue, budget));
                drop(s);
                items
            };
            let Some(items) = items else {
                break;
            };
            if items.len() > 1 {
                self.stats.aggregated_packets.incr();
            }
            let entries: Vec<Entry> = items.iter().map(SendItem::to_entry).collect();
            let packet = encode_packet(&entries);
            nm_trace::trace_event!(TransmitBegin, g.id.0, rail);
            let posted = {
                let s = self.policy.enter(SectionKind::Driver(g.driver_base + rail));
                let r = g.drivers[rail].post(packet);
                drop(s);
                r
            };
            nm_trace::trace_event!(TransmitEnd, g.id.0, posted.is_ok());
            match posted {
                Ok(()) => {
                    self.stats.packets_tx.incr();
                    events += 1;
                    for item in items {
                        if let Some(req) = item.req {
                            req.complete();
                        }
                    }
                }
                Err(nm_fabric::PostError::WouldBlock) => {
                    // NIC filled up between the idle check and the post:
                    // restore the items at the head of the queue.
                    let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
                    g.tx.with(&s, |tx| {
                        for item in items.into_iter().rev() {
                            tx.queue.push_front(item);
                        }
                    });
                    drop(s);
                    break;
                }
            }
        }
        events
    }

    /// Drains one rail's transfer list while the NIC accepts packets.
    fn flush_xfer(&self, g: &Gate, rail: usize) -> usize {
        let mut events = 0;
        loop {
            let s = self.policy.enter(SectionKind::Driver(g.driver_base + rail));
            if !g.drivers[rail].can_post() {
                drop(s);
                break;
            }
            let Some(item) = g.xfer[rail].with(&s, |q| q.pop_front()) else {
                drop(s);
                break;
            };
            nm_trace::trace_event!(TransmitBegin, g.id.0, rail);
            let res = g.drivers[rail].post(item.packet.clone());
            nm_trace::trace_event!(TransmitEnd, g.id.0, res.is_ok());
            if res.is_err() {
                g.xfer[rail].with(&s, |q| q.push_front(item));
                drop(s);
                break;
            }
            drop(s);
            self.stats.packets_tx.incr();
            events += 1;
            for req in item.complete_on_post {
                req.complete();
            }
            if let Some(done) = item.rdv_done {
                done.chunk_posted();
            }
        }
        events
    }

    /// Round-robin scan for a rail whose NIC reports itself idle.
    ///
    /// `can_post` is read without the driver lock as a racy hint; the
    /// subsequent `post` under the lock handles the losing race.
    fn pick_idle_rail(&self, g: &Gate, start: usize) -> Option<usize> {
        let n = g.num_rails();
        (0..n)
            .map(|i| (start + i) % n)
            .find(|&rail| g.drivers[rail].can_post())
    }

    /// Payload budget for the next arranged packet.
    fn packet_budget(&self, g: &Gate) -> usize {
        let mtu_budget = g.min_mtu() - PACKET_HEADER;
        // Never smaller than one maximal eager entry, or it could never
        // leave the queue.
        let agg = self
            .config
            .max_aggregation
            .max(self.config.eager_threshold + ENTRY_HEADER);
        mtu_budget.min(agg)
    }

    fn rdv_chunk_size(&self, g: &Gate) -> usize {
        let wire_max = g.min_mtu() - PACKET_HEADER - ENTRY_HEADER;
        self.config.rdv_chunk.clamp(1, wire_max)
    }
}

/// Queue depths across the library's layers (see [`CommCore::pending`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PendingCounts {
    /// Send items waiting in collect-layer queues.
    pub collect_items: usize,
    /// Pre-encoded packets waiting in transfer-layer lists.
    pub xfer_items: usize,
    /// Outbound rendezvous waiting for their CTS.
    pub rdv_awaiting_cts: usize,
    /// Posted receives not yet matched.
    pub posted_recvs: usize,
    /// Unexpected (early) eager messages buffered.
    pub unexpected: usize,
    /// RTS received with no matching receive yet.
    pub pending_rts: usize,
    /// Inbound rendezvous reassemblies in progress.
    pub rdv_reassembling: usize,
    /// Eager messages parked by the resequencer.
    pub eager_out_of_order: usize,
}

/// Effects that must run outside the collect section (completions signal
/// condvars; CTS starts chunk distribution over rails).
enum After {
    CompleteRecv(Request, u64, Bytes),
    StartData(RdvSend),
}

impl CommCore {
    /// Matches one in-order eager message against the posted receives, or
    /// parks it in the unexpected bins. Runs under the gate's rx section.
    fn deliver_eager(
        &self,
        rx: &mut crate::gate::RxState,
        tag: u64,
        seq: u32,
        data: Bytes,
        after: &mut Vec<After>,
    ) {
        if let Some(p) = rx.take_posted(tag) {
            after.push(After::CompleteRecv(p.req, tag, data));
        } else {
            self.stats.unexpected_msgs.incr();
            rx.push_unexpected(UnexpectedMsg { tag, seq, data });
        }
    }
}

impl PollSource for CommCore {
    fn poll(&self) -> PollOutcome {
        if self.progress() > 0 {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        }
    }
    fn name(&self) -> &str {
        "nm-core"
    }
}

impl std::fmt::Debug for CommCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommCore")
            .field("gates", &self.gates.len())
            .field("locking", &self.config.locking)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}
