//! The communication core: collect, optimization and transfer layers.
//!
//! Data path (paper Fig 1):
//!
//! ```text
//!  application ── isend/irecv ──▶ collect layer (per-gate submit lists)
//!                                     │   when a NIC is idle
//!                                     ▼
//!                             optimization layer (Strategy:
//!                             aggregation, control-first reordering)
//!                                     │   arranged packet
//!                                     ▼
//!                             transfer layer (per-lane lists,
//!                             one lane per (rail, VCI) pair)
//!                                     │
//!                                     ▼
//!                                NIC drivers (per-VCI polling)
//! ```
//!
//! Small messages travel eagerly inside one packet; large ones use a
//! rendezvous (RTS → CTS → chunked DATA, chunks distributed round-robin
//! across the live lanes — the multirail optimization, extended to the
//! VCI contexts each rail's driver exposes). Every lane owns its own
//! transfer queue, reliability window, and driver context, so flows
//! pinned to different lanes never share a transfer-layer lock.

use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::{Bytes, BytesMut};

use nm_progress::{now_ns, OffloadMode, Offloader, PollOutcome, PollSource, TimerWheel};
use nm_sync::WaitStrategy;

use crate::completion::Completion;
use crate::config::CoreConfig;
use crate::error::CommError;
use crate::gate::{
    Gate, GateId, Parked, PendingRts, PostedRecv, RdvRecv, RdvSend, RdvSendDone, TagPattern,
    UnackedFrame, UnexpectedMsg, XferItem,
};
use crate::locking::{LockPolicy, SectionKind};
use crate::request::{Request, RequestKind};
use crate::stats::CoreStats;
use crate::strategy::{SendItem, SendItemKind, Strategy};
use crate::wire::{
    decode_frame, decode_packet, encode_frame, encode_packet, Entry, Frame, WireError,
    ENTRY_HEADER, FRAME_ACK_ONLY, FRAME_HEADER, FRAME_RELIABLE, FRAME_SPAN_BYTES, PACKET_HEADER,
};

/// `a < b` in serial-number (wrapping) arithmetic over `u32` wire
/// sequence numbers.
fn seq_lt(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) > u32::MAX / 2
}

/// Work scheduled on the core's timer wheel, serviced by progression
/// passes.
enum TimerItem {
    /// Check lane `lane` of gate `gate` for a retransmit timeout.
    Retx { gate: usize, lane: usize },
    /// Fail the request with [`CommError::Timeout`] unless it completed.
    Expire(Request),
}

/// Builder for a [`CommCore`]: configure, add gates, build.
pub struct CoreBuilder {
    config: CoreConfig,
    gates: Vec<Vec<Arc<dyn nm_fabric::Driver>>>,
}

impl CoreBuilder {
    /// Starts a builder with the given configuration.
    pub fn new(config: CoreConfig) -> Self {
        CoreBuilder {
            config,
            gates: Vec::new(),
        }
    }

    /// Adds a gate (peer connection) with one driver per rail. Gate ids
    /// are assigned in call order, starting at 0.
    pub fn add_gate(mut self, drivers: Vec<Arc<dyn nm_fabric::Driver>>) -> Self {
        assert!(!drivers.is_empty(), "a gate needs at least one rail");
        self.gates.push(drivers);
        self
    }

    /// Builds the core.
    ///
    /// # Panics
    /// Panics on inconsistent configuration: no gates, an eager threshold
    /// that cannot fit any rail's MTU, a deferred offload mode combined
    /// with single-thread locking, or tasklet offload without an engine.
    pub fn build(self) -> Arc<CommCore> {
        assert!(!self.gates.is_empty(), "at least one gate required");
        if self.config.offload != OffloadMode::Inline {
            assert!(
                self.config.locking.thread_safe(),
                "deferred offload runs on another thread; single-thread locking cannot be used"
            );
        }
        let offloader = Arc::new(Offloader::for_mode(
            self.config.offload,
            self.config.tasklet_engine.clone(),
        ));

        let mut gates = Vec::with_capacity(self.gates.len());
        let mut driver_base = 0;
        for (id, drivers) in self.gates.into_iter().enumerate() {
            let gate = Gate::new(GateId(id), drivers, driver_base);
            // FRAME_SPAN_BYTES is reserved whether or not tracing is
            // compiled in, so packing decisions are identical across
            // trace and non-trace builds.
            let needed = self.config.eager_threshold
                + ENTRY_HEADER
                + PACKET_HEADER
                + FRAME_HEADER
                + FRAME_SPAN_BYTES;
            assert!(
                gate.min_mtu() >= needed,
                "eager threshold {} does not fit rail MTU {} of gate {}",
                self.config.eager_threshold,
                gate.min_mtu(),
                id
            );
            driver_base += gate.num_lanes();
            gates.push(gate);
        }
        // `driver_base` now counts lanes, not rails: the policy sizes its
        // vci/retrans/driver arrays one entry per (rail, VCI) pair.
        let policy = LockPolicy::new(self.config.locking, gates.len(), driver_base);
        let strategy = self.config.strategy.build();

        Arc::new_cyclic(|weak| CommCore {
            config: self.config,
            policy,
            gates,
            strategy,
            offloader,
            stats: CoreStats::default(),
            timers: TimerWheel::new(),
            self_weak: weak.clone(),
        })
    }
}

/// The NewMadeleine-style communication core.
///
/// All methods take `&self` and are safe for concurrent callers under the
/// `Coarse` and `Fine` locking modes; `SingleThread` mode enforces its
/// single-caller restriction at runtime.
pub struct CommCore {
    config: CoreConfig,
    policy: LockPolicy,
    gates: Vec<Gate>,
    strategy: Box<dyn Strategy>,
    offloader: Arc<Offloader>,
    stats: CoreStats,
    /// Retransmit and request-deadline clocks, checked each progression
    /// pass (the wheel never blocks a thread).
    timers: TimerWheel<TimerItem>,
    self_weak: Weak<CommCore>,
}

impl CommCore {
    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The lock policy (lock statistics for calibration benches).
    pub fn lock_policy(&self) -> &LockPolicy {
        &self.policy
    }

    /// The submission offloader. In `IdleCore` mode, register this (or the
    /// core itself plus periodic [`CommCore::drain_offload`] calls) with a
    /// progression engine so deferred submissions execute.
    pub fn offloader(&self) -> &Arc<Offloader> {
        &self.offloader
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Posts a non-blocking send of `data` to `gate` with `tag`.
    ///
    /// Messages up to the eager threshold complete locally once injected;
    /// larger messages complete when the last rendezvous chunk is
    /// injected.
    pub fn isend(&self, gate: GateId, tag: u64, data: Bytes) -> Result<Request, CommError> {
        self.isend_with(gate, tag, data, Completion::Flag)
    }

    /// Like [`CommCore::isend`], delivering completion through
    /// `completion` (queue push, handler call, or async waker wake-up)
    /// instead of only signalling the request's flag.
    pub fn isend_with(
        &self,
        gate: GateId,
        tag: u64,
        data: Bytes,
        completion: Completion,
    ) -> Result<Request, CommError> {
        let _t = crate::metrics::send_hist().timer();
        let g = self.gate(gate)?;
        if data.len() > u32::MAX as usize {
            return Err(CommError::MessageTooLarge { len: data.len() });
        }
        if self.config.reliability.enabled && g.unreachable() {
            return Err(CommError::PeerUnreachable);
        }
        let req = Request::new_with(RequestKind::Send, completion);
        self.stats.sends_posted.incr();
        nm_trace::trace_event!(SubmitBegin, gate.0, data.len());
        nm_trace::trace_event!(SpanSubmit, req.span(), gate.0);
        {
            let api = self.policy.enter_api();
            let item = if data.len() <= self.config.eager_threshold {
                self.stats.eager_sent.incr();
                SendItem {
                    tag,
                    seq: g.alloc_seq(),
                    kind: SendItemKind::Eager(data),
                    span: req.span(),
                    req: Some(req.clone()),
                }
            } else {
                self.stats.rdv_started.incr();
                let seq = g.alloc_seq();
                let total = data.len() as u32;
                let rdv = RdvSend {
                    tag,
                    seq,
                    data,
                    req: req.clone(),
                };
                let s = self.policy.enter(SectionKind::CollectTx(gate.0));
                g.tx.with(&s, |tx| tx.rdv_out_insert(rdv));
                drop(s);
                SendItem {
                    tag,
                    seq,
                    kind: SendItemKind::Rts { total },
                    span: req.span(),
                    req: None,
                }
            };
            let s = self.policy.enter(SectionKind::CollectTx(gate.0));
            let depth = g.tx.with(&s, |tx| {
                tx.queue.push_back(item);
                tx.queue.len()
            });
            drop(s);
            nm_trace::trace_event!(QueueDepth, gate.0, depth);
            nm_trace::trace_event!(SpanCollect, req.span(), depth);
            // Release between submission and transmission, exactly like
            // the paper's coarse mode ("the spinlock is held and released
            // twice: once for submitting ..., once to transmit").
            drop(api);
        }
        nm_trace::trace_event!(SubmitEnd, gate.0);
        // Submission: inline, or deferred to an idle core / tasklet
        // (§4.2) — the expensive part (strategy, encode, doorbell).
        if self.config.offload == OffloadMode::Inline {
            let api = self.policy.enter_api();
            self.pump_gate(g);
            drop(api);
        }
        if self.config.offload != OffloadMode::Inline {
            let weak = self.self_weak.clone();
            self.offloader.submit(move || {
                if let Some(core) = weak.upgrade() {
                    core.pump(gate);
                }
            });
        }
        Ok(req)
    }

    /// Posts a non-blocking receive for `tag` on `gate`.
    ///
    /// On completion the request carries the payload
    /// ([`Request::take_data`]) and the matched tag
    /// ([`Request::matched_tag`]). Matching is FIFO per tag.
    pub fn irecv(&self, gate: GateId, tag: u64) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Exact(tag), Completion::Flag)
    }

    /// Like [`CommCore::irecv`], delivering completion through
    /// `completion` instead of only signalling the request's flag.
    pub fn irecv_with(
        &self,
        gate: GateId,
        tag: u64,
        completion: Completion,
    ) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Exact(tag), completion)
    }

    /// Posts a wildcard receive (`MPI_ANY_TAG`): matches the earliest
    /// message of any tag; the matched tag is reported by
    /// [`Request::matched_tag`].
    ///
    /// Note: wildcards match *any* tag, including the reserved internal
    /// tag space used by `nm-mpi`'s collectives — do not mix wildcard
    /// receives with concurrent collectives on the same gate.
    pub fn irecv_any(&self, gate: GateId) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Any, Completion::Flag)
    }

    /// Like [`CommCore::irecv_any`], with a [`Completion`] object.
    pub fn irecv_any_with(
        &self,
        gate: GateId,
        completion: Completion,
    ) -> Result<Request, CommError> {
        self.irecv_matching(gate, TagPattern::Any, completion)
    }

    fn irecv_matching(
        &self,
        gate: GateId,
        pattern: TagPattern,
        completion: Completion,
    ) -> Result<Request, CommError> {
        let _t = crate::metrics::recv_hist().timer();
        let g = self.gate(gate)?;
        let req = Request::new_with(RequestKind::Recv, completion);
        self.stats.recvs_posted.incr();
        nm_trace::trace_event!(SpanSubmit, req.span(), gate.0);
        enum Then {
            Nothing,
            Complete(u64, Bytes),
            PumpCts(u64, u32),
        }
        let mut then = Then::Nothing;
        {
            let api = self.policy.enter_api();
            {
                let s = self.policy.enter(SectionKind::CollectRx(gate.0));
                g.rx.with(&s, |rx| {
                    // Eager messages and RTS share one sequence space, so
                    // the earlier *send* is simply the lower seq — a
                    // buffered rendezvous must not lose its place to a
                    // later eager message (or vice versa).
                    let eager_seq = rx.peek_unexpected_seq(pattern);
                    let rts_seq = rx.peek_pending_rts_seq(pattern);
                    let eager_first = match (eager_seq, rts_seq) {
                        (Some(e), Some(r)) => seq_lt(e, r),
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if eager_first {
                        let msg = rx.take_unexpected_matching(pattern).expect("peeked");
                        then = Then::Complete(msg.tag, msg.data);
                    } else if let Some(rts) = rx.take_pending_rts(pattern) {
                        rx.rdv_in_insert(RdvRecv {
                            tag: rts.tag,
                            seq: rts.seq,
                            total: rts.total,
                            received: 0,
                            buf: BytesMut::zeroed(rts.total as usize),
                            req: req.clone(),
                            chunks: std::collections::BTreeMap::new(),
                        });
                        self.stats.rdv_accepted.incr();
                        then = Then::PumpCts(rts.tag, rts.seq);
                    } else {
                        rx.post(PostedRecv {
                            pattern,
                            req: req.clone(),
                        });
                    }
                });
            }
            // The CTS rides the tx shard; rx and tx sections are never
            // held together (no nesting in the sharded lock order).
            if let &Then::PumpCts(tag, seq) = &then {
                let s = self.policy.enter(SectionKind::CollectTx(gate.0));
                g.tx.with(&s, |tx| {
                    tx.queue.push_back(SendItem {
                        tag,
                        seq,
                        kind: SendItemKind::Cts,
                        span: req.span(),
                        req: None,
                    });
                });
                drop(s);
                self.pump_gate(g);
            }
            drop(api);
        }
        if let Then::Complete(tag, data) = then {
            req.complete_with_tagged_data(tag, data);
        }
        nm_trace::trace_event!(RecvPosted, gate.0);
        Ok(req)
    }

    /// One progression pass: polls every rail of every gate, dispatches
    /// inbound packets, and pumps outbound queues. Returns the number of
    /// wire events handled.
    pub fn progress(&self) -> usize {
        let api = self.policy.enter_api();
        let events = self.progress_body();
        drop(api);
        events
    }

    /// The progression pass itself; the caller holds the API guard.
    fn progress_body(&self) -> usize {
        self.stats.progress_passes.incr();
        let mut events = self.service_timers();
        for g in &self.gates {
            events += self.poll_gate(g);
            events += self.pump_gate(g);
        }
        nm_trace::trace_event!(ProgressPass, events);
        events
    }

    /// One progression pass restricted to a lane shard: polls and
    /// flushes only the lanes whose *global* index (gate `driver_base`
    /// plus lane) satisfies `index % num_shards == shard`. Dedicated
    /// progression threads each drive their own set of VCI contexts
    /// this way without contending on the same driver sections. Timers
    /// are serviced by shard 0 only, so concurrent shard pollers never
    /// double-fire a retransmit clock.
    pub fn progress_shard(&self, shard: usize, num_shards: usize) -> usize {
        assert!(num_shards > 0 && shard < num_shards, "shard out of range");
        let api = self.policy.enter_api();
        self.stats.progress_passes.incr();
        let mut events = if shard == 0 { self.service_timers() } else { 0 };
        for g in &self.gates {
            for lane in 0..g.num_lanes() {
                if (g.driver_base + lane) % num_shards != shard {
                    continue;
                }
                events += self.poll_lane(g, lane);
                events += self.flush_xfer(g, lane);
            }
        }
        drop(api);
        nm_trace::trace_event!(ProgressPass, events);
        events
    }

    /// A [`PollSource`] driving one lane shard (see
    /// [`CommCore::progress_shard`]); register one per shard with a
    /// progression engine so each VCI gets its own poller.
    pub fn vci_poll_source(&self, shard: usize, num_shards: usize) -> VciPollSource {
        assert!(num_shards > 0 && shard < num_shards, "shard out of range");
        VciPollSource {
            core: self.self_weak.upgrade().expect("core still alive"),
            shard,
            num_shards,
            name: format!("nm-core.vci.{shard}"),
        }
    }

    /// Pops due timers and acts on them: retransmit checks for the
    /// reliability protocol, deadline expiries for bounded waits.
    fn service_timers(&self) -> usize {
        if self.timers.is_empty() {
            return 0;
        }
        let now = now_ns();
        let mut events = 0;
        for item in self.timers.pop_due(now) {
            match item {
                TimerItem::Retx { gate, lane } => {
                    if let Some(g) = self.gates.get(gate) {
                        events += self.check_retransmit(g, lane, now);
                    }
                }
                TimerItem::Expire(req) => {
                    if req.expire() {
                        events += 1;
                    }
                }
            }
        }
        events
    }

    /// Runs deferred (offloaded) submissions on the calling thread.
    ///
    /// Intended for the progression engine / idle cores; calling it from
    /// the application thread is correct but defeats the offload.
    pub fn drain_offload(&self) -> usize {
        self.offloader.drain()
    }

    /// Waits for a request, polling this core during spin phases.
    ///
    /// The spin phase runs *inside* the library: in coarse mode the
    /// library-wide lock is held while polling makes progress (Fig 2) —
    /// which is why two busy-waiting threads serialize in the paper's
    /// Fig 5 — and released before any blocking, per the paper's
    /// deadlock-avoidance rule. The same rule extends to *idle* spin
    /// passes: a pass that handles zero events yields the guard before
    /// spinning on, because the thread whose submission would unblock
    /// this wait may itself be stuck behind the coarse lock (two
    /// cross-waiting busy spinners on two cores otherwise deadlock).
    /// With [`WaitStrategy::Passive`] the caller never polls: a
    /// progression thread (or scheduler hooks) must be driving
    /// [`CommCore::progress`].
    ///
    /// Returns the operation's outcome: `Err` consumes the completion
    /// error (substrate failure, protocol violation) exactly as
    /// [`Request::take_error`] would — the two layers (`nm-core`,
    /// `nm-mpi`) share one error story.
    pub fn wait(&self, req: &Request, strategy: WaitStrategy) -> Result<(), CommError> {
        let _t = crate::metrics::wait_hist().timer();
        match strategy.spin_budget() {
            // Busy: poll under the API guard until complete.
            None => {
                let mut api = self.policy.enter_api();
                while !req.is_complete() {
                    if self.progress_body() == 0 {
                        // Idle pass: completion now depends on another
                        // thread acting — and in coarse mode that thread
                        // may be stuck behind this very guard (two
                        // cross-waiting spinners deadlock: each holds its
                        // core's lock while the reply it spins on cannot
                        // be submitted). Yield the guard between idle
                        // passes; while work flows the holder keeps it,
                        // preserving the paper's Fig 5 serialization.
                        drop(api);
                        std::hint::spin_loop();
                        api = self.policy.enter_api();
                    }
                }
                drop(api);
            }
            // Fixed spin: poll under the guard for the window, then
            // release it and block.
            Some(budget) if !budget.is_zero() => {
                let deadline = std::time::Instant::now() + budget;
                {
                    let mut api = self.policy.enter_api();
                    while !req.is_complete() && std::time::Instant::now() < deadline {
                        if self.progress_body() == 0 {
                            // Same idle-pass yield as the busy arm.
                            drop(api);
                            std::hint::spin_loop();
                            api = self.policy.enter_api();
                        }
                    }
                    drop(api);
                }
                if !req.is_complete() {
                    req.flag().wait(WaitStrategy::Passive);
                }
            }
            // Passive: block immediately.
            _ => req.flag().wait(WaitStrategy::Passive),
        }
        match req.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Like [`CommCore::wait`], bounded by `timeout`.
    ///
    /// If the deadline passes first the request is *finished* with
    /// [`CommError::Timeout`] (so its posting is reaped like a cancelled
    /// request and nothing leaks), and `Err(Timeout)` is returned. A
    /// completion racing the deadline keeps its outcome — the finish
    /// transition is a single CAS, exactly one side wins.
    pub fn wait_deadline(
        &self,
        req: &Request,
        strategy: WaitStrategy,
        timeout: Duration,
    ) -> Result<(), CommError> {
        let _t = crate::metrics::wait_hist().timer();
        let deadline = std::time::Instant::now() + timeout;
        match strategy.spin_budget() {
            // Busy: poll under the API guard until complete or expired.
            None => {
                let mut api = self.policy.enter_api();
                while !req.is_complete() && std::time::Instant::now() < deadline {
                    if self.progress_body() == 0 {
                        // Idle-pass yield; see `wait` for why this must
                        // not hold the guard while nothing moves.
                        drop(api);
                        std::hint::spin_loop();
                        api = self.policy.enter_api();
                    }
                }
                drop(api);
            }
            // Fixed spin: poll for min(budget, timeout), then block for
            // whatever remains of the timeout.
            Some(budget) if !budget.is_zero() => {
                let spin_end = (std::time::Instant::now() + budget).min(deadline);
                {
                    let mut api = self.policy.enter_api();
                    while !req.is_complete() && std::time::Instant::now() < spin_end {
                        if self.progress_body() == 0 {
                            // Idle-pass yield; see `wait`.
                            drop(api);
                            std::hint::spin_loop();
                            api = self.policy.enter_api();
                        }
                    }
                    drop(api);
                }
                if !req.is_complete() {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    req.flag().wait_timeout(WaitStrategy::Passive, left);
                }
            }
            // Passive: block immediately, for at most the timeout.
            _ => {
                req.flag().wait_timeout(WaitStrategy::Passive, timeout);
            }
        }
        if !req.is_complete() {
            req.expire();
        }
        match req.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Arms a deadline: unless `req` completes within `timeout`, a
    /// progression pass finishes it with [`CommError::Timeout`] and
    /// delivers through its completion object (queue, handler, or async
    /// waker) — no thread waits on the clock. This is what gives the
    /// async facade its deadline-bounded operations.
    pub fn expire_after(&self, req: &Request, timeout: Duration) {
        let deadline = now_ns().saturating_add(timeout.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.timers
            .schedule(deadline, TimerItem::Expire(req.clone()));
    }

    /// Snapshot of the queue depths across all layers (diagnostics).
    ///
    /// Taking the snapshot also reaps posted receives whose request was
    /// cancelled, so the reported `posted_recvs` never counts dead
    /// entries.
    pub fn pending(&self) -> PendingCounts {
        let api = self.policy.enter_api();
        let mut counts = PendingCounts::default();
        for g in &self.gates {
            let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
            g.tx.with(&s, |tx| {
                counts.collect_items += tx.queue.len();
                counts.rdv_awaiting_cts += tx.rdv_out.len();
            });
            drop(s);
            let s = self.policy.enter(SectionKind::CollectRx(g.id.0));
            g.rx.with(&s, |rx| {
                rx.prune_cancelled();
                counts.posted_recvs += rx.posted_len();
                counts.unexpected += rx.unexpected_len();
                counts.pending_rts += rx.pending_rts_len();
                counts.rdv_reassembling += rx.rdv_in_len();
                counts.eager_out_of_order += rx.ooo_len();
            });
            drop(s);
            if self.config.reliability.enabled {
                for lane in 0..g.num_lanes() {
                    let s = self
                        .policy
                        .enter(SectionKind::Retrans(g.driver_base + lane));
                    g.rel[lane].with(&s, |rel| counts.unacked_frames += rel.unacked.len());
                    drop(s);
                }
            }
            for lane in 0..g.num_lanes() {
                let s = self.policy.enter(SectionKind::Vci(g.driver_base + lane));
                g.xfer[lane].with(&s, |q| counts.xfer_items += q.len());
                drop(s);
            }
        }
        drop(api);
        counts
    }

    /// Drives progression until a full pass makes no progress and every
    /// internal send queue is empty. Returns the number of passes run.
    ///
    /// Inbound completion still depends on the peer; this flushes the
    /// *local* side (collect + transfer lists drained into the NICs).
    pub fn flush_local(&self) -> usize {
        let mut passes = 0;
        loop {
            let events = self.progress();
            passes += 1;
            let p = self.pending();
            if events == 0 && p.collect_items == 0 && p.xfer_items == 0 {
                return passes;
            }
        }
    }

    /// Waits for every request in `reqs`.
    ///
    /// Every request is waited to completion even on failure; the first
    /// error encountered (in `reqs` order) is returned.
    pub fn wait_all(&self, reqs: &[Request], strategy: WaitStrategy) -> Result<(), CommError> {
        let mut first_err = None;
        for r in reqs {
            if let Err(e) = self.wait(r, strategy) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Non-blocking completion test (`MPI_Test`): one progression pass,
    /// then reports whether the request has completed.
    pub fn test(&self, req: &Request) -> bool {
        if req.is_complete() {
            return true;
        }
        self.progress();
        req.is_complete()
    }

    /// Blocking send: `isend` + wait.
    pub fn send(
        &self,
        gate: GateId,
        tag: u64,
        data: Bytes,
        strategy: WaitStrategy,
    ) -> Result<(), CommError> {
        let req = self.isend(gate, tag, data)?;
        self.wait(&req, strategy)
    }

    /// Blocking receive: `irecv` + wait; returns the payload.
    pub fn recv(&self, gate: GateId, tag: u64, strategy: WaitStrategy) -> Result<Bytes, CommError> {
        let req = self.irecv(gate, tag)?;
        self.wait(&req, strategy)?;
        Ok(req.take_data().expect("completed recv carries data"))
    }

    // ----- internal machinery -------------------------------------------

    fn gate(&self, gate: GateId) -> Result<&Gate, CommError> {
        self.gates.get(gate.0).ok_or(CommError::InvalidGate(gate.0))
    }

    /// Public pump entry for offloaded submissions.
    fn pump(&self, gate: GateId) {
        if let Ok(g) = self.gate(gate) {
            let api = self.policy.enter_api();
            self.pump_gate(g);
            drop(api);
        }
    }

    /// Polls one gate's lanes, unwraps each frame, and dispatches
    /// everything deliverable. Corrupt frames are dropped here, before
    /// any protocol field is decoded.
    fn poll_gate(&self, g: &Gate) -> usize {
        (0..g.num_lanes()).map(|lane| self.poll_lane(g, lane)).sum()
    }

    /// Polls one lane's completion ring: each lane owns its own driver
    /// section, so concurrent pollers on different lanes of the same
    /// rail never serialize against each other.
    fn poll_lane(&self, g: &Gate, lane: usize) -> usize {
        let reliable = self.config.reliability.enabled;
        let (rail, vci) = g.lane_rail_vci(lane);
        let mut events = 0;
        for _ in 0..self.config.max_polls_per_pass {
            let pkt = {
                let s = self.policy.enter(SectionKind::Driver(g.driver_base + lane));
                let p = g.drivers[rail].poll_vci(vci);
                drop(s);
                p
            };
            let Some(raw) = pkt else { break };
            events += 1;
            match decode_frame(raw) {
                Ok(frame) if reliable && frame.reliable() => {
                    if frame.span != 0 {
                        nm_trace::trace_event!(SpanWireRx, frame.span, frame.wseq);
                    }
                    for (packet, span) in self.rel_receive(g, lane, frame) {
                        self.stats.packets_rx.incr();
                        self.dispatch(g, packet, span);
                    }
                }
                Ok(frame) => {
                    if frame.span != 0 {
                        nm_trace::trace_event!(SpanWireRx, frame.span, frame.wseq);
                    }
                    if !frame.ack_only() {
                        self.stats.packets_rx.incr();
                        self.dispatch(g, frame.payload, frame.span);
                    }
                }
                Err(WireError::BadChecksum { .. }) => {
                    self.stats.corrupt_dropped.incr();
                }
                Err(_) => {
                    self.stats.wire_errors.incr();
                }
            }
        }
        if reliable {
            events += self.flush_ack(g, lane);
        }
        events
    }

    /// Runs one reliable frame through the lane's receive window:
    /// processes its cumulative ack, suppresses duplicates, buffers
    /// out-of-order arrivals, and returns the packets released for
    /// dispatch (in wire order), each paired with the span its frame
    /// carried (0 = none).
    fn rel_receive(&self, g: &Gate, lane: usize, frame: Frame) -> Vec<(Bytes, u64)> {
        let r = &self.config.reliability;
        let s = self
            .policy
            .enter(SectionKind::Retrans(g.driver_base + lane));
        let out = g.rel[lane].with(&s, |rel| {
            // Cumulative ack: everything below `frame.ack` is delivered.
            let mut advanced = false;
            while rel
                .unacked
                .front()
                .is_some_and(|f| seq_lt(f.wseq, frame.ack))
            {
                rel.unacked.pop_front();
                advanced = true;
            }
            if advanced {
                // The peer is alive and making progress: restart the
                // backoff clock for whatever is still in flight.
                rel.exhaustions = 0;
                if let Some(head) = rel.unacked.front_mut() {
                    head.attempts = 0;
                    head.retx_at_ns = now_ns() + r.rto_base_ns;
                }
            }
            if frame.ack_only() {
                return Vec::new();
            }
            if seq_lt(frame.wseq, rel.rx_expected) || rel.rx_ooo.contains_key(&frame.wseq) {
                // A retransmit of something already received: drop it,
                // but re-ack so the sender stops resending.
                self.stats.dup_dropped.incr();
                rel.ack_pending = true;
                return Vec::new();
            }
            let mut out = Vec::new();
            if frame.wseq == rel.rx_expected {
                out.push((frame.payload, frame.span));
                rel.rx_expected = rel.rx_expected.wrapping_add(1);
                while let Some(p) = rel.rx_ooo.remove(&rel.rx_expected) {
                    out.push(p);
                    rel.rx_expected = rel.rx_expected.wrapping_add(1);
                }
            } else {
                self.stats.ooo_buffered.incr();
                rel.rx_ooo.insert(frame.wseq, (frame.payload, frame.span));
            }
            rel.ack_pending = true;
            out
        });
        drop(s);
        out
    }

    /// Sends a bare cumulative acknowledgement if the lane owes one.
    /// Ack-only frames are not sequenced and never retransmitted — a
    /// lost ack is repaired by the peer's retransmit provoking a new one.
    fn flush_ack(&self, g: &Gate, lane: usize) -> usize {
        if g.lane_is_dead(lane) {
            return 0;
        }
        let (rail, vci) = g.lane_rail_vci(lane);
        let s = self
            .policy
            .enter(SectionKind::Retrans(g.driver_base + lane));
        let sent = g.rel[lane].with(&s, |rel| {
            if !rel.ack_pending {
                return false;
            }
            let frame = encode_frame(0, rel.rx_expected, FRAME_RELIABLE | FRAME_ACK_ONLY, 0, &[]);
            let d = self.policy.enter(SectionKind::Driver(g.driver_base + lane));
            let posted = g.drivers[rail].post_vci(vci, frame);
            drop(d);
            match posted {
                Ok(()) => {
                    rel.ack_pending = false;
                    self.stats.acks_tx.incr();
                    true
                }
                // NIC full: leave ack_pending set; piggybacking or the
                // next pass will carry it.
                Err(nm_fabric::PostError::WouldBlock) => false,
            }
        });
        drop(s);
        usize::from(sent)
    }

    /// Decodes one inbound packet and applies its entries. `wire_span`
    /// is the span the carrying frame advertised (the sender's message
    /// span, 0 = none); completions emit `SpanDeliver` against it so
    /// the receive side joins the sender's timeline.
    fn dispatch(&self, g: &Gate, raw: Bytes, wire_span: u64) {
        nm_trace::trace_event!(DispatchBegin, g.id.0, raw.len());
        let entries = match decode_packet(raw) {
            Ok(e) => e,
            Err(_) => {
                self.stats.wire_errors.incr();
                nm_trace::trace_event!(DispatchEnd, g.id.0);
                return;
            }
        };
        let mut after = Vec::new();
        // CTS traffic crosses from the rx shard to the tx shard; the two
        // sections are taken one after the other, never nested. Phase 1
        // (rx) records what phase 2 (tx) must do.
        let mut cts_out: Vec<(u64, u32, u64)> = Vec::new();
        let mut cts_in: Vec<u32> = Vec::new();
        {
            let s = self.policy.enter(SectionKind::CollectRx(g.id.0));
            for entry in entries {
                match entry {
                    Entry::Eager { tag, seq, data } => g.rx.with(&s, |rx| {
                        if self.config.ordered_eager {
                            // Resequencer: release messages strictly in
                            // send order; park later ones.
                            if seq != rx.expected_seq {
                                if seq_lt(seq, rx.expected_seq) {
                                    // Already released: a redelivery.
                                    self.stats.dup_dropped.incr();
                                } else if !rx.push_ooo(Parked::Eager(UnexpectedMsg {
                                    tag,
                                    seq,
                                    data,
                                })) {
                                    self.stats.dup_dropped.incr();
                                }
                                return;
                            }
                            self.deliver_eager(rx, tag, seq, data, &mut after);
                            self.release_parked(rx, &mut after, &mut cts_out);
                        } else {
                            self.deliver_eager(rx, tag, seq, data, &mut after);
                        }
                    }),
                    Entry::Rts { tag, seq, total } => g.rx.with(&s, |rx| {
                        if rx.rdv_in_contains(seq) {
                            // Redelivered RTS for a rendezvous already
                            // accepted; the CTS is on its way (or lost —
                            // the sender's retransmit covers that).
                            self.stats.dup_dropped.incr();
                        } else if self.config.ordered_eager {
                            // The RTS obeys the same resequencer as eager
                            // messages (shared seq space): a large send
                            // must not overtake a smaller same-tag one
                            // just because it rode a different lane.
                            if seq != rx.expected_seq {
                                // Stale redelivery, or a duplicate of an
                                // already-parked RTS: drop either way.
                                if seq_lt(seq, rx.expected_seq)
                                    || !rx.push_ooo(Parked::Rts(PendingRts { tag, seq, total }))
                                {
                                    self.stats.dup_dropped.incr();
                                }
                                return;
                            }
                            self.accept_rts(rx, tag, seq, total, &mut cts_out);
                            self.release_parked(rx, &mut after, &mut cts_out);
                        } else {
                            self.accept_rts(rx, tag, seq, total, &mut cts_out);
                        }
                    }),
                    Entry::Cts { tag: _, seq } => cts_in.push(seq),
                    Entry::Data {
                        tag,
                        seq,
                        offset,
                        data,
                    } => g.rx.with(&s, |rx| {
                        let Some(r) = rx.rdv_in_get_mut(seq) else {
                            self.stats.wire_errors.incr();
                            return;
                        };
                        if r.tag != tag {
                            self.stats.wire_errors.incr();
                            return;
                        }
                        let (start, end) = (offset as usize, offset as usize + data.len());
                        if end > r.buf.len() {
                            self.stats.wire_errors.incr();
                            return;
                        }
                        if !r.mark_chunk(offset, data.len() as u32) {
                            // Redelivered chunk: the bytes are already in
                            // place; counting it again would complete a
                            // short reassembly.
                            self.stats.dup_dropped.incr();
                            return;
                        }
                        r.buf[start..end].copy_from_slice(&data);
                        r.received += data.len() as u32;
                        if r.received == r.total {
                            let done = rx.rdv_in_remove(seq).expect("reassembly just updated");
                            after.push(After::CompleteRecv(done.req, done.tag, done.buf.freeze()));
                        }
                    }),
                }
            }
        }
        let queued_cts = !cts_out.is_empty();
        if queued_cts || !cts_in.is_empty() {
            let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
            g.tx.with(&s, |tx| {
                for &(tag, seq, span) in &cts_out {
                    tx.queue.push_back(SendItem {
                        tag,
                        seq,
                        kind: SendItemKind::Cts,
                        span,
                        req: None,
                    });
                }
                for seq in cts_in {
                    match tx.rdv_out_remove(seq) {
                        Some(rdv) => after.push(After::StartData(rdv)),
                        None => self.stats.wire_errors.incr(),
                    }
                }
            });
            drop(s);
        }
        for act in after {
            match act {
                After::CompleteRecv(req, tag, data) => {
                    if wire_span != 0 {
                        nm_trace::trace_event!(SpanDeliver, wire_span, req.span());
                    }
                    req.complete_with_tagged_data(tag, data);
                }
                After::StartData(rdv) => self.start_rdv_data(g, rdv),
            }
        }
        if queued_cts {
            self.pump_gate(g);
        }
        nm_trace::trace_event!(DispatchEnd, g.id.0);
    }

    /// Chunks an acknowledged rendezvous send and distributes the chunks
    /// round-robin across the live lanes (multirail distribution,
    /// striped over every rail's VCI contexts).
    fn start_rdv_data(&self, g: &Gate, rdv: RdvSend) {
        if rdv.req.is_complete() {
            // Cancelled while waiting for the CTS: send nothing.
            return;
        }
        let lanes: Vec<usize> = (0..g.num_lanes()).filter(|&l| !g.lane_is_dead(l)).collect();
        if lanes.is_empty() {
            rdv.req.fail(CommError::PeerUnreachable);
            return;
        }
        let chunk = self.rdv_chunk_size(g);
        let total = rdv.data.len();
        let num_chunks = total.div_ceil(chunk);
        let span = rdv.req.span();
        let done = Arc::new(RdvSendDone {
            remaining: std::sync::atomic::AtomicUsize::new(num_chunks),
            req: rdv.req,
        });
        // relaxed: round-robin cursor; any interleaving is a valid lane
        // choice, no data is published through it.
        let start_lane = g.rr_lane.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for i in 0..num_chunks {
            let offset = i * chunk;
            let end = (offset + chunk).min(total);
            let entry = Entry::Data {
                tag: rdv.tag,
                seq: rdv.seq,
                offset: offset as u32,
                data: rdv.data.slice(offset..end),
            };
            let packet = encode_packet(&[entry]);
            let lane = lanes[(start_lane + i) % lanes.len()];
            let s = self.policy.enter(SectionKind::Vci(g.driver_base + lane));
            g.xfer[lane].with(&s, |q| {
                q.push_back(XferItem {
                    packet,
                    complete_on_post: Vec::new(),
                    rdv_done: Some(Arc::clone(&done)),
                    span,
                });
            });
            drop(s);
        }
        self.pump_gate(g);
    }

    /// Frames `packet` and injects it on `lane`.
    ///
    /// With reliability disabled the frame only adds the checksum. With
    /// it enabled the frame is sequenced on the lane, recorded in the
    /// retransmit window (a full window reports `WouldBlock` like a busy
    /// NIC), and carries the piggybacked cumulative ack. Lock order: the
    /// lane's `Retrans` section encloses its `Driver` section
    /// (`core.retrans.N → core.driver.N`), never the reverse.
    fn post_packet(
        &self,
        g: &Gate,
        lane: usize,
        packet: &Bytes,
        span: u64,
    ) -> Result<(), nm_fabric::PostError> {
        let r = &self.config.reliability;
        let (rail, vci) = g.lane_rail_vci(lane);
        if !r.enabled {
            let frame = encode_frame(0, 0, 0, span, packet);
            let s = self.policy.enter(SectionKind::Driver(g.driver_base + lane));
            let posted = g.drivers[rail].post_vci(vci, frame);
            drop(s);
            if posted.is_ok() && span != 0 {
                nm_trace::trace_event!(SpanWireTx, span, 0);
            }
            return posted;
        }
        let s = self
            .policy
            .enter(SectionKind::Retrans(g.driver_base + lane));
        let posted = g.rel[lane].with(&s, |rel| {
            if rel.unacked.len() >= r.window {
                return Err(nm_fabric::PostError::WouldBlock);
            }
            let wseq = rel.next_tx_wseq;
            let frame = encode_frame(wseq, rel.rx_expected, FRAME_RELIABLE, span, packet);
            let d = self.policy.enter(SectionKind::Driver(g.driver_base + lane));
            let posted = g.drivers[rail].post_vci(vci, frame);
            drop(d);
            if posted.is_ok() {
                if span != 0 {
                    nm_trace::trace_event!(SpanWireTx, span, wseq);
                }
                rel.next_tx_wseq = wseq.wrapping_add(1);
                rel.ack_pending = false; // the frame piggybacked the ack
                let now = now_ns();
                rel.unacked.push_back(UnackedFrame {
                    wseq,
                    packet: packet.clone(),
                    span,
                    attempts: 0,
                    retx_at_ns: now + r.rto_base_ns,
                });
                if !rel.timer_armed {
                    rel.timer_armed = true;
                    self.timers
                        .schedule(now + r.rto_base_ns, TimerItem::Retx { gate: g.id.0, lane });
                }
            }
            posted
        });
        drop(s);
        posted
    }

    /// Pushes queued work toward the NICs: flushes transfer lists, then
    /// invokes the optimization layer for every idle lane.
    fn pump_gate(&self, g: &Gate) -> usize {
        let mut events = 0;
        for lane in 0..g.num_lanes() {
            events += self.flush_xfer(g, lane);
        }
        // Optimization layer: fill idle lanes from the collect queue.
        // relaxed: round-robin cursor, see above.
        let mut lane_cursor = g.rr_lane.load(std::sync::atomic::Ordering::Relaxed);
        while let Some(lane) = self.pick_idle_lane(g, lane_cursor) {
            lane_cursor = lane + 1;
            let budget = self.packet_budget(g);
            let items = {
                let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
                let items =
                    g.tx.with(&s, |tx| self.strategy.next_packet(&mut tx.queue, budget));
                drop(s);
                items
            };
            let Some(mut items) = items else {
                break;
            };
            // Reap sends cancelled while queued: their request already
            // finished, nothing should go on the wire for them.
            items.retain(|item| item.req.as_ref().is_none_or(|req| !req.is_complete()));
            if items.is_empty() {
                continue;
            }
            if items.len() > 1 {
                self.stats.aggregated_packets.incr();
            }
            let entries: Vec<Entry> = items.iter().map(SendItem::to_entry).collect();
            let packet = encode_packet(&entries);
            // The frame header carries one span: the first spanned item
            // aboard. Aggregated passengers keep their submit/collect/
            // complete events but ride the carrier's wire attribution.
            let span = items.iter().map(|i| i.span).find(|&s| s != 0).unwrap_or(0);
            nm_trace::trace_event!(TransmitBegin, g.id.0, lane);
            let posted = self.post_packet(g, lane, &packet, span);
            nm_trace::trace_event!(TransmitEnd, g.id.0, posted.is_ok());
            match posted {
                Ok(()) => {
                    self.stats.packets_tx.incr();
                    events += 1;
                    for item in items {
                        if let Some(req) = item.req {
                            req.complete();
                        }
                    }
                }
                Err(nm_fabric::PostError::WouldBlock) => {
                    // NIC (or retransmit window) filled up between the
                    // idle check and the post: restore the items at the
                    // head of the queue.
                    let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
                    g.tx.with(&s, |tx| {
                        for item in items.into_iter().rev() {
                            tx.queue.push_front(item);
                        }
                    });
                    drop(s);
                    break;
                }
            }
        }
        events
    }

    /// Drains one lane's transfer list while its NIC context accepts
    /// packets.
    ///
    /// The pop and the post are *not* atomic (the reliability layer must
    /// take its `Retrans` section before the driver section): a racing
    /// pumper can interleave items, which is harmless — the list carries
    /// offset-addressed rendezvous chunks. On a failed post the item is
    /// restored with `push_front`, so the queue's relative order is
    /// preserved even when several flushers contend on one lane.
    ///
    /// `can_post_vci` is read under the `Vci` section but *without* the
    /// driver lock — a racy hint. On a multi-queue driver the hint can
    /// go stale in either direction under a different VCI's load: a
    /// stale `true` costs one failed post (the item is restored, the
    /// loop exits), a stale `false` ends the flush with items still
    /// queued. Neither strands anything permanently: every progression
    /// pass re-runs `flush_xfer` on every lane, so a queue left
    /// non-empty by a stale hint is re-flushed on the next poll.
    fn flush_xfer(&self, g: &Gate, lane: usize) -> usize {
        if self.config.reliability.enabled && g.lane_is_dead(lane) {
            return self.migrate_stranded(g, lane);
        }
        let (rail, vci) = g.lane_rail_vci(lane);
        let mut events = 0;
        loop {
            let item = {
                let s = self.policy.enter(SectionKind::Vci(g.driver_base + lane));
                let item = if g.drivers[rail].can_post_vci(vci) {
                    g.xfer[lane].with(&s, |q| q.pop_front())
                } else {
                    None
                };
                drop(s);
                item
            };
            let Some(item) = item else { break };
            nm_trace::trace_event!(TransmitBegin, g.id.0, lane);
            let res = self.post_packet(g, lane, &item.packet, item.span);
            nm_trace::trace_event!(TransmitEnd, g.id.0, res.is_ok());
            if res.is_err() {
                let s = self.policy.enter(SectionKind::Vci(g.driver_base + lane));
                g.xfer[lane].with(&s, |q| q.push_front(item));
                drop(s);
                break;
            }
            self.stats.packets_tx.incr();
            events += 1;
            for req in item.complete_on_post {
                req.complete();
            }
            if let Some(done) = item.rdv_done {
                done.chunk_posted();
            }
        }
        events
    }

    /// Round-robin scan for a live lane whose NIC context reports itself
    /// idle.
    ///
    /// `can_post_vci` is read without the driver lock as a racy hint;
    /// the subsequent `post_vci` under the lock handles the losing race.
    fn pick_idle_lane(&self, g: &Gate, start: usize) -> Option<usize> {
        let n = g.num_lanes();
        (0..n).map(|i| (start + i) % n).find(|&lane| {
            let (rail, vci) = g.lane_rail_vci(lane);
            !g.lane_is_dead(lane) && g.drivers[rail].can_post_vci(vci)
        })
    }

    /// Payload budget for the next arranged packet. The span word is
    /// reserved unconditionally so trace and non-trace builds arrange
    /// identical packets.
    fn packet_budget(&self, g: &Gate) -> usize {
        let mtu_budget = g.min_mtu() - PACKET_HEADER - FRAME_HEADER - FRAME_SPAN_BYTES;
        // Never smaller than one maximal eager entry, or it could never
        // leave the queue.
        let agg = self
            .config
            .max_aggregation
            .max(self.config.eager_threshold + ENTRY_HEADER);
        mtu_budget.min(agg)
    }

    fn rdv_chunk_size(&self, g: &Gate) -> usize {
        let wire_max = g.min_mtu() - FRAME_HEADER - FRAME_SPAN_BYTES - PACKET_HEADER - ENTRY_HEADER;
        self.config.rdv_chunk.clamp(1, wire_max)
    }

    // ----- reliability: retransmit, failover ----------------------------

    /// Acts on a fired retransmit timer for one lane: resends the head of
    /// the window with exponential backoff, counts retry exhaustions, and
    /// triggers failover at the configured threshold. Exhaustion kills
    /// the *lane* — a single VCI context can die while its rail's other
    /// contexts stay live; a physical rail death simply exhausts every
    /// lane it carries.
    fn check_retransmit(&self, g: &Gate, lane: usize, now: u64) -> usize {
        let r = &self.config.reliability;
        let mut dead = false;
        let mut events = 0;
        let (rail, vci) = g.lane_rail_vci(lane);
        let s = self
            .policy
            .enter(SectionKind::Retrans(g.driver_base + lane));
        g.rel[lane].with(&s, |rel| {
            rel.timer_armed = false;
            if g.lane_is_dead(lane) {
                return;
            }
            let Some(head) = rel.unacked.front_mut() else {
                return; // everything acked since the timer was armed
            };
            if now >= head.retx_at_ns {
                if head.attempts >= r.max_retries {
                    rel.exhaustions += 1;
                    if rel.exhaustions >= r.rail_dead_threshold {
                        dead = true;
                        return;
                    }
                    // Keep trying at maximum backoff until the lane is
                    // declared dead.
                    head.attempts = 0;
                }
                head.attempts += 1;
                let backoff = r
                    .rto_base_ns
                    .saturating_mul(1u64 << head.attempts.min(24))
                    .min(r.rto_max_ns);
                head.retx_at_ns = now + backoff;
                self.stats.retransmits.incr();
                events += 1;
                nm_trace::trace_event!(Retransmit, g.driver_base + lane, head.wseq);
                if head.span != 0 {
                    nm_trace::trace_event!(SpanRetx, head.span, head.wseq);
                }
                let frame = encode_frame(
                    head.wseq,
                    rel.rx_expected,
                    FRAME_RELIABLE,
                    head.span,
                    &head.packet,
                );
                rel.ack_pending = false;
                let d = self.policy.enter(SectionKind::Driver(g.driver_base + lane));
                // WouldBlock: the rearmed timer simply tries again.
                let _ = g.drivers[rail].post_vci(vci, frame);
                drop(d);
            }
            rel.timer_armed = true;
            let at = rel.unacked.front().expect("head checked").retx_at_ns;
            self.timers
                .schedule(at, TimerItem::Retx { gate: g.id.0, lane });
        });
        drop(s);
        if dead {
            events += self.kill_lane(g, lane);
        }
        events
    }

    /// Declares `lane` dead and re-stripes everything it still owed onto
    /// the surviving lanes. With no lane left the gate's in-flight sends
    /// fail with [`CommError::PeerUnreachable`].
    fn kill_lane(&self, g: &Gate, lane: usize) -> usize {
        if !g.mark_lane_dead(lane) {
            return 0; // another thread ran the failover
        }
        self.stats.rails_failed.incr();
        nm_trace::trace_event!(RailDead, g.id.0, g.driver_base + lane);
        // Unacknowledged frames go back to packet form: a surviving lane
        // re-frames them under its own sequence space. Spans ride along
        // so the restriped retry tail stays attributable.
        let packets: Vec<(Bytes, u64)> = {
            let s = self
                .policy
                .enter(SectionKind::Retrans(g.driver_base + lane));
            let packets = g.rel[lane].with(&s, |rel| {
                rel.unacked.drain(..).map(|f| (f.packet, f.span)).collect()
            });
            drop(s);
            packets
        };
        let live: Vec<usize> = (0..g.num_lanes()).filter(|&l| !g.lane_is_dead(l)).collect();
        if live.is_empty() {
            self.fail_gate(g);
            nm_obs::flight::record_failure("rail-dead", 0, 0);
            return 1;
        }
        for (i, (packet, span)) in packets.into_iter().enumerate() {
            let to = live[i % live.len()];
            let s = self.policy.enter(SectionKind::Vci(g.driver_base + to));
            g.xfer[to].with(&s, |q| {
                q.push_back(XferItem {
                    packet,
                    complete_on_post: Vec::new(),
                    rdv_done: None,
                    span,
                })
            });
            drop(s);
        }
        self.migrate_stranded(g, lane);
        nm_obs::flight::record_failure("rail-dead", 0, 0);
        1
    }

    /// Moves a dead lane's queued transfer items to the surviving lanes
    /// (failed requests if none survive). Returns 1 if anything moved.
    ///
    /// The liveness snapshot is taken *after* draining the stranded
    /// queue: a lane that dies between the snapshot and the re-push is
    /// re-drained by its own killer's `migrate_stranded` (every
    /// `kill_lane` transition runs one), so a migrated item can chase
    /// failovers but never lands permanently on a dead lane.
    fn migrate_stranded(&self, g: &Gate, lane: usize) -> usize {
        let stranded: Vec<XferItem> = {
            let s = self.policy.enter(SectionKind::Vci(g.driver_base + lane));
            let items = g.xfer[lane].with(&s, |q| q.drain(..).collect());
            drop(s);
            items
        };
        if stranded.is_empty() {
            return 0;
        }
        let live: Vec<usize> = (0..g.num_lanes()).filter(|&l| !g.lane_is_dead(l)).collect();
        if live.is_empty() {
            for item in stranded {
                for req in item.complete_on_post {
                    req.fail(CommError::PeerUnreachable);
                }
                if let Some(done) = item.rdv_done {
                    done.req.fail(CommError::PeerUnreachable);
                }
            }
            return 1;
        }
        for (i, item) in stranded.into_iter().enumerate() {
            let to = live[i % live.len()];
            let s = self.policy.enter(SectionKind::Vci(g.driver_base + to));
            g.xfer[to].with(&s, |q| q.push_back(item));
            drop(s);
        }
        1
    }

    /// Every lane is dead: fail all of the gate's in-flight send work so
    /// nothing waits forever on an unreachable peer.
    fn fail_gate(&self, g: &Gate) {
        let (items, rdvs) = {
            let s = self.policy.enter(SectionKind::CollectTx(g.id.0));
            let out = g.tx.with(&s, |tx| {
                let items: Vec<SendItem> = tx.queue.drain(..).collect();
                let rdvs: Vec<RdvSend> = tx.rdv_out.drain().map(|(_, rdv)| rdv).collect();
                (items, rdvs)
            });
            drop(s);
            out
        };
        for item in items {
            if let Some(req) = item.req {
                req.fail(CommError::PeerUnreachable);
            }
        }
        for rdv in rdvs {
            rdv.req.fail(CommError::PeerUnreachable);
        }
        for lane in 0..g.num_lanes() {
            self.migrate_stranded(g, lane);
        }
    }
}

/// Queue depths across the library's layers (see [`CommCore::pending`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PendingCounts {
    /// Send items waiting in collect-layer queues.
    pub collect_items: usize,
    /// Pre-encoded packets waiting in transfer-layer lists.
    pub xfer_items: usize,
    /// Outbound rendezvous waiting for their CTS.
    pub rdv_awaiting_cts: usize,
    /// Posted receives not yet matched.
    pub posted_recvs: usize,
    /// Unexpected (early) eager messages buffered.
    pub unexpected: usize,
    /// RTS received with no matching receive yet.
    pub pending_rts: usize,
    /// Inbound rendezvous reassemblies in progress.
    pub rdv_reassembling: usize,
    /// Eager messages parked by the resequencer.
    pub eager_out_of_order: usize,
    /// Frames sitting in retransmit windows awaiting acknowledgement
    /// (always 0 with reliability disabled).
    pub unacked_frames: usize,
}

/// Effects that must run outside the collect section (completions signal
/// condvars; CTS starts chunk distribution over rails).
enum After {
    CompleteRecv(Request, u64, Bytes),
    StartData(RdvSend),
}

impl CommCore {
    /// Matches one in-order eager message against the posted receives, or
    /// parks it in the unexpected bins. Runs under the gate's rx section.
    fn deliver_eager(
        &self,
        rx: &mut crate::gate::RxState,
        tag: u64,
        seq: u32,
        data: Bytes,
        after: &mut Vec<After>,
    ) {
        if let Some(p) = rx.take_posted(tag) {
            after.push(After::CompleteRecv(p.req, tag, data));
        } else {
            self.stats.unexpected_msgs.incr();
            rx.push_unexpected(UnexpectedMsg { tag, seq, data });
        }
    }

    /// Matches one in-order RTS against the posted receives (queueing
    /// its CTS via `cts_out`), or parks it in the pending-RTS bins.
    /// Runs under the gate's rx section.
    fn accept_rts(
        &self,
        rx: &mut crate::gate::RxState,
        tag: u64,
        seq: u32,
        total: u32,
        cts_out: &mut Vec<(u64, u32, u64)>,
    ) {
        if let Some(p) = rx.take_posted(tag) {
            let recv_span = p.req.span();
            rx.rdv_in_insert(RdvRecv {
                tag,
                seq,
                total,
                received: 0,
                buf: BytesMut::zeroed(total as usize),
                req: p.req,
                chunks: std::collections::BTreeMap::new(),
            });
            self.stats.rdv_accepted.incr();
            cts_out.push((tag, seq, recv_span));
        } else if !rx.push_pending_rts(PendingRts { tag, seq, total }) {
            self.stats.dup_dropped.incr();
        }
    }

    /// Advances the resequencer past a just-released message and drains
    /// every parked message that is now in order, whichever protocol it
    /// belongs to. Runs under the gate's rx section.
    fn release_parked(
        &self,
        rx: &mut crate::gate::RxState,
        after: &mut Vec<After>,
        cts_out: &mut Vec<(u64, u32, u64)>,
    ) {
        rx.expected_seq = rx.expected_seq.wrapping_add(1);
        while let Some(parked) = rx.take_ooo(rx.expected_seq) {
            match parked {
                Parked::Eager(m) => self.deliver_eager(rx, m.tag, m.seq, m.data, after),
                Parked::Rts(r) => self.accept_rts(rx, r.tag, r.seq, r.total, cts_out),
            }
            rx.expected_seq = rx.expected_seq.wrapping_add(1);
        }
    }
}

impl PollSource for CommCore {
    fn poll(&self) -> PollOutcome {
        if self.progress() > 0 {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        }
    }
    fn name(&self) -> &str {
        "nm-core"
    }
}

/// A [`PollSource`] restricted to one lane shard of a core (see
/// [`CommCore::progress_shard`]): it keeps the core alive and polls
/// only its shard's VCI contexts each pass.
pub struct VciPollSource {
    core: Arc<CommCore>,
    shard: usize,
    num_shards: usize,
    name: String,
}

impl PollSource for VciPollSource {
    fn poll(&self) -> PollOutcome {
        if self.core.progress_shard(self.shard, self.num_shards) > 0 {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for CommCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommCore")
            .field("gates", &self.gates.len())
            .field("locking", &self.config.locking)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}
