//! Error types of the communication core.

use crate::wire::WireError;

/// Errors surfaced by the communication library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A message exceeded the 4 GiB wire-format limit.
    MessageTooLarge {
        /// Requested length.
        len: usize,
    },
    /// Gate id outside the configured world.
    InvalidGate(usize),
    /// A packet failed to decode (corrupt or incompatible peer).
    Wire(WireError),
    /// The core is shutting down.
    ShuttingDown,
    /// A deadline-bounded wait expired before the operation completed.
    Timeout,
    /// The request was cancelled before it completed.
    Cancelled,
    /// Every rail to the peer was declared dead (retransmits exhausted).
    PeerUnreachable,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::MessageTooLarge { len } => {
                write!(f, "message of {len} bytes exceeds the wire-format limit")
            }
            CommError::InvalidGate(g) => write!(f, "invalid gate id {g}"),
            CommError::Wire(e) => write!(f, "wire error: {e}"),
            CommError::ShuttingDown => write!(f, "communication core is shutting down"),
            CommError::Timeout => write!(f, "operation timed out"),
            CommError::Cancelled => write!(f, "request cancelled"),
            CommError::PeerUnreachable => {
                write!(f, "peer unreachable: all rails exhausted their retransmits")
            }
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CommError {
    fn from(e: WireError) -> Self {
        CommError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CommError::MessageTooLarge { len: 5 }
            .to_string()
            .contains('5'));
        assert!(CommError::InvalidGate(3).to_string().contains('3'));
        let w: CommError = WireError::Truncated.into();
        assert!(w.to_string().contains("truncated"));
        assert!(CommError::Timeout.to_string().contains("timed out"));
        assert!(CommError::Cancelled.to_string().contains("cancelled"));
        assert!(CommError::PeerUnreachable
            .to_string()
            .contains("unreachable"));
    }

    #[test]
    fn wire_error_is_chained_as_source() {
        use std::error::Error;
        let e: CommError = WireError::Truncated.into();
        let src = e.source().expect("Wire variant must chain its source");
        assert_eq!(src.to_string(), WireError::Truncated.to_string());
        assert!(CommError::Timeout.source().is_none());
        assert!(CommError::Cancelled.source().is_none());
        assert!(CommError::PeerUnreachable.source().is_none());
    }
}
