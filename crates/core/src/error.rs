//! Error types of the communication core.

use crate::wire::WireError;

/// Errors surfaced by the communication library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A message exceeded the 4 GiB wire-format limit.
    MessageTooLarge {
        /// Requested length.
        len: usize,
    },
    /// Gate id outside the configured world.
    InvalidGate(usize),
    /// A packet failed to decode (corrupt or incompatible peer).
    Wire(WireError),
    /// The core is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::MessageTooLarge { len } => {
                write!(f, "message of {len} bytes exceeds the wire-format limit")
            }
            CommError::InvalidGate(g) => write!(f, "invalid gate id {g}"),
            CommError::Wire(e) => write!(f, "wire error: {e}"),
            CommError::ShuttingDown => write!(f, "communication core is shutting down"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<WireError> for CommError {
    fn from(e: WireError) -> Self {
        CommError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CommError::MessageTooLarge { len: 5 }
            .to_string()
            .contains('5'));
        assert!(CommError::InvalidGate(3).to_string().contains('3'));
        let w: CommError = WireError::Truncated.into();
        assert!(w.to_string().contains("truncated"));
    }
}
