//! The optimization layer: scheduling strategies.
//!
//! "When a NIC becomes idle, the optimization layer is invoked so as to
//! compute the best message arrangement (by aggregating messages,
//! splitting messages, etc.) and to submit the next packet to send to the
//! transfer layer."
//!
//! A [`Strategy`] consumes the collect-layer submit queue of one gate and
//! produces the entry list of the next wire packet. Three strategies are
//! provided:
//!
//! * [`StrategyKind::Fifo`] — one message per packet, strict order.
//! * [`StrategyKind::Aggregate`] — coalesce consecutive small entries into
//!   one packet up to a byte budget (NewMadeleine's trademark
//!   optimization).
//! * [`StrategyKind::ControlFirst`] — aggregate, but hoist control entries
//!   (RTS/CTS) to the front of the queue first: a bounded form of the
//!   paper's "packet reordering" that keeps rendezvous handshakes off the
//!   queueing critical path.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::request::Request;
use crate::wire::{Entry, ENTRY_HEADER};

/// What a queued send item will become on the wire.
#[derive(Debug, Clone)]
pub enum SendItemKind {
    /// A complete small message.
    Eager(Bytes),
    /// A rendezvous request-to-send for `total` bytes.
    Rts {
        /// Total message length.
        total: u32,
    },
    /// A clear-to-send control reply (receiver side).
    Cts,
}

/// One element of a gate's collect-layer submit queue.
#[derive(Debug, Clone)]
pub struct SendItem {
    /// Message tag.
    pub tag: u64,
    /// Per-gate message sequence number. Eager and rendezvous items
    /// draw from one shared space: the receiver resequences releases by
    /// this number, so neither strategy reordering here nor lane
    /// striping in the transfer layer can change matching order.
    pub seq: u32,
    /// Payload or control kind.
    pub kind: SendItemKind,
    /// Request completed when the item reaches the wire (eager sends
    /// complete locally on injection; control items have no request).
    pub req: Option<Request>,
    /// Observability span of the message this item belongs to (0 = no
    /// span). Control items carry their originating request's span —
    /// an RTS travels under the send span, a CTS under the receive
    /// span — so the handshake legs join the message timeline.
    pub span: u64,
}

impl SendItem {
    /// Encoded size of this item as a wire entry.
    pub fn wire_size(&self) -> usize {
        ENTRY_HEADER
            + match &self.kind {
                SendItemKind::Eager(data) => data.len(),
                _ => 0,
            }
    }

    /// `true` for RTS/CTS control items.
    pub fn is_control(&self) -> bool {
        !matches!(self.kind, SendItemKind::Eager(_))
    }

    /// Converts to the wire entry.
    pub fn to_entry(&self) -> Entry {
        match &self.kind {
            SendItemKind::Eager(data) => Entry::Eager {
                tag: self.tag,
                seq: self.seq,
                data: data.clone(),
            },
            SendItemKind::Rts { total } => Entry::Rts {
                tag: self.tag,
                seq: self.seq,
                total: *total,
            },
            SendItemKind::Cts => Entry::Cts {
                tag: self.tag,
                seq: self.seq,
            },
        }
    }
}

/// Selects and arranges the next packet from a submit queue.
pub trait Strategy: Send + Sync {
    /// Strategy name for diagnostics.
    fn name(&self) -> &'static str;

    /// Removes the items forming the next packet from `queue`.
    ///
    /// `budget` is the maximum total wire size of the produced entries
    /// (the rail's MTU or the aggregation budget, whichever is smaller).
    /// Returns `None` when the queue is empty or nothing fits.
    fn next_packet(&self, queue: &mut VecDeque<SendItem>, budget: usize) -> Option<Vec<SendItem>>;
}

/// Available strategies, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// One message per packet.
    Fifo,
    /// Coalesce consecutive entries up to the budget.
    Aggregate,
    /// Aggregate with control entries hoisted first.
    ControlFirst,
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Fifo => Box::new(FifoStrategy),
            StrategyKind::Aggregate => Box::new(AggregateStrategy),
            StrategyKind::ControlFirst => Box::new(ControlFirstStrategy),
        }
    }
}

/// One message per packet, strict FIFO.
pub struct FifoStrategy;

impl Strategy for FifoStrategy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_packet(&self, queue: &mut VecDeque<SendItem>, budget: usize) -> Option<Vec<SendItem>> {
        let fits = queue.front().is_some_and(|i| i.wire_size() <= budget);
        if fits {
            Some(vec![queue.pop_front().expect("front checked")])
        } else {
            None
        }
    }
}

/// Coalesces consecutive entries into one packet up to the budget.
pub struct AggregateStrategy;

impl Strategy for AggregateStrategy {
    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn next_packet(&self, queue: &mut VecDeque<SendItem>, budget: usize) -> Option<Vec<SendItem>> {
        let mut out = Vec::new();
        let mut used = 0;
        while let Some(front) = queue.front() {
            let size = front.wire_size();
            if used + size > budget {
                break;
            }
            used += size;
            out.push(queue.pop_front().expect("front checked"));
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// [`AggregateStrategy`] preceded by hoisting control entries to the
/// front (stable within each class).
///
/// Hoisting an RTS ahead of an earlier eager send reorders *arrival*,
/// not *matching*: both kinds carry the gate's shared sequence number,
/// so an RTS that jumps the queue parks in the receiver's resequencer
/// until the messages before it have been released.
pub struct ControlFirstStrategy;

impl Strategy for ControlFirstStrategy {
    fn name(&self) -> &'static str {
        "control-first"
    }

    fn next_packet(&self, queue: &mut VecDeque<SendItem>, budget: usize) -> Option<Vec<SendItem>> {
        // Stable partition: controls keep their order, payloads keep theirs.
        if queue.iter().any(SendItem::is_control) {
            let mut controls = VecDeque::new();
            let mut payloads = VecDeque::new();
            while let Some(item) = queue.pop_front() {
                if item.is_control() {
                    controls.push_back(item);
                } else {
                    payloads.push_back(item);
                }
            }
            queue.extend(controls);
            queue.extend(payloads);
        }
        AggregateStrategy.next_packet(queue, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn eager(tag: u64, seq: u32, len: usize) -> SendItem {
        let req = Request::new(RequestKind::Send);
        SendItem {
            tag,
            seq,
            kind: SendItemKind::Eager(Bytes::from(vec![0u8; len])),
            span: req.span(),
            req: Some(req),
        }
    }

    fn rts(tag: u64, seq: u32) -> SendItem {
        let req = Request::new(RequestKind::Send);
        SendItem {
            tag,
            seq,
            kind: SendItemKind::Rts { total: 1 << 20 },
            span: req.span(),
            req: Some(req),
        }
    }

    #[test]
    fn fifo_takes_exactly_one() {
        let mut q: VecDeque<_> = [eager(1, 0, 10), eager(2, 1, 10)].into();
        let s = FifoStrategy;
        let p = s.next_packet(&mut q, 1 << 20).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].tag, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn fifo_respects_budget() {
        let mut q: VecDeque<_> = [eager(1, 0, 100)].into();
        assert!(FifoStrategy.next_packet(&mut q, 50).is_none());
        assert_eq!(q.len(), 1, "item must stay queued");
    }

    #[test]
    fn aggregate_coalesces_up_to_budget() {
        let mut q: VecDeque<_> = (0..5).map(|i| eager(i, i as u32, 100)).collect();
        let budget = 3 * (ENTRY_HEADER + 100) + 10; // room for exactly 3
        let p = AggregateStrategy.next_packet(&mut q, budget).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(p[0].tag, 0);
        assert_eq!(p[2].tag, 2);
    }

    #[test]
    fn aggregate_preserves_fifo_order() {
        let mut q: VecDeque<_> = (0..3).map(|i| eager(i, i as u32, 8)).collect();
        let p = AggregateStrategy.next_packet(&mut q, 1 << 20).unwrap();
        let tags: Vec<u64> = p.iter().map(|i| i.tag).collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn aggregate_empty_queue_returns_none() {
        let mut q = VecDeque::new();
        assert!(AggregateStrategy.next_packet(&mut q, 100).is_none());
    }

    #[test]
    fn control_first_hoists_rts() {
        let mut q: VecDeque<_> = [eager(1, 0, 4000), rts(2, 1), eager(3, 2, 4000)].into();
        // Budget admits only one payload entry alongside the control.
        let budget = ENTRY_HEADER + (ENTRY_HEADER + 4000) + 8;
        let p = ControlFirstStrategy.next_packet(&mut q, budget).unwrap();
        assert!(p[0].is_control(), "control entry must come first");
        assert_eq!(p[0].tag, 2);
        assert_eq!(p[1].tag, 1, "payload order preserved");
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].tag, 3);
    }

    #[test]
    fn kinds_build_their_strategies() {
        assert_eq!(StrategyKind::Fifo.build().name(), "fifo");
        assert_eq!(StrategyKind::Aggregate.build().name(), "aggregate");
        assert_eq!(StrategyKind::ControlFirst.build().name(), "control-first");
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        assert_eq!(eager(0, 0, 10).wire_size(), ENTRY_HEADER + 10);
        assert_eq!(rts(0, 0).wire_size(), ENTRY_HEADER);
    }
}
