//! Gates: per-peer connection state across the three layers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use nm_fabric::Driver;

use crate::locking::{Protected, SectionKind};
use crate::request::Request;
use crate::strategy::SendItem;

/// Identifies a peer connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub usize);

/// What a posted receive is willing to match (`MPI_ANY_TAG` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPattern {
    /// Match exactly this tag.
    Exact(u64),
    /// Match any tag.
    Any,
}

impl TagPattern {
    /// `true` if `tag` satisfies this pattern.
    pub fn matches(&self, tag: u64) -> bool {
        match self {
            TagPattern::Exact(t) => *t == tag,
            TagPattern::Any => true,
        }
    }
}

/// A receive posted by the application, waiting for a matching message.
#[derive(Debug)]
pub(crate) struct PostedRecv {
    pub pattern: TagPattern,
    pub req: Request,
}

/// An eager message that arrived before its receive was posted.
#[derive(Debug)]
pub(crate) struct UnexpectedMsg {
    pub tag: u64,
    pub seq: u32,
    pub data: Bytes,
}

/// An RTS that arrived before its receive was posted.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRts {
    pub tag: u64,
    pub seq: u32,
    pub total: u32,
}

/// A message the resequencer is holding back because an earlier one has
/// not arrived yet. Eager and rendezvous share the sequence space, so
/// either protocol can be the one parked behind a gap.
#[derive(Debug)]
pub(crate) enum Parked {
    Eager(UnexpectedMsg),
    Rts(PendingRts),
}

impl Parked {
    fn seq(&self) -> u32 {
        match self {
            Parked::Eager(m) => m.seq,
            Parked::Rts(r) => r.seq,
        }
    }
}

/// An in-progress inbound rendezvous reassembly.
pub(crate) struct RdvRecv {
    pub tag: u64,
    pub seq: u32,
    pub total: u32,
    pub received: u32,
    pub buf: BytesMut,
    pub req: Request,
    /// Offsets (→ lengths) already written, so a redelivered DATA chunk
    /// cannot double-count `received` and complete with torn data.
    pub chunks: BTreeMap<u32, u32>,
}

impl RdvRecv {
    /// Records the chunk at `offset`; `false` if it was already received
    /// (a duplicate the caller must drop).
    pub fn mark_chunk(&mut self, offset: u32, len: u32) -> bool {
        match self.chunks.entry(offset) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(len);
                true
            }
        }
    }
}

/// An outbound rendezvous waiting for its CTS.
pub(crate) struct RdvSend {
    pub tag: u64,
    pub seq: u32,
    pub data: Bytes,
    pub req: Request,
}

/// Completion tracker shared by the chunks of one rendezvous send: the
/// send request completes when the last chunk hits the wire.
pub(crate) struct RdvSendDone {
    pub remaining: AtomicUsize,
    pub req: Request,
}

impl RdvSendDone {
    /// Decrements; completes the request on the last chunk.
    pub fn chunk_posted(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.req.complete();
        }
    }
}

/// A pre-encoded packet queued in a transfer-layer list.
pub(crate) struct XferItem {
    pub packet: Bytes,
    /// Eager requests completed when this packet is injected.
    pub complete_on_post: Vec<Request>,
    /// Rendezvous chunk bookkeeping.
    pub rdv_done: Option<Arc<RdvSendDone>>,
    /// Observability span carried in this packet's frame header (0 =
    /// none). Survives failover so a restriped packet stays on its
    /// message timeline.
    pub span: u64,
}

/// One frame in a lane's retransmit window: the un-framed packet plus its
/// backoff clock. The packet is kept pre-framing so a failover can
/// re-sequence it on a surviving lane.
pub(crate) struct UnackedFrame {
    pub wseq: u32,
    pub packet: Bytes,
    /// Observability span of the frame (0 = none); retransmits and
    /// failover re-stripes re-attach it so the retry tail of a message
    /// stays attributable.
    pub span: u64,
    /// Retransmits of this frame so far (resets when an ack advances the
    /// window).
    pub attempts: u32,
    /// Monotonic deadline of the next retransmit.
    pub retx_at_ns: u64,
}

/// Per-lane reliability-protocol state (its own `Retrans` lock class,
/// ordered between the lane's VCI section and its driver section).
#[derive(Default)]
pub(crate) struct RelState {
    /// Next wire sequence number to assign on this lane.
    pub next_tx_wseq: u32,
    /// Sent-but-unacknowledged frames, ascending `wseq`.
    pub unacked: VecDeque<UnackedFrame>,
    /// Next wire sequence number expected from the peer.
    pub rx_expected: u32,
    /// Frames received ahead of `rx_expected`, buffered for in-order
    /// release (bounded by the peer's send window). Each entry keeps the
    /// frame's span so dispatch can attribute the delivery after the
    /// gap fills.
    pub rx_ooo: BTreeMap<u32, (Bytes, u64)>,
    /// Data arrived since the last acknowledgement went out.
    pub ack_pending: bool,
    /// Consecutive frames that exhausted their retries (failover trigger).
    pub exhaustions: u32,
    /// A retransmit timer is scheduled for this lane.
    pub timer_armed: bool,
}

/// Inserts `item` into a per-tag bin kept ascending by `seq`.
///
/// Arrivals are almost always in order (the resequencer releases eager
/// messages gap-free, rendezvous ids are allocated monotonically), so the
/// common case is a cheap `push_back`; multi-rail reordering falls back to
/// a binary-search insert.
fn bin_insert_by_seq<T>(bin: &mut VecDeque<T>, item: T, seq_of: impl Fn(&T) -> u32) {
    let seq = seq_of(&item);
    match bin.back() {
        Some(last) if seq_of(last) > seq => {
            let idx = bin.partition_point(|m| seq_of(m) < seq);
            bin.insert(idx, item);
        }
        _ => bin.push_back(item),
    }
}

/// Receive-side matching state (collect-layer domain, one per gate).
///
/// Matching is O(1) expected: posted receives, unexpected messages and
/// pending RTS live in per-tag hash bins instead of one linear list.
/// MPI ordering semantics are preserved exactly:
///
/// * **Posted receives** carry a global post-order stamp. Exact-tag
///   receives bin by tag (FIFO within the bin); wildcard (`Any`)
///   receives keep their own FIFO. An incoming tag takes whichever of
///   the two candidates was posted first — identical to scanning one
///   combined list in post order (per-tag FIFO non-overtaking, and a
///   wildcard never overtakes an earlier exact post or vice versa).
/// * **Unexpected messages / pending RTS** bin by tag with each bin kept
///   ascending by sequence number; a `BTreeMap` keyed by seq indexes the
///   whole gate so a wildcard receive takes the earliest-seq message
///   across all tags — identical to the old `min_by_key(seq)` scan.
///   Sequence numbers are unique per gate (eager and rendezvous ids
///   come from one monotonic per-gate counter), so the seq indexes are
///   collision-free and a receive can arbitrate between a buffered
///   eager message and a buffered RTS by comparing their seqs.
///
/// The `proptest_matching` integration test drives this structure and
/// the original linear-scan implementation (kept there as an oracle)
/// through random interleavings and asserts identical match order.
#[derive(Default)]
pub(crate) struct RxState {
    /// Global post-order stamp for posted receives.
    post_order: u64,
    /// Exact-tag posted receives, binned by tag, FIFO per bin; entries
    /// carry their post-order stamp.
    posted_exact: HashMap<u64, VecDeque<(u64, PostedRecv)>>,
    /// Wildcard posted receives, FIFO, with post-order stamps.
    posted_any: VecDeque<(u64, PostedRecv)>,
    /// Total posted receives across both structures.
    posted_len: usize,
    /// Unexpected eager messages, binned by tag, ascending seq.
    unexpected: HashMap<u64, VecDeque<UnexpectedMsg>>,
    /// seq → tag over all unexpected messages (wildcard earliest-seq).
    unexpected_by_seq: BTreeMap<u32, u64>,
    /// RTS that arrived before their receive, binned by tag, ascending seq.
    pending_rts: HashMap<u64, VecDeque<PendingRts>>,
    /// seq → tag over all pending RTS.
    pending_rts_by_seq: BTreeMap<u32, u64>,
    /// In-progress inbound reassemblies, keyed by rendezvous id.
    rdv_in: HashMap<u32, RdvRecv>,
    /// Next message sequence number the resequencer will release
    /// (eager and RTS alike — one shared space).
    pub expected_seq: u32,
    /// Out-of-order messages awaiting their turn, keyed by seq.
    ooo: HashMap<u32, Parked>,
}

impl RxState {
    /// Adds a posted receive (FIFO in global post order).
    pub fn post(&mut self, recv: PostedRecv) {
        let stamp = self.post_order;
        self.post_order += 1;
        match recv.pattern {
            TagPattern::Exact(tag) => {
                self.posted_exact
                    .entry(tag)
                    .or_default()
                    .push_back((stamp, recv));
            }
            TagPattern::Any => self.posted_any.push_back((stamp, recv)),
        }
        self.posted_len += 1;
        crate::metrics::posted_depth().add(1);
    }

    /// Takes the first posted receive whose pattern matches `tag`:
    /// the earlier-posted of the tag's exact bin front and the wildcard
    /// queue front. Receives whose request already finished (cancelled
    /// by the application) are reaped here instead of matching.
    pub fn take_posted(&mut self, tag: u64) -> Option<PostedRecv> {
        loop {
            let exact_stamp = self
                .posted_exact
                .get(&tag)
                .and_then(|bin| bin.front())
                .map(|(stamp, _)| *stamp);
            let any_stamp = self.posted_any.front().map(|(stamp, _)| *stamp);
            let recv = match (exact_stamp, any_stamp) {
                (Some(e), Some(a)) if a < e => self.posted_any.pop_front().map(|(_, r)| r),
                (Some(_), _) => {
                    let bin = self.posted_exact.get_mut(&tag).expect("front checked");
                    let recv = bin.pop_front().map(|(_, r)| r);
                    if bin.is_empty() {
                        self.posted_exact.remove(&tag);
                    }
                    recv
                }
                (None, Some(_)) => self.posted_any.pop_front().map(|(_, r)| r),
                (None, None) => None,
            }?;
            debug_assert!(recv.pattern.matches(tag), "bin lookup broke matching");
            self.posted_len -= 1;
            crate::metrics::posted_depth().sub(1);
            if recv.req.is_complete() {
                // Cancelled while posted: drop the entry and keep looking.
                continue;
            }
            return Some(recv);
        }
    }

    /// Reaps posted receives whose request already finished (cancelled).
    /// Returns how many entries were removed.
    pub fn prune_cancelled(&mut self) -> usize {
        let before = self.posted_len;
        self.posted_any.retain(|(_, r)| !r.req.is_complete());
        self.posted_exact.retain(|_, bin| {
            bin.retain(|(_, r)| !r.req.is_complete());
            !bin.is_empty()
        });
        self.posted_len =
            self.posted_any.len() + self.posted_exact.values().map(VecDeque::len).sum::<usize>();
        let reaped = before - self.posted_len;
        if reaped > 0 {
            crate::metrics::posted_depth().sub(reaped as i64);
        }
        reaped
    }

    /// Buffers an unexpected message. Returns `false` (dropping `msg`)
    /// if a message with the same sequence number is already buffered —
    /// a redelivery on a lossy wire, not a new message.
    pub fn push_unexpected(&mut self, msg: UnexpectedMsg) -> bool {
        if self.unexpected_by_seq.contains_key(&msg.seq) {
            return false;
        }
        self.unexpected_by_seq.insert(msg.seq, msg.tag);
        let bin = self.unexpected.entry(msg.tag).or_default();
        bin_insert_by_seq(bin, msg, |m| m.seq);
        crate::metrics::unexpected_depth().add(1);
        true
    }

    /// Takes the earliest buffered message (unexpected) matching `pattern`.
    pub fn take_unexpected_matching(&mut self, pattern: TagPattern) -> Option<UnexpectedMsg> {
        let tag = match pattern {
            TagPattern::Exact(tag) => tag,
            // The global earliest seq; within its tag's ascending bin it
            // is necessarily the front.
            TagPattern::Any => *self.unexpected_by_seq.first_key_value()?.1,
        };
        let bin = self.unexpected.get_mut(&tag)?;
        let msg = bin.pop_front()?;
        if bin.is_empty() {
            self.unexpected.remove(&tag);
        }
        self.unexpected_by_seq.remove(&msg.seq);
        crate::metrics::unexpected_depth().sub(1);
        Some(msg)
    }

    /// Takes the earliest-sequence unexpected message with `tag`.
    #[cfg(test)]
    pub fn take_unexpected(&mut self, tag: u64) -> Option<UnexpectedMsg> {
        self.take_unexpected_matching(TagPattern::Exact(tag))
    }

    /// Sequence number of the earliest buffered unexpected message
    /// matching `pattern`, without removing it.
    pub fn peek_unexpected_seq(&self, pattern: TagPattern) -> Option<u32> {
        match pattern {
            TagPattern::Exact(tag) => self.unexpected.get(&tag)?.front().map(|m| m.seq),
            TagPattern::Any => self.unexpected_by_seq.first_key_value().map(|(s, _)| *s),
        }
    }

    /// Sequence number of the earliest pending RTS matching `pattern`,
    /// without removing it.
    pub fn peek_pending_rts_seq(&self, pattern: TagPattern) -> Option<u32> {
        match pattern {
            TagPattern::Exact(tag) => self.pending_rts.get(&tag)?.front().map(|r| r.seq),
            TagPattern::Any => self.pending_rts_by_seq.first_key_value().map(|(s, _)| *s),
        }
    }

    /// Buffers an RTS that found no posted receive. Duplicates (same
    /// rendezvous id, a redelivery) are dropped and reported `false`.
    pub fn push_pending_rts(&mut self, rts: PendingRts) -> bool {
        if self.pending_rts_by_seq.contains_key(&rts.seq) {
            return false;
        }
        self.pending_rts_by_seq.insert(rts.seq, rts.tag);
        let bin = self.pending_rts.entry(rts.tag).or_default();
        bin_insert_by_seq(bin, rts, |r| r.seq);
        true
    }

    /// Takes the earliest pending RTS matching `pattern`.
    pub fn take_pending_rts(&mut self, pattern: TagPattern) -> Option<PendingRts> {
        let tag = match pattern {
            TagPattern::Exact(tag) => tag,
            TagPattern::Any => *self.pending_rts_by_seq.first_key_value()?.1,
        };
        let bin = self.pending_rts.get_mut(&tag)?;
        let rts = bin.pop_front()?;
        if bin.is_empty() {
            self.pending_rts.remove(&tag);
        }
        self.pending_rts_by_seq.remove(&rts.seq);
        Some(rts)
    }

    /// Starts tracking an inbound rendezvous reassembly.
    pub fn rdv_in_insert(&mut self, rdv: RdvRecv) {
        let prev = self.rdv_in.insert(rdv.seq, rdv);
        debug_assert!(prev.is_none(), "duplicate rendezvous id");
    }

    /// Whether a reassembly for rendezvous id `seq` is active (guards
    /// against redelivered RTS frames).
    pub fn rdv_in_contains(&self, seq: u32) -> bool {
        self.rdv_in.contains_key(&seq)
    }

    /// The active reassembly for rendezvous id `seq`, if any.
    pub fn rdv_in_get_mut(&mut self, seq: u32) -> Option<&mut RdvRecv> {
        self.rdv_in.get_mut(&seq)
    }

    /// Finishes (removes) the reassembly for rendezvous id `seq`.
    pub fn rdv_in_remove(&mut self, seq: u32) -> Option<RdvRecv> {
        self.rdv_in.remove(&seq)
    }

    /// Parks a message that arrived ahead of the resequencer. Returns
    /// `false` (dropping `msg`) if that sequence number is already
    /// parked — a redelivery, not a new message.
    pub fn push_ooo(&mut self, msg: Parked) -> bool {
        match self.ooo.entry(msg.seq()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(msg);
                true
            }
        }
    }

    /// Releases the parked message with sequence `seq`, if present.
    pub fn take_ooo(&mut self, seq: u32) -> Option<Parked> {
        self.ooo.remove(&seq)
    }

    /// Number of posted receives waiting for a match.
    pub fn posted_len(&self) -> usize {
        self.posted_len
    }

    /// Number of buffered unexpected messages.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_by_seq.len()
    }

    /// Number of buffered RTS without a posted receive.
    pub fn pending_rts_len(&self) -> usize {
        self.pending_rts_by_seq.len()
    }

    /// Number of in-progress inbound reassemblies.
    pub fn rdv_in_len(&self) -> usize {
        self.rdv_in.len()
    }

    /// Number of parked out-of-order messages.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }
}

impl Drop for RxState {
    fn drop(&mut self) {
        // Keep the library-wide depth gauges honest when a core is torn
        // down with receives still posted or messages still buffered.
        if self.posted_len > 0 {
            crate::metrics::posted_depth().sub(self.posted_len as i64);
        }
        let unexpected = self.unexpected_by_seq.len();
        if unexpected > 0 {
            crate::metrics::unexpected_depth().sub(unexpected as i64);
        }
    }
}

/// Send-side collect/rendezvous state (collect-layer domain, one per gate).
#[derive(Default)]
pub(crate) struct TxState {
    /// The per-gate submit list the optimization layer schedules from.
    pub queue: VecDeque<SendItem>,
    /// Outbound rendezvous waiting for CTS, keyed by rendezvous id.
    pub rdv_out: HashMap<u32, RdvSend>,
}

impl TxState {
    /// Registers an outbound rendezvous awaiting its CTS.
    pub fn rdv_out_insert(&mut self, rdv: RdvSend) {
        let prev = self.rdv_out.insert(rdv.seq, rdv);
        debug_assert!(prev.is_none(), "duplicate rendezvous id");
    }

    /// Claims the rendezvous `seq` on CTS arrival.
    pub fn rdv_out_remove(&mut self, seq: u32) -> Option<RdvSend> {
        self.rdv_out.remove(&seq)
    }
}

/// One peer connection: its rails, their VCI lanes, and all shared
/// per-layer lists.
///
/// The collect-layer state is sharded: `tx` and `rx` belong to this
/// gate's own `CollectTx`/`CollectRx` lock classes, so flows on distinct
/// gates never contend in fine-grain mode.
///
/// Below the collect layer everything is per **lane** — one (rail, VCI)
/// pair. A rail whose driver exposes `num_vcis() == n` contributes `n`
/// lanes, each with its own transfer queue (`Vci` section), its own
/// reliability window (`Retrans` section), and its own driver context
/// (`Driver` section), so concurrent flows pinned to different lanes
/// share no transfer-layer lock at all. With single-VCI drivers the lane
/// table collapses to one lane per rail and every index matches the old
/// per-rail layout exactly.
pub(crate) struct Gate {
    /// Diagnostic identity; used by Debug formatting and trace events.
    pub id: GateId,
    /// The rails (one driver per rail) to this peer.
    pub drivers: Vec<Arc<dyn Driver>>,
    /// Lane table: lane index → (rail, vci). Built from each driver's
    /// `num_vcis()`, rail-major.
    pub lanes: Vec<(usize, usize)>,
    /// Index of this gate's first lane in the lock policy's arrays.
    pub driver_base: usize,
    /// Next message sequence number. Eager messages and rendezvous ids
    /// share one space: the receiver's resequencer sees a gap-free
    /// stream over *all* messages, so an eager send can never be
    /// overtaken by a later rendezvous (or vice versa) when the two ride
    /// different lanes.
    pub next_seq: AtomicU32,
    /// Collect-layer send state (gate's own CollectTx section).
    pub tx: Protected<TxState>,
    /// Collect-layer receive state (gate's own CollectRx section).
    pub rx: Protected<RxState>,
    /// Transfer-layer outgoing lists, one per lane (`Vci` sections).
    pub xfer: Vec<Protected<VecDeque<XferItem>>>,
    /// Reliability-protocol state, one per lane (`Retrans` sections).
    pub rel: Vec<Protected<RelState>>,
    /// Lanes declared dead by failover (relaxed: a racy hint is fine,
    /// the retransmit path re-checks under its section).
    pub lane_dead: Vec<AtomicBool>,
    /// Round-robin cursor for lane selection.
    pub rr_lane: AtomicUsize,
}

impl Gate {
    pub fn new(id: GateId, drivers: Vec<Arc<dyn Driver>>, driver_base: usize) -> Self {
        assert!(!drivers.is_empty(), "a gate needs at least one rail");
        let mut lanes = Vec::new();
        for (rail, d) in drivers.iter().enumerate() {
            let n = d.num_vcis().max(1);
            lanes.extend((0..n).map(|vci| (rail, vci)));
        }
        let xfer = (0..lanes.len())
            .map(|lane| Protected::new(SectionKind::Vci(driver_base + lane), VecDeque::new()))
            .collect();
        let rel = (0..lanes.len())
            .map(|lane| {
                Protected::new(
                    SectionKind::Retrans(driver_base + lane),
                    RelState::default(),
                )
            })
            .collect();
        let lane_dead = (0..lanes.len()).map(|_| AtomicBool::new(false)).collect();
        Gate {
            id,
            drivers,
            lanes,
            driver_base,
            next_seq: AtomicU32::new(0),
            tx: Protected::new(SectionKind::CollectTx(id.0), TxState::default()),
            rx: Protected::new(SectionKind::CollectRx(id.0), RxState::default()),
            xfer,
            rel,
            lane_dead,
            rr_lane: AtomicUsize::new(0),
        }
    }

    /// Number of lanes (sum of all rails' VCI counts).
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The (rail, vci) pair behind lane index `lane`.
    pub fn lane_rail_vci(&self, lane: usize) -> (usize, usize) {
        self.lanes[lane]
    }

    /// Lane indices belonging to `rail`.
    #[cfg(test)]
    pub fn lanes_of_rail(&self, rail: usize) -> impl Iterator<Item = usize> + '_ {
        self.lanes
            .iter()
            .enumerate()
            .filter(move |(_, (r, _))| *r == rail)
            .map(|(lane, _)| lane)
    }

    /// Whether failover has declared `lane` dead.
    pub fn lane_is_dead(&self, lane: usize) -> bool {
        self.lane_dead[lane].load(Ordering::Relaxed)
    }

    /// Declares `lane` dead; `true` for the caller that made the
    /// transition (and must run the failover migration).
    pub fn mark_lane_dead(&self, lane: usize) -> bool {
        !self.lane_dead[lane].swap(true, Ordering::Relaxed)
    }

    /// Whether failover has declared every lane of `rail` dead.
    #[cfg(test)]
    pub fn rail_is_dead(&self, rail: usize) -> bool {
        self.lanes_of_rail(rail).all(|lane| self.lane_is_dead(lane))
    }

    /// Declares every lane of `rail` dead (a physical-NIC death takes
    /// all its VCI contexts with it); `true` if this call transitioned
    /// at least one lane (and must run the failover migration for the
    /// rail).
    #[cfg(test)]
    pub fn mark_rail_dead(&self, rail: usize) -> bool {
        let mut won = false;
        for lane in self.lanes_of_rail(rail) {
            // Mark every lane even after the first win: partial deaths
            // from a concurrent per-lane exhaustion must not leave
            // sibling lanes alive.
            won |= self.mark_lane_dead(lane);
        }
        won
    }

    /// Whether every lane of this gate is dead (the peer is unreachable).
    pub fn unreachable(&self) -> bool {
        self.lane_dead.iter().all(|d| d.load(Ordering::Relaxed))
    }

    /// Allocates the next message sequence number (eager and rendezvous
    /// draw from the same space).
    pub fn alloc_seq(&self) -> u32 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of rails.
    #[cfg(test)]
    pub fn num_rails(&self) -> usize {
        self.drivers.len()
    }

    /// Smallest MTU across rails (bounds eager and aggregation sizes).
    pub fn min_mtu(&self) -> usize {
        self.drivers
            .iter()
            .map(|d| d.caps().mtu)
            .min()
            .expect("gate has at least one rail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn unexpected(tag: u64, seq: u32) -> UnexpectedMsg {
        UnexpectedMsg {
            tag,
            seq,
            data: Bytes::new(),
        }
    }

    #[test]
    fn take_unexpected_picks_lowest_seq() {
        let mut rx = RxState::default();
        for (seq, tag) in [(5u32, 1u64), (2, 1), (9, 2), (3, 1)] {
            rx.push_unexpected(unexpected(tag, seq));
        }
        assert_eq!(rx.take_unexpected(1).unwrap().seq, 2);
        assert_eq!(rx.take_unexpected(1).unwrap().seq, 3);
        assert_eq!(rx.take_unexpected(1).unwrap().seq, 5);
        assert!(rx.take_unexpected(1).is_none());
        assert_eq!(rx.take_unexpected(2).unwrap().seq, 9);
    }

    #[test]
    fn wildcard_takes_earliest_seq_across_tags() {
        let mut rx = RxState::default();
        for (seq, tag) in [(7u32, 1u64), (2, 3), (4, 1), (9, 2)] {
            rx.push_unexpected(unexpected(tag, seq));
        }
        let order: Vec<u32> =
            std::iter::from_fn(|| rx.take_unexpected_matching(TagPattern::Any).map(|m| m.seq))
                .collect();
        assert_eq!(order, vec![2, 4, 7, 9]);
        assert_eq!(rx.unexpected_len(), 0);
    }

    #[test]
    fn take_posted_is_fifo_per_tag() {
        let mut rx = RxState::default();
        let (r1, r2) = (
            Request::new(RequestKind::Recv),
            Request::new(RequestKind::Recv),
        );
        rx.post(PostedRecv {
            pattern: TagPattern::Exact(1),
            req: r1.clone(),
        });
        rx.post(PostedRecv {
            pattern: TagPattern::Exact(1),
            req: r2.clone(),
        });
        let first = rx.take_posted(1).unwrap();
        first.req.complete();
        assert!(r1.is_complete());
        assert!(!r2.is_complete());
        assert!(rx.take_posted(7).is_none());
    }

    #[test]
    fn posted_wildcard_does_not_overtake_earlier_exact() {
        let mut rx = RxState::default();
        let (exact, any) = (
            Request::new(RequestKind::Recv),
            Request::new(RequestKind::Recv),
        );
        rx.post(PostedRecv {
            pattern: TagPattern::Exact(5),
            req: exact.clone(),
        });
        rx.post(PostedRecv {
            pattern: TagPattern::Any,
            req: any.clone(),
        });
        // Tag 5 matches both; the exact receive was posted first.
        rx.take_posted(5).unwrap().req.complete();
        assert!(exact.is_complete());
        assert!(!any.is_complete());
        // The wildcard is next in line for any tag.
        rx.take_posted(5).unwrap().req.complete();
        assert!(any.is_complete());
        assert_eq!(rx.posted_len(), 0);
    }

    #[test]
    fn posted_earlier_wildcard_beats_later_exact() {
        let mut rx = RxState::default();
        let (any, exact) = (
            Request::new(RequestKind::Recv),
            Request::new(RequestKind::Recv),
        );
        rx.post(PostedRecv {
            pattern: TagPattern::Any,
            req: any.clone(),
        });
        rx.post(PostedRecv {
            pattern: TagPattern::Exact(5),
            req: exact.clone(),
        });
        rx.take_posted(5).unwrap().req.complete();
        assert!(any.is_complete());
        assert!(!exact.is_complete());
    }

    #[test]
    fn pending_rts_wildcard_earliest_seq() {
        let mut rx = RxState::default();
        for (seq, tag) in [(6u32, 2u64), (1, 9), (3, 2)] {
            rx.push_pending_rts(PendingRts { tag, seq, total: 1 });
        }
        assert_eq!(rx.take_pending_rts(TagPattern::Any).unwrap().seq, 1);
        assert_eq!(rx.take_pending_rts(TagPattern::Exact(2)).unwrap().seq, 3);
        assert_eq!(rx.take_pending_rts(TagPattern::Any).unwrap().seq, 6);
        assert!(rx.take_pending_rts(TagPattern::Any).is_none());
    }

    #[test]
    fn rdv_in_keyed_by_seq() {
        let mut rx = RxState::default();
        for seq in [4u32, 8] {
            rx.rdv_in_insert(RdvRecv {
                tag: 1,
                seq,
                total: 2,
                received: 0,
                buf: BytesMut::new(),
                req: Request::new(RequestKind::Recv),
                chunks: BTreeMap::new(),
            });
        }
        assert_eq!(rx.rdv_in_len(), 2);
        rx.rdv_in_get_mut(8).unwrap().received = 1;
        assert!(rx.rdv_in_get_mut(5).is_none());
        let done = rx.rdv_in_remove(8).unwrap();
        assert_eq!(done.received, 1);
        assert_eq!(rx.rdv_in_len(), 1);
    }

    #[test]
    fn rdv_out_keyed_by_seq() {
        let mut tx = TxState::default();
        for seq in [0u32, 1] {
            tx.rdv_out_insert(RdvSend {
                tag: 3,
                seq,
                data: Bytes::new(),
                req: Request::new(RequestKind::Send),
            });
        }
        assert!(tx.rdv_out_remove(2).is_none());
        assert_eq!(tx.rdv_out_remove(1).unwrap().seq, 1);
        assert_eq!(tx.rdv_out.len(), 1);
    }

    #[test]
    fn depth_counters_track_posts_and_takes() {
        let mut rx = RxState::default();
        rx.post(PostedRecv {
            pattern: TagPattern::Any,
            req: Request::new(RequestKind::Recv),
        });
        rx.post(PostedRecv {
            pattern: TagPattern::Exact(1),
            req: Request::new(RequestKind::Recv),
        });
        assert_eq!(rx.posted_len(), 2);
        rx.take_posted(1).unwrap();
        assert_eq!(rx.posted_len(), 1);
        rx.push_unexpected(unexpected(1, 0));
        assert_eq!(rx.unexpected_len(), 1);
        rx.take_unexpected_matching(TagPattern::Any).unwrap();
        assert_eq!(rx.unexpected_len(), 0);
    }

    #[test]
    fn rdv_send_done_completes_on_last_chunk() {
        let req = Request::new(RequestKind::Send);
        let done = RdvSendDone {
            remaining: AtomicUsize::new(3),
            req: req.clone(),
        };
        done.chunk_posted();
        done.chunk_posted();
        assert!(!req.is_complete());
        done.chunk_posted();
        assert!(req.is_complete());
    }

    #[test]
    fn gate_seq_allocation_is_monotonic() {
        let (a, _b) = nm_fabric::LoopbackDriver::pair(4);
        let gate = Gate::new(GateId(0), vec![Arc::new(a)], 0);
        assert_eq!(gate.alloc_seq(), 0);
        assert_eq!(gate.alloc_seq(), 1);
        assert_eq!(gate.alloc_seq(), 2);
        assert_eq!(gate.num_rails(), 1);
        assert_eq!(gate.num_lanes(), 1);
        assert_eq!(gate.lane_rail_vci(0), (0, 0));
    }

    #[test]
    fn lane_table_is_rail_major_over_vcis() {
        let clock = nm_fabric::ClockSource::manual();
        let (na, _nb) = nm_fabric::SimNic::pair_vcis("r0", nm_fabric::WireModel::ideal(), clock, 2);
        let (lb, _peer) = nm_fabric::LoopbackDriver::pair(4);
        let gate = Gate::new(
            GateId(0),
            vec![
                Arc::new(nm_fabric::SimNicDriver::new(na, true)),
                Arc::new(lb),
            ],
            0,
        );
        assert_eq!(gate.num_rails(), 2);
        assert_eq!(gate.num_lanes(), 3);
        assert_eq!(gate.lane_rail_vci(0), (0, 0));
        assert_eq!(gate.lane_rail_vci(1), (0, 1));
        assert_eq!(gate.lane_rail_vci(2), (1, 0));
        assert_eq!(gate.lanes_of_rail(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(gate.lanes_of_rail(1).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn rail_death_is_the_death_of_all_its_lanes() {
        let clock = nm_fabric::ClockSource::manual();
        let (na, _nb) = nm_fabric::SimNic::pair_vcis("r0", nm_fabric::WireModel::ideal(), clock, 2);
        let (lb, _peer) = nm_fabric::LoopbackDriver::pair(4);
        let gate = Gate::new(
            GateId(0),
            vec![
                Arc::new(nm_fabric::SimNicDriver::new(na, true)),
                Arc::new(lb),
            ],
            0,
        );
        // One VCI exhausting does not kill the rail.
        assert!(gate.mark_lane_dead(0));
        assert!(gate.lane_is_dead(0));
        assert!(!gate.rail_is_dead(0));
        // A rail death sweeps the surviving sibling lane too, and the
        // caller that transitioned it wins the migration duty.
        assert!(gate.mark_rail_dead(0));
        assert!(gate.rail_is_dead(0));
        assert!(!gate.mark_rail_dead(0));
        assert!(!gate.unreachable());
        assert!(gate.mark_rail_dead(1));
        assert!(gate.unreachable());
    }
}
