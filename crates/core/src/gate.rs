//! Gates: per-peer connection state across the three layers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use nm_fabric::Driver;

use crate::locking::{Protected, SectionKind};
use crate::request::Request;
use crate::strategy::SendItem;

/// Identifies a peer connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub usize);

/// What a posted receive is willing to match (`MPI_ANY_TAG` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPattern {
    /// Match exactly this tag.
    Exact(u64),
    /// Match any tag.
    Any,
}

impl TagPattern {
    /// `true` if `tag` satisfies this pattern.
    pub fn matches(&self, tag: u64) -> bool {
        match self {
            TagPattern::Exact(t) => *t == tag,
            TagPattern::Any => true,
        }
    }
}

/// A receive posted by the application, waiting for a matching message.
#[derive(Debug)]
pub(crate) struct PostedRecv {
    pub pattern: TagPattern,
    pub req: Request,
}

/// An eager message that arrived before its receive was posted.
#[derive(Debug)]
pub(crate) struct UnexpectedMsg {
    pub tag: u64,
    pub seq: u32,
    pub data: Bytes,
}

/// An RTS that arrived before its receive was posted.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRts {
    pub tag: u64,
    pub seq: u32,
    pub total: u32,
}

/// An in-progress inbound rendezvous reassembly.
pub(crate) struct RdvRecv {
    pub tag: u64,
    pub seq: u32,
    pub total: u32,
    pub received: u32,
    pub buf: BytesMut,
    pub req: Request,
}

/// An outbound rendezvous waiting for its CTS.
pub(crate) struct RdvSend {
    pub tag: u64,
    pub seq: u32,
    pub data: Bytes,
    pub req: Request,
}

/// Completion tracker shared by the chunks of one rendezvous send: the
/// send request completes when the last chunk hits the wire.
pub(crate) struct RdvSendDone {
    pub remaining: AtomicUsize,
    pub req: Request,
}

impl RdvSendDone {
    /// Decrements; completes the request on the last chunk.
    pub fn chunk_posted(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.req.complete();
        }
    }
}

/// A pre-encoded packet queued in a transfer-layer list.
pub(crate) struct XferItem {
    pub packet: Bytes,
    /// Eager requests completed when this packet is injected.
    pub complete_on_post: Vec<Request>,
    /// Rendezvous chunk bookkeeping.
    pub rdv_done: Option<Arc<RdvSendDone>>,
}

/// Receive-side matching state (collect-layer domain).
#[derive(Default)]
pub(crate) struct RxState {
    pub posted: VecDeque<PostedRecv>,
    pub unexpected: VecDeque<UnexpectedMsg>,
    pub pending_rts: VecDeque<PendingRts>,
    pub rdv_in: Vec<RdvRecv>,
    /// Next eager sequence number the resequencer will release.
    pub expected_eager: u32,
    /// Out-of-order eager messages awaiting their turn.
    pub eager_ooo: Vec<UnexpectedMsg>,
}

impl RxState {
    /// Takes the first posted receive whose pattern matches `tag`.
    pub fn take_posted(&mut self, tag: u64) -> Option<PostedRecv> {
        let idx = self.posted.iter().position(|p| p.pattern.matches(tag))?;
        self.posted.remove(idx)
    }

    /// Takes the earliest buffered message (unexpected) matching `pattern`.
    pub fn take_unexpected_matching(&mut self, pattern: TagPattern) -> Option<UnexpectedMsg> {
        let idx = self
            .unexpected
            .iter()
            .enumerate()
            .filter(|(_, m)| pattern.matches(m.tag))
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)?;
        self.unexpected.remove(idx)
    }

    /// Takes the earliest-sequence unexpected message with `tag`.
    #[cfg(test)]
    pub fn take_unexpected(&mut self, tag: u64) -> Option<UnexpectedMsg> {
        let idx = self
            .unexpected
            .iter()
            .enumerate()
            .filter(|(_, m)| m.tag == tag)
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)?;
        self.unexpected.remove(idx)
    }

    /// Takes the earliest pending RTS matching `pattern`.
    pub fn take_pending_rts(&mut self, pattern: TagPattern) -> Option<PendingRts> {
        let idx = self
            .pending_rts
            .iter()
            .enumerate()
            .filter(|(_, r)| pattern.matches(r.tag))
            .min_by_key(|(_, r)| r.seq)
            .map(|(i, _)| i)?;
        self.pending_rts.remove(idx)
    }

    /// Finds the index of the active reassembly for rendezvous id `seq`.
    pub fn rdv_in_index(&self, seq: u32) -> Option<usize> {
        self.rdv_in.iter().position(|r| r.seq == seq)
    }
}

/// Send-side collect/rendezvous state (collect-layer domain).
#[derive(Default)]
pub(crate) struct TxState {
    /// The per-gate submit list the optimization layer schedules from.
    pub queue: VecDeque<SendItem>,
    /// Outbound rendezvous waiting for CTS.
    pub rdv_out: Vec<RdvSend>,
}

/// One peer connection: its rails and all shared per-layer lists.
pub(crate) struct Gate {
    /// Diagnostic identity; used by Debug formatting and trace events.
    pub id: GateId,
    /// The rails (one driver per rail) to this peer.
    pub drivers: Vec<Arc<dyn Driver>>,
    /// Index of this gate's first driver in the lock policy's array.
    pub driver_base: usize,
    /// Next rendezvous id.
    pub next_seq: AtomicU32,
    /// Next eager sequence number (separate space: the receiver's
    /// resequencer must see a gap-free stream).
    pub next_eager_seq: AtomicU32,
    /// Collect-layer send state.
    pub tx: Protected<TxState>,
    /// Collect-layer receive state.
    pub rx: Protected<RxState>,
    /// Transfer-layer outgoing lists, one per rail.
    pub xfer: Vec<Protected<VecDeque<XferItem>>>,
    /// Round-robin cursor for rail selection.
    pub rr_rail: AtomicUsize,
}

impl Gate {
    pub fn new(id: GateId, drivers: Vec<Arc<dyn Driver>>, driver_base: usize) -> Self {
        assert!(!drivers.is_empty(), "a gate needs at least one rail");
        let xfer = (0..drivers.len())
            .map(|rail| Protected::new(SectionKind::Driver(driver_base + rail), VecDeque::new()))
            .collect();
        Gate {
            id,
            drivers,
            driver_base,
            next_seq: AtomicU32::new(0),
            next_eager_seq: AtomicU32::new(0),
            tx: Protected::new(SectionKind::Collect, TxState::default()),
            rx: Protected::new(SectionKind::Collect, RxState::default()),
            xfer,
            rr_rail: AtomicUsize::new(0),
        }
    }

    /// Allocates the next rendezvous id.
    pub fn alloc_seq(&self) -> u32 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates the next eager sequence number.
    pub fn alloc_eager_seq(&self) -> u32 {
        self.next_eager_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of rails.
    pub fn num_rails(&self) -> usize {
        self.drivers.len()
    }

    /// Smallest MTU across rails (bounds eager and aggregation sizes).
    pub fn min_mtu(&self) -> usize {
        self.drivers
            .iter()
            .map(|d| d.caps().mtu)
            .min()
            .expect("gate has at least one rail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    #[test]
    fn take_unexpected_picks_lowest_seq() {
        let mut rx = RxState::default();
        for (seq, tag) in [(5u32, 1u64), (2, 1), (9, 2), (3, 1)] {
            rx.unexpected.push_back(UnexpectedMsg {
                tag,
                seq,
                data: Bytes::new(),
            });
        }
        assert_eq!(rx.take_unexpected(1).unwrap().seq, 2);
        assert_eq!(rx.take_unexpected(1).unwrap().seq, 3);
        assert_eq!(rx.take_unexpected(1).unwrap().seq, 5);
        assert!(rx.take_unexpected(1).is_none());
        assert_eq!(rx.take_unexpected(2).unwrap().seq, 9);
    }

    #[test]
    fn take_posted_is_fifo_per_tag() {
        let mut rx = RxState::default();
        let (r1, r2) = (
            Request::new(RequestKind::Recv),
            Request::new(RequestKind::Recv),
        );
        rx.posted.push_back(PostedRecv {
            pattern: TagPattern::Exact(1),
            req: r1.clone(),
        });
        rx.posted.push_back(PostedRecv {
            pattern: TagPattern::Exact(1),
            req: r2.clone(),
        });
        let first = rx.take_posted(1).unwrap();
        first.req.complete();
        assert!(r1.is_complete());
        assert!(!r2.is_complete());
        assert!(rx.take_posted(7).is_none());
    }

    #[test]
    fn rdv_send_done_completes_on_last_chunk() {
        let req = Request::new(RequestKind::Send);
        let done = RdvSendDone {
            remaining: AtomicUsize::new(3),
            req: req.clone(),
        };
        done.chunk_posted();
        done.chunk_posted();
        assert!(!req.is_complete());
        done.chunk_posted();
        assert!(req.is_complete());
    }

    #[test]
    fn gate_seq_allocation_is_monotonic() {
        let (a, _b) = nm_fabric::LoopbackDriver::pair(4);
        let gate = Gate::new(GateId(0), vec![Arc::new(a)], 0);
        assert_eq!(gate.alloc_seq(), 0);
        assert_eq!(gate.alloc_seq(), 1);
        assert_eq!(gate.alloc_seq(), 2);
        assert_eq!(gate.num_rails(), 1);
    }
}
