//! Always-on latency histograms for the core API operations.
//!
//! Each public operation records its wall-clock duration into a global
//! log-linear histogram (`core.send_ns`, `core.recv_ns`,
//! `core.wait_ns`) owned by [`nm_metrics::metrics`]. The handles are
//! resolved once through a `OnceLock` so the per-op cost is two
//! timestamps plus one relaxed atomic add — see the no-alloc and
//! record-cost tests in `nm-metrics`.

use std::sync::{Arc, OnceLock};

use nm_metrics::Histogram;

macro_rules! global_hist {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| nm_metrics::metrics().histogram($metric))
        }
    };
}

global_hist!(
    send_hist,
    "core.send_ns",
    "Latency of `CommCore::isend` (post to return, ns)."
);
global_hist!(
    recv_hist,
    "core.recv_ns",
    "Latency of `CommCore::irecv`/`irecv_any` (post to return, ns)."
);
global_hist!(
    wait_hist,
    "core.wait_ns",
    "Latency of `CommCore::wait` (call to completion, ns)."
);
