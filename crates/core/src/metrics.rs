//! Always-on latency histograms and health metrics for the core API.
//!
//! Each public operation records its wall-clock duration into a global
//! log-linear histogram (`core.send_ns`, `core.recv_ns`,
//! `core.wait_ns`) owned by [`nm_metrics::metrics`]. The handles are
//! resolved once through a `OnceLock` so the per-op cost is two
//! timestamps plus one relaxed atomic add — see the no-alloc and
//! record-cost tests in `nm-metrics`.
//!
//! Matching-state depth gauges (`core.posted_depth`,
//! `core.unexpected_depth`) track the library-wide number of posted
//! receives and unexpected messages held in the per-gate hash bins —
//! one relaxed add/sub per queue mutation. `core.lockclass_overflow`
//! counts locks built past the fixed lock-order class tables (they fall
//! back to a shared per-family `*.overflow` lockcheck class, losing
//! per-index precision); a non-zero value means the tables in
//! `core::locking` need growing.

use std::sync::{Arc, OnceLock};

use nm_metrics::{Counter, Gauge, Histogram};

macro_rules! global_hist {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| nm_metrics::metrics().histogram($metric))
        }
    };
}

macro_rules! global_counter {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Counter> {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| nm_metrics::metrics().counter($metric))
        }
    };
}

macro_rules! global_gauge {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Gauge> {
            static G: OnceLock<Arc<Gauge>> = OnceLock::new();
            G.get_or_init(|| nm_metrics::metrics().gauge($metric))
        }
    };
}

global_hist!(
    send_hist,
    "core.send_ns",
    "Latency of `CommCore::isend` (post to return, ns)."
);
global_hist!(
    recv_hist,
    "core.recv_ns",
    "Latency of `CommCore::irecv`/`irecv_any` (post to return, ns)."
);
global_hist!(
    wait_hist,
    "core.wait_ns",
    "Latency of `CommCore::wait` (call to completion, ns)."
);
global_counter!(
    lockclass_overflow,
    "core.lockclass_overflow",
    "Locks created beyond the fixed lock-order class tables (demoted to a shared overflow class)."
);
global_gauge!(
    posted_depth,
    "core.posted_depth",
    "Posted receives currently waiting in the per-gate matching bins."
);
global_gauge!(
    unexpected_depth,
    "core.unexpected_depth",
    "Unexpected messages currently buffered in the per-gate matching bins."
);
global_gauge!(
    cq_depth,
    "core.cq_depth",
    "Completion events currently queued across all completion queues."
);
global_hist!(
    handler_hist,
    "core.handler_ns",
    "Latency of fire-and-forget completion handlers (delivery-context run time, ns)."
);
global_counter!(
    cancelled,
    "core.requests.cancelled",
    "Requests finished by `Request::cancel` before completing."
);
