//! Property test: the hashed-bin matching state ([`RxState`]) must be
//! observationally identical to the original linear-scan implementation.
//!
//! The oracle below is a faithful copy of the pre-sharding `RxState`
//! methods (one `VecDeque` per table, `position`/`min_by_key` scans).
//! Random interleavings of exact and wildcard posts, eager and RTS
//! arrivals, and unexpected/RTS takes are applied to both; every match
//! outcome must agree — per-tag FIFO for posted receives, post-order
//! arbitration between exact and wildcard posts, and earliest-seq
//! selection for wildcard takes.

use std::collections::VecDeque;

use bytes::Bytes;
use proptest::prelude::*;

use crate::gate::{PendingRts, PostedRecv, RxState, TagPattern, UnexpectedMsg};
use crate::request::{Request, RequestKind};

/// The original linear-scan matching state, kept verbatim as the oracle.
/// Posted receives carry a plain id; buffered entries are `(tag, seq)`.
#[derive(Default)]
struct OracleRx {
    posted: VecDeque<(TagPattern, usize)>,
    unexpected: VecDeque<(u64, u32)>,
    pending_rts: VecDeque<(u64, u32)>,
}

impl OracleRx {
    fn take_posted(&mut self, tag: u64) -> Option<usize> {
        let idx = self.posted.iter().position(|(p, _)| p.matches(tag))?;
        self.posted.remove(idx).map(|(_, id)| id)
    }

    fn take_unexpected_matching(&mut self, pattern: TagPattern) -> Option<u32> {
        let idx = self
            .unexpected
            .iter()
            .enumerate()
            .filter(|(_, (tag, _))| pattern.matches(*tag))
            .min_by_key(|(_, (_, seq))| *seq)
            .map(|(i, _)| i)?;
        self.unexpected.remove(idx).map(|(_, seq)| seq)
    }

    fn take_pending_rts(&mut self, pattern: TagPattern) -> Option<u32> {
        let idx = self
            .pending_rts
            .iter()
            .enumerate()
            .filter(|(_, (tag, _))| pattern.matches(*tag))
            .min_by_key(|(_, (_, seq))| *seq)
            .map(|(i, _)| i)?;
        self.pending_rts.remove(idx).map(|(_, seq)| seq)
    }
}

/// The implementation under test, with a side registry that recovers
/// which posted receive a `take_posted` returned: each receive gets a
/// fresh `Request`, and completing the returned one identifies its id.
#[derive(Default)]
struct Subject {
    rx: RxState,
    posts: Vec<(usize, Request)>,
}

impl Subject {
    fn post(&mut self, id: usize, pattern: TagPattern) {
        let req = Request::new(RequestKind::Recv);
        self.posts.push((id, req.clone()));
        self.rx.post(PostedRecv { pattern, req });
    }

    fn take_posted(&mut self, tag: u64) -> Option<usize> {
        let p = self.rx.take_posted(tag)?;
        p.req.complete();
        let idx = self
            .posts
            .iter()
            .position(|(_, r)| r.is_complete())
            .expect("returned receive must be registered");
        Some(self.posts.swap_remove(idx).0)
    }
}

/// One step of the interleaving. Tags are drawn from a tiny domain to
/// force bin collisions and wildcard/exact races.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Post a receive with an exact tag.
    PostExact(u64),
    /// Post a wildcard receive.
    PostAny,
    /// An eager message for `tag` arrives (matched or buffered).
    Eager(u64),
    /// An RTS for `tag` arrives (matched or parked).
    Rts(u64),
    /// A receive drains the unexpected table (exact or wildcard).
    TakeUnexpected(Option<u64>),
    /// A receive claims a parked RTS (exact or wildcard).
    TakeRts(Option<u64>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest has no `prop_oneof`; select the variant by
    // index (arrivals weighted double so tables actually fill up).
    (0u8..10, 0u64..3).prop_map(|(k, tag)| match k {
        0 => Op::PostExact(tag),
        1 => Op::PostAny,
        2 | 3 => Op::Eager(tag),
        4 | 5 => Op::Rts(tag),
        6 => Op::TakeUnexpected(Some(tag)),
        7 => Op::TakeUnexpected(None),
        8 => Op::TakeRts(Some(tag)),
        _ => Op::TakeRts(None),
    })
}

fn pattern(tag: Option<u64>) -> TagPattern {
    match tag {
        Some(t) => TagPattern::Exact(t),
        None => TagPattern::Any,
    }
}

proptest! {
    #[test]
    fn hashed_bins_match_linear_scan_oracle(
        ops in prop::collection::vec(op_strategy(), 1..120),
        // Raw arrival seqs: arbitrary (not monotonic) to also exercise
        // the out-of-order bin insertion path (`ordered_eager: false`).
        raw_seqs in prop::collection::vec(any::<u32>(), 240..241),
    ) {
        let mut oracle = OracleRx::default();
        let mut subject = Subject::default();
        // Unique-ify the seq streams (keeping their random order, so
        // arrivals genuinely come out of order); eager and rdv ids are
        // separate spaces in the real gate, so split them apart too.
        let mut seen = std::collections::HashSet::new();
        let seqs: Vec<u32> = raw_seqs.into_iter().filter(|s| seen.insert(*s)).collect();
        let mut eager_seqs = seqs.iter().copied().step_by(2);
        let mut rdv_seqs = seqs.iter().copied().skip(1).step_by(2);

        let mut next_post_id = 0usize;
        for op in ops {
            match op {
                Op::PostExact(tag) => {
                    oracle.posted.push_back((TagPattern::Exact(tag), next_post_id));
                    subject.post(next_post_id, TagPattern::Exact(tag));
                    next_post_id += 1;
                }
                Op::PostAny => {
                    oracle.posted.push_back((TagPattern::Any, next_post_id));
                    subject.post(next_post_id, TagPattern::Any);
                    next_post_id += 1;
                }
                Op::Eager(tag) => {
                    let Some(seq) = eager_seqs.next() else { break };
                    let expect = oracle.take_posted(tag);
                    let got = subject.take_posted(tag);
                    prop_assert_eq!(expect, got, "eager match order diverged");
                    if expect.is_none() {
                        oracle.unexpected.push_back((tag, seq));
                        subject.rx.push_unexpected(UnexpectedMsg {
                            tag,
                            seq,
                            data: Bytes::new(),
                        });
                    }
                }
                Op::Rts(tag) => {
                    let Some(seq) = rdv_seqs.next() else { break };
                    let expect = oracle.take_posted(tag);
                    let got = subject.take_posted(tag);
                    prop_assert_eq!(expect, got, "RTS match order diverged");
                    if expect.is_none() {
                        oracle.pending_rts.push_back((tag, seq));
                        subject.rx.push_pending_rts(PendingRts { tag, seq, total: 1 });
                    }
                }
                Op::TakeUnexpected(tag) => {
                    let expect = oracle.take_unexpected_matching(pattern(tag));
                    let got = subject
                        .rx
                        .take_unexpected_matching(pattern(tag))
                        .map(|m| m.seq);
                    prop_assert_eq!(expect, got, "unexpected take diverged");
                }
                Op::TakeRts(tag) => {
                    let expect = oracle.take_pending_rts(pattern(tag));
                    let got = subject.rx.take_pending_rts(pattern(tag)).map(|r| r.seq);
                    prop_assert_eq!(expect, got, "pending-RTS take diverged");
                }
            }
        }
        // Final state must agree too: drain everything wildcard.
        loop {
            let expect = oracle.take_unexpected_matching(TagPattern::Any);
            let got = subject
                .rx
                .take_unexpected_matching(TagPattern::Any)
                .map(|m| m.seq);
            prop_assert_eq!(expect, got);
            if expect.is_none() {
                break;
            }
        }
        loop {
            let expect = oracle.take_pending_rts(TagPattern::Any);
            let got = subject.rx.take_pending_rts(TagPattern::Any).map(|r| r.seq);
            prop_assert_eq!(expect, got);
            if expect.is_none() {
                break;
            }
        }
        for tag in 0..3u64 {
            loop {
                let expect = oracle.take_posted(tag);
                let got = subject.take_posted(tag);
                prop_assert_eq!(expect, got);
                if expect.is_none() {
                    break;
                }
            }
        }
        prop_assert_eq!(subject.rx.posted_len(), oracle.posted.len());
    }
}
