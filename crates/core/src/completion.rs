//! Completion objects: *what happens* when a request finishes.
//!
//! The paper's waiting taxonomy (§3.3 busy/passive/fixed-spin) assumes a
//! thread blocks per operation. Completion objects decouple the two, the
//! way LCI makes queues/handlers/futures first-class: every `isend`/
//! `irecv` picks a [`Completion`] at post time and the library delivers
//! the finished request through it, in O(1), at the exact point it
//! signals the request's `CompletionFlag` today:
//!
//! * [`Completion::Flag`] — today's behaviour: signal the flag, wake
//!   whoever called `wait`. The default; zero overhead over the old API.
//! * [`Completion::Queue`] — push a [`CompletionEvent`] onto a shared
//!   [`CompletionQueue`]; any number of drainer threads `poll()`/`wait()`
//!   it. One queue serves unbounded outstanding operations.
//! * [`Completion::Handler`] — run a fire-and-forget closure from the
//!   delivery context. See [reentrancy rules](#handler-reentrancy-rules).
//! * [`Completion::Waker`] — wake the async future awaiting this request
//!   via the progress engine's [`WakerTable`]; the `nm-mpi` facade's
//!   `send_async`/`recv_async` use this.
//!
//! In every case the request's flag is signalled **before** the object
//! is invoked, so `Request::is_complete`/`take_data` observed from a
//! queue drainer, handler, or woken future always see the terminal
//! state.
//!
//! # Handler reentrancy rules
//!
//! Handlers run in the *delivery context*: inside `progress()`/`wait()`
//! of whichever thread advanced the library, with the core API lock
//! held. Therefore a handler must not:
//!
//! * call back into the communication API (`isend`, `irecv`, `wait`,
//!   `progress` — deadlock on the API lock under coarse locking);
//! * block (`flag.wait(..)`, `std::thread::park`, semaphore acquires —
//!   nothing can make progress until the handler returns; `cargo xtask
//!   lint-concurrency` rejects blocking waits inside handler closures);
//! * run long: its latency is charged to the delivering thread and
//!   recorded in the `core.handler_ns` histogram.
//!
//! A handler that needs to post follow-up communication should push into
//! a [`CompletionQueue`] (or any user queue) and let a non-delivery
//! thread do the posting.
//!
//! # Queue locking
//!
//! The ISSUE asks for an MPMC queue; this one is a `VecDeque` under a
//! spinlock classed `core.cq` with a semaphore carrying the permit
//! count. Push and pop are O(1) few-instruction critical sections —
//! the shape the paper prefers spinlocks for — and, unlike an ad-hoc
//! lock-free ring, the lock participates in `lockcheck` and
//! `cargo xtask analyze-locks`, which is what keeps the delivery path
//! (`core.api-global → core.cq`) deadlock-checked. Permits are the
//! source of truth: a permit is released only *after* the event is
//! queued, so an acquired permit always finds an item.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nm_progress::WakerTable;
use nm_sync::{Semaphore, SpinLock, WaitStrategy};
use nm_trace::trace_event;

use crate::metrics;
use crate::request::{Request, RequestKind};

/// A delivered completion: the finished request plus status accessors.
#[derive(Debug, Clone)]
pub struct CompletionEvent {
    req: Request,
}

impl CompletionEvent {
    pub(crate) fn new(req: Request) -> Self {
        CompletionEvent { req }
    }

    /// The completed request's id (the key async wakers use).
    pub fn id(&self) -> u64 {
        self.req.id()
    }

    /// Send or receive.
    pub fn kind(&self) -> RequestKind {
        self.req.kind()
    }

    /// The tag a completed receive matched (`None` for sends).
    pub fn tag(&self) -> Option<u64> {
        self.req.matched_tag()
    }

    /// The completed request (always `is_complete()` here).
    pub fn request(&self) -> &Request {
        &self.req
    }

    /// Consumes the event, returning the request (e.g. to `take_data`).
    pub fn into_request(self) -> Request {
        self.req
    }
}

/// A fire-and-forget completion callback. See the
/// [module docs](self#handler-reentrancy-rules) for what a handler may do.
pub type CompletionHandler = Arc<dyn Fn(&CompletionEvent) + Send + Sync>;

/// How a request's completion is delivered, chosen per operation at
/// `isend_with`/`irecv_with` time. See the [module docs](self).
#[derive(Clone, Default)]
pub enum Completion {
    /// Signal the request's `CompletionFlag` only (the classic API).
    #[default]
    Flag,
    /// Push a [`CompletionEvent`] onto this queue.
    Queue(Arc<CompletionQueue>),
    /// Invoke this handler from the delivery context.
    Handler(CompletionHandler),
    /// Wake the async waiter registered for this request id.
    Waker(Arc<WakerTable>),
}

impl Completion {
    /// A queue completion (clones the `Arc`).
    pub fn queue(cq: &Arc<CompletionQueue>) -> Self {
        Completion::Queue(Arc::clone(cq))
    }

    /// A handler completion from a closure.
    pub fn handler<F>(f: F) -> Self
    where
        F: Fn(&CompletionEvent) + Send + Sync + 'static,
    {
        Completion::Handler(Arc::new(f))
    }

    /// A waker completion delivering through `table`.
    pub fn waker(table: &Arc<WakerTable>) -> Self {
        Completion::Waker(Arc::clone(table))
    }
}

impl fmt::Debug for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Flag => f.write_str("Flag"),
            Completion::Queue(_) => f.write_str("Queue(..)"),
            Completion::Handler(_) => f.write_str("Handler(..)"),
            Completion::Waker(_) => f.write_str("Waker(..)"),
        }
    }
}

/// An MPMC completion queue: the library pushes finished requests, any
/// number of drainer threads `poll()`/`wait()` them out. One queue can
/// carry every outstanding operation of a server — completion stops
/// costing one blocked thread per request.
///
/// See the [module docs](self#queue-locking) for the locking rationale.
pub struct CompletionQueue {
    /// FIFO of delivered events, spinlock-classed `core.cq`.
    cq_items: SpinLock<VecDeque<CompletionEvent>>,
    /// Permit per queued event; released strictly after the push.
    sem: Semaphore,
    /// Cached depth for `len()` (and the `core.cq_depth` gauge).
    depth: AtomicUsize,
}

impl CompletionQueue {
    /// Creates an empty queue, ready to be shared across operations and
    /// drainer threads.
    pub fn new() -> Arc<Self> {
        Arc::new(CompletionQueue {
            cq_items: SpinLock::with_class("core.cq", VecDeque::new()),
            sem: Semaphore::new(0),
            depth: AtomicUsize::new(0),
        })
    }

    /// Delivery: enqueue `ev` and publish one permit.
    pub(crate) fn push(&self, ev: CompletionEvent) {
        let id = ev.id();
        let after;
        {
            let mut fifo = self.cq_items.lock();
            fifo.push_back(ev);
            after = fifo.len();
        }
        // relaxed: depth is an advisory snapshot (len/gauge); the permit
        // count is the synchronizing source of truth.
        self.depth.fetch_add(1, Ordering::Relaxed);
        metrics::cq_depth().add(1);
        trace_event!(CqPush, id, after as u64);
        self.sem.release();
    }

    /// Removes one event; callers must hold a permit.
    fn pop(&self) -> CompletionEvent {
        let (ev, after) = {
            let mut fifo = self.cq_items.lock();
            let ev = fifo
                .pop_front()
                .expect("completion queue permit without a queued event");
            (ev, fifo.len())
        };
        // relaxed: advisory snapshot; see push.
        self.depth.fetch_sub(1, Ordering::Relaxed);
        metrics::cq_depth().sub(1);
        trace_event!(CqPop, ev.id(), after as u64);
        ev
    }

    /// Takes one completion if any is ready, without waiting.
    pub fn poll(&self) -> Option<CompletionEvent> {
        if self.sem.try_acquire() {
            Some(self.pop())
        } else {
            None
        }
    }

    /// Takes one completion, waiting with `strategy` until one arrives.
    ///
    /// Something else must drive the library (a progression thread,
    /// scheduler hooks, or another thread in `progress`) — the queue
    /// itself polls nothing. Use [`CompletionQueue::wait_with_poll`]
    /// from a thread that should drive progression while it spins.
    pub fn wait(&self, strategy: WaitStrategy) -> CompletionEvent {
        self.sem.acquire_with(strategy);
        self.pop()
    }

    /// Like [`CompletionQueue::wait`], invoking `poll` on every spin
    /// iteration (the progression hook for busy/fixed-spin drainers).
    pub fn wait_with_poll(&self, strategy: WaitStrategy, poll: impl FnMut()) -> CompletionEvent {
        self.sem.acquire_with_poll(strategy, poll);
        self.pop()
    }

    /// Takes one completion, waiting passively at most `timeout`; `None`
    /// if nothing arrived in time. The deadline-bounded drainer loop:
    /// a server thread can wake periodically to check for shutdown
    /// without a sentinel event.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<CompletionEvent> {
        if self.sem.acquire_timeout(timeout) {
            Some(self.pop())
        } else {
            None
        }
    }

    /// Events currently queued (advisory; racy by nature).
    pub fn len(&self) -> usize {
        // relaxed: advisory snapshot; see push.
        self.depth.load(Ordering::Relaxed)
    }

    /// `true` when no event is queued (advisory; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("depth", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn completed_send(completion: Completion) -> Request {
        let r = Request::new_with(RequestKind::Send, completion);
        r.complete();
        r
    }

    #[test]
    fn queue_fifo_poll_and_depth() {
        let cq = CompletionQueue::new();
        assert!(cq.is_empty());
        assert!(cq.poll().is_none());
        let a = completed_send(Completion::queue(&cq));
        let b = completed_send(Completion::queue(&cq));
        assert_eq!(cq.len(), 2);
        assert_eq!(cq.poll().unwrap().id(), a.id());
        assert_eq!(cq.poll().unwrap().id(), b.id());
        assert!(cq.poll().is_none());
        assert!(cq.is_empty());
    }

    #[test]
    fn queue_wait_blocks_until_delivery() {
        let cq = CompletionQueue::new();
        let r = Request::new_with(RequestKind::Send, Completion::queue(&cq));
        let cq2 = Arc::clone(&cq);
        let h = std::thread::spawn(move || cq2.wait(WaitStrategy::Passive).id());
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.complete();
        assert_eq!(h.join().unwrap(), r.id());
    }

    #[test]
    fn event_exposes_terminal_state() {
        let cq = CompletionQueue::new();
        let r = Request::new_with(RequestKind::Recv, Completion::queue(&cq));
        r.complete_with_tagged_data(9, bytes::Bytes::from_static(b"hi"));
        let ev = cq.poll().unwrap();
        assert_eq!(ev.kind(), RequestKind::Recv);
        assert_eq!(ev.tag(), Some(9));
        assert!(ev.request().is_complete());
        assert_eq!(
            ev.into_request().take_data(),
            Some(bytes::Bytes::from_static(b"hi"))
        );
    }

    #[test]
    fn queue_wait_timeout_expires_and_recovers() {
        let cq = CompletionQueue::new();
        assert!(
            cq.wait_timeout(std::time::Duration::from_millis(10))
                .is_none(),
            "empty queue must time out"
        );
        // A timed-out wait leaves the queue consistent for later events.
        let r = completed_send(Completion::queue(&cq));
        let ev = cq
            .wait_timeout(std::time::Duration::from_secs(5))
            .expect("queued event must be returned");
        assert_eq!(ev.id(), r.id());
        assert!(cq.is_empty());
    }

    #[test]
    fn handler_runs_at_completion() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let r = Request::new_with(
            RequestKind::Send,
            Completion::handler(move |ev| {
                assert!(ev.request().is_complete(), "flag set before handler");
                seen2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert_eq!(seen.load(Ordering::SeqCst), 0);
        r.complete();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn flag_completion_delivers_nowhere() {
        let r = completed_send(Completion::Flag);
        assert!(r.is_complete());
    }
}
