//! Core-level instrumentation.

use nm_sync::stats::Counter;

/// Event counters of one communication core.
///
/// Used by tests (to assert protocol behaviour: did aggregation happen,
/// did the rendezvous path run) and by the bench harness (to attribute
/// overheads to lock counts and packet counts).
#[derive(Debug, Default)]
pub struct CoreStats {
    /// `isend` calls.
    pub sends_posted: Counter,
    /// `irecv` calls.
    pub recvs_posted: Counter,
    /// Messages sent through the eager path.
    pub eager_sent: Counter,
    /// Messages sent through the rendezvous path.
    pub rdv_started: Counter,
    /// Wire packets injected.
    pub packets_tx: Counter,
    /// Wire packets received.
    pub packets_rx: Counter,
    /// Packets that carried more than one entry (aggregation hits).
    pub aggregated_packets: Counter,
    /// Eager messages that arrived before their receive was posted.
    pub unexpected_msgs: Counter,
    /// Rendezvous CTS sent (receiver side handshakes).
    pub rdv_accepted: Counter,
    /// Progression passes executed.
    pub progress_passes: Counter,
    /// Undecodable or unmatchable wire packets (protocol errors).
    pub wire_errors: Counter,
    /// Frames dropped for a CRC mismatch (corrupted in transit).
    pub corrupt_dropped: Counter,
    /// Frames retransmitted after an ack timeout.
    pub retransmits: Counter,
    /// Acknowledgement-only frames injected.
    pub acks_tx: Counter,
    /// Duplicate frames suppressed by the receive window.
    pub dup_dropped: Counter,
    /// Frames received out of wire order and buffered for resequencing.
    pub ooo_buffered: Counter,
    /// Rails declared dead after consecutive retransmit exhaustions.
    pub rails_failed: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = CoreStats::default();
        assert_eq!(s.sends_posted.get(), 0);
        assert_eq!(s.packets_tx.get(), 0);
        s.sends_posted.incr();
        assert_eq!(s.sends_posted.get(), 1);
    }
}
