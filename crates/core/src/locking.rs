//! Thread-safety policy: the paper's three locking schemes.
//!
//! All `unsafe` interior-mutability access in `nm-core` is centralized
//! here. Shared library state lives in [`Protected<T>`] cells; every access
//! goes through a [`Section`] guard obtained from the [`LockPolicy`].
//!
//! Two guard levels exist, mirroring the paper's two designs:
//!
//! * [`LockPolicy::enter_api`] — taken once at every library entry point
//!   (`isend`, `irecv`, `progress`). In **coarse** mode (Fig 2) this is
//!   *the* library-wide spinlock: held for the whole call, released before
//!   any blocking. In the other modes it is free.
//! * [`LockPolicy::enter`] — taken around one logical critical section
//!   (gate *g*'s send state, gate *g*'s matching state, or driver *i*'s
//!   transfer list). In **fine** mode (Fig 4) this takes the section's own
//!   spinlock; in **coarse** mode it is free (the API guard already
//!   serializes); in **single-thread** mode it only checks the calling
//!   thread.
//!
//! | logical section  | `SingleThread` | `Coarse` (Fig 2) | `Fine` (Fig 4) |
//! |------------------|----------------|------------------|----------------|
//! | API entry        | thread check   | global spinlock  | nothing        |
//! | gate *g* tx      | nothing        | nothing (covered)| collect-tx spinlock *g* |
//! | gate *g* rx      | nothing        | nothing (covered)| collect-rx spinlock *g* |
//! | VCI *i* queue    | nothing        | nothing (covered)| vci spinlock *i* |
//! | retrans *i*      | nothing        | nothing (covered)| retrans spinlock *i* |
//! | driver *i* list  | nothing        | nothing (covered)| driver spinlock *i* |
//!
//! The collect layer is **sharded per gate**: each gate owns an
//! independent tx lock (submit queue, rendezvous-out table) and rx lock
//! (matching state). N threads driving N distinct peers in fine-grain
//! mode therefore contend on nothing — only flows targeting the *same*
//! gate serialize, which is the scalable-endpoints design of Zambre et
//! al. rather than the original library-wide collect lock.
//!
//! `SingleThread` reproduces the "no locking" curve of Fig 3: it takes no
//! lock at all and enforces at runtime that a single thread ever enters
//! the library (first caller wins; any other thread panics).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use nm_sync::RawSpin;

/// The paper's locking schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockingMode {
    /// No locks; library restricted to one thread (Fig 3 "no locking").
    SingleThread,
    /// One library-wide spinlock (§3.1, Fig 2), held per library call:
    /// ~2 lock cycles on a pingpong critical path ⇒ the paper's 140 ns.
    Coarse,
    /// Separate locks per shared list (§3.2, Fig 4): one tx and one rx
    /// lock per gate, one per driver. More lock operations on the path ⇒
    /// 230 ns, but unrelated communication flows proceed in parallel.
    #[default]
    Fine,
}

impl LockingMode {
    /// All modes in Fig 3 order.
    pub const ALL: [LockingMode; 3] = [
        LockingMode::SingleThread,
        LockingMode::Coarse,
        LockingMode::Fine,
    ];

    /// Label used in bench output (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            LockingMode::SingleThread => "no-locking",
            LockingMode::Coarse => "coarse-grain",
            LockingMode::Fine => "fine-grain",
        }
    }

    /// `true` if this mode is safe for multi-threaded callers.
    pub fn thread_safe(&self) -> bool {
        !matches!(self, LockingMode::SingleThread)
    }
}

/// Process-unique id of the calling thread (stable for the thread's life).
pub(crate) fn thread_id() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|id| {
        let mut v = id.get();
        if v == 0 {
            // relaxed: unique-id allocation; only atomicity matters.
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            id.set(v);
        }
        v
    })
}

/// Which logical critical section a guard covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// The whole library (API-entry guard).
    Global,
    /// Gate `g`'s send-side state (submit queue, rendezvous-out table).
    CollectTx(usize),
    /// Gate `g`'s receive-side matching state (posted/unexpected/RTS bins).
    CollectRx(usize),
    /// VCI lane `i`'s transfer queue (the per-endpoint xfer list of one
    /// (rail, VCI) pair). Ordered *between* the collect shards and the
    /// reliability/driver locks: submit pushes here under the collect
    /// guard's callers, and the flush path pops here before entering
    /// [`SectionKind::Retrans`]/[`SectionKind::Driver`] to post.
    Vci(usize),
    /// Lane `i`'s reliability state (retransmit window, sequence
    /// numbers, ack bookkeeping). Ordered *between* the VCI queues
    /// and the driver lock: the retransmit path stamps the window under
    /// this section and then posts under [`SectionKind::Driver`].
    Retrans(usize),
    /// The transfer-layer NIC access of VCI lane `i`.
    Driver(usize),
}

/// Generates a fixed table of per-index lock-order class names
/// (lockdep-style subclasses). Class names must be `&'static str`, so the
/// tables are finite; see [`LockPolicy::new`] for the overflow policy.
macro_rules! lock_class_table {
    ($prefix:literal; $($i:tt),+ $(,)?) => {
        [$(concat!($prefix, ".", stringify!($i))),+]
    };
}

/// Per-index lock-order classes for driver locks.
pub const DRIVER_LOCK_CLASSES: [&str; 16] =
    lock_class_table!("core.driver"; 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

/// Per-gate lock-order classes for the send-side collect shards.
pub const COLLECT_TX_LOCK_CLASSES: [&str; 16] =
    lock_class_table!("core.collect.tx"; 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

/// Per-gate lock-order classes for the receive-side collect shards.
pub const COLLECT_RX_LOCK_CLASSES: [&str; 16] =
    lock_class_table!("core.collect.rx"; 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

/// Per-driver lock-order classes for the reliability (retransmit) state.
pub const RETRANS_LOCK_CLASSES: [&str; 16] =
    lock_class_table!("core.retrans"; 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

/// Per-lane lock-order classes for the VCI transfer queues.
pub const VCI_LOCK_CLASSES: [&str; 16] =
    lock_class_table!("core.vci"; 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

/// Builds one classed spinlock per index; indices beyond the class table
/// fall back to the family's *shared* overflow class and bump the
/// `core.lockclass_overflow` warn counter so the precision drop is
/// observable in metrics instead of silent (see
/// `lockclass_overflow_is_counted_not_silent`). Shared classes allow
/// same-class nesting (several overflowed locks may legitimately be held
/// at once) but still participate in cross-class cycle detection.
fn classed_spins(
    n: usize,
    table: &'static [&'static str],
    overflow_class: &'static str,
) -> Box<[RawSpin]> {
    (0..n)
        .map(|i| match table.get(i) {
            Some(class) => RawSpin::with_class(class),
            None => {
                crate::metrics::lockclass_overflow().incr();
                RawSpin::with_shared_class(overflow_class)
            }
        })
        .collect()
}

/// Owned aggregate of acquisition counters over a set of locks.
///
/// The per-gate sharding means there is no longer *one* collect lock to
/// point at; [`LockPolicy::collect_stats`] sums the shards into this
/// snapshot, which mirrors the `LockStats` accessor surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStatsSnapshot {
    acquisitions: u64,
    contentions: u64,
}

impl LockStatsSnapshot {
    /// Total acquisitions across the aggregated locks.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquisitions that found a lock held.
    pub fn contentions(&self) -> u64 {
        self.contentions
    }

    /// Fraction of acquisitions that contended (0.0 when idle).
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contentions as f64 / self.acquisitions as f64
        }
    }

    fn absorb(&mut self, s: &nm_sync::stats::LockStats) {
        self.acquisitions += s.acquisitions();
        self.contentions += s.contentions();
    }
}

/// Lock-placement policy for one communication core.
pub struct LockPolicy {
    mode: LockingMode,
    /// Coarse mode: the library-wide lock.
    global: RawSpin,
    /// Fine mode: per-gate send-side collect locks (index = gate index).
    collect_tx: Box<[RawSpin]>,
    /// Fine mode: per-gate receive-side collect locks (index = gate index).
    collect_rx: Box<[RawSpin]>,
    /// Fine mode: one transfer-queue lock per VCI lane (index = global
    /// lane index). Ordered between the collect shards and the
    /// reliability locks.
    vci: Box<[RawSpin]>,
    /// Fine mode: one reliability-state lock per lane (index = global
    /// lane index). Ordered between the VCI queues and the driver
    /// locks.
    retrans: Box<[RawSpin]>,
    /// Fine mode: one lock per VCI lane (index = global lane index).
    drivers: Box<[RawSpin]>,
    /// SingleThread mode: the one thread allowed in (0 = not yet claimed).
    owner: AtomicU64,
}

impl LockPolicy {
    /// Builds a policy for `num_gates` collect-layer shards and
    /// `num_drivers` VCI lanes (every (rail, VCI) pair is one lane; a
    /// single-VCI world has exactly one lane per driver, so the index
    /// space is unchanged from the pre-VCI layout).
    ///
    /// The locks carry lock-order classes for `nm-sync`'s `lockcheck`
    /// feature; the documented hierarchy is `core.api-global` →
    /// `core.collect.{tx,rx}.G` → `core.vci.N` → `core.retrans.N` →
    /// `core.driver.N` (outermost to
    /// innermost), and any acquisition inverting it panics with both
    /// stacks when validation is compiled in. Driver and collect locks
    /// get one class *per index* — fine mode legitimately holds several
    /// driver locks at once (distinct NICs), which a shared class would
    /// misreport as a recursive acquisition. This mirrors lockdep
    /// subclasses. Indices beyond the class tables fall back to one
    /// *shared* class per family (`core.collect.tx.overflow`, ...): less
    /// precise — all overflowed locks of a family are ordered as one
    /// node — but still part of the cycle-detection graph, and each such
    /// lock increments the `core.lockclass_overflow` metrics counter so
    /// the precision drop is visible.
    pub fn new(mode: LockingMode, num_gates: usize, num_drivers: usize) -> Self {
        LockPolicy {
            mode,
            global: RawSpin::with_class("core.api-global"),
            collect_tx: classed_spins(
                num_gates,
                &COLLECT_TX_LOCK_CLASSES,
                "core.collect.tx.overflow",
            ),
            collect_rx: classed_spins(
                num_gates,
                &COLLECT_RX_LOCK_CLASSES,
                "core.collect.rx.overflow",
            ),
            vci: classed_spins(num_drivers, &VCI_LOCK_CLASSES, "core.vci.overflow"),
            retrans: classed_spins(num_drivers, &RETRANS_LOCK_CLASSES, "core.retrans.overflow"),
            drivers: classed_spins(num_drivers, &DRIVER_LOCK_CLASSES, "core.driver.overflow"),
            owner: AtomicU64::new(0),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> LockingMode {
        self.mode
    }

    /// Number of collect-layer shards (one tx + one rx lock per gate).
    pub fn num_gates(&self) -> usize {
        self.collect_tx.len()
    }

    /// Enters the library: the once-per-call guard.
    ///
    /// Must be released (dropped) before blocking, exactly as the paper's
    /// coarse mode releases the mutex "before entering a blocking section
    /// in order to avoid deadlocks".
    #[inline]
    pub fn enter_api(&self) -> Section<'_> {
        match self.mode {
            LockingMode::SingleThread => {
                self.check_single_thread();
                Section {
                    lock: None,
                    kind: SectionKind::Global,
                }
            }
            LockingMode::Coarse => {
                self.global.lock();
                Section {
                    lock: Some(&self.global),
                    kind: SectionKind::Global,
                }
            }
            LockingMode::Fine => Section {
                lock: None,
                kind: SectionKind::Global,
            },
        }
    }

    /// Enters a logical critical section.
    ///
    /// In coarse mode the caller must already hold the API guard (checked
    /// in debug builds). Inner sections must not be nested with each other.
    #[inline]
    pub fn enter(&self, kind: SectionKind) -> Section<'_> {
        debug_assert_ne!(
            kind,
            SectionKind::Global,
            "use enter_api for the global section"
        );
        match self.mode {
            LockingMode::SingleThread => Section { lock: None, kind },
            LockingMode::Coarse => {
                debug_assert!(
                    self.global.is_locked(),
                    "coarse mode: inner section entered without the API guard"
                );
                Section { lock: None, kind }
            }
            LockingMode::Fine => {
                let lock = match kind {
                    SectionKind::CollectTx(g) => &self.collect_tx[g],
                    SectionKind::CollectRx(g) => &self.collect_rx[g],
                    SectionKind::Vci(i) => &self.vci[i],
                    SectionKind::Retrans(i) => &self.retrans[i],
                    SectionKind::Driver(i) => &self.drivers[i],
                    SectionKind::Global => unreachable!(),
                };
                lock.lock();
                Section {
                    lock: Some(lock),
                    kind,
                }
            }
        }
    }

    #[inline]
    fn check_single_thread(&self) {
        let me = thread_id();
        // relaxed: the owner id is an identity check, not a data
        // publication; SingleThread mode has no cross-thread data to order.
        let owner = self.owner.load(Ordering::Relaxed);
        if owner == me {
            return;
        }
        // relaxed: claiming ownership races only with other claimants; the
        // winner publishes nothing beyond its own id.
        if owner == 0
            && self
                .owner
                .compare_exchange(0, me, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        panic!(
            "LockingMode::SingleThread: the library was entered from a second thread; \
             use Coarse or Fine locking for multi-threaded access"
        );
    }

    /// Lock statistics of the coarse/global lock.
    pub fn global_stats(&self) -> &nm_sync::stats::LockStats {
        self.global.stats()
    }

    /// Aggregated statistics over every per-gate collect lock (tx + rx).
    pub fn collect_stats(&self) -> LockStatsSnapshot {
        let mut snap = LockStatsSnapshot::default();
        for l in self.collect_tx.iter().chain(self.collect_rx.iter()) {
            snap.absorb(l.stats());
        }
        snap
    }

    /// Statistics of gate `g`'s send-side collect lock.
    pub fn collect_tx_stats(&self, g: usize) -> &nm_sync::stats::LockStats {
        self.collect_tx[g].stats()
    }

    /// Statistics of gate `g`'s receive-side collect lock.
    pub fn collect_rx_stats(&self, g: usize) -> &nm_sync::stats::LockStats {
        self.collect_rx[g].stats()
    }

    /// Statistics of lane `i`'s reliability-state lock.
    pub fn retrans_stats(&self, i: usize) -> &nm_sync::stats::LockStats {
        self.retrans[i].stats()
    }

    /// Statistics of lane `i`'s VCI transfer-queue lock.
    pub fn vci_stats(&self, i: usize) -> &nm_sync::stats::LockStats {
        self.vci[i].stats()
    }

    /// Total lock acquisitions across all locks of this policy.
    pub fn total_acquisitions(&self) -> u64 {
        self.global.stats().acquisitions()
            + self.collect_stats().acquisitions()
            + self
                .vci
                .iter()
                .chain(self.retrans.iter())
                .chain(self.drivers.iter())
                .map(|d| d.stats().acquisitions())
                .sum::<u64>()
    }
}

impl std::fmt::Debug for LockPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockPolicy")
            .field("mode", &self.mode)
            .field("gates", &self.collect_tx.len())
            .field("drivers", &self.drivers.len())
            .finish()
    }
}

/// RAII guard for a logical critical section.
pub struct Section<'a> {
    lock: Option<&'a RawSpin>,
    kind: SectionKind,
}

impl Section<'_> {
    /// The logical section this guard covers.
    pub fn kind(&self) -> SectionKind {
        self.kind
    }
}

impl Drop for Section<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(lock) = self.lock {
            lock.unlock();
        }
    }
}

/// A shared-state cell whose access is governed by a [`LockPolicy`].
///
/// Holding the *matching* [`Section`] guard is the access contract: in
/// debug builds [`Protected::with`] asserts the guard covers this cell
/// (exact kind match, or the global/API guard which covers everything).
///
/// Lock-order validation comes for free: the section guards are backed by
/// the [`LockPolicy`]'s classed [`RawSpin`]s, so with the `lockcheck`
/// feature every `Protected` access in `gate.rs`/`comm.rs` feeds the
/// global ordering graph and inversions panic with both stacks.
pub struct Protected<T> {
    kind: SectionKind,
    cell: UnsafeCell<T>,
}

// SAFETY: access is serialized by the section guards handed out by the
// LockPolicy (or by the single-thread runtime check in SingleThread mode).
unsafe impl<T: Send> Send for Protected<T> {}
// SAFETY: as above — the section guard protocol provides mutual exclusion.
unsafe impl<T: Send> Sync for Protected<T> {}

impl<T> Protected<T> {
    /// Creates a cell belonging to the given logical section.
    pub fn new(kind: SectionKind, value: T) -> Self {
        Protected {
            kind,
            cell: UnsafeCell::new(value),
        }
    }

    /// Accesses the cell under a section guard.
    #[inline]
    pub fn with<R>(&self, section: &Section<'_>, f: impl FnOnce(&mut T) -> R) -> R {
        debug_assert!(
            section.kind() == self.kind || section.kind() == SectionKind::Global,
            "Protected cell {:?} accessed under the wrong section guard {:?}",
            self.kind,
            section.kind()
        );
        // SAFETY: the guard proves the policy's serialization discipline
        // for this section (lock held, coarse API lock held, or
        // single-thread checked).
        f(unsafe { &mut *self.cell.get() })
    }
}

impl<T> std::fmt::Debug for Protected<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Protected")
            .field("kind", &self.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn labels_match_paper() {
        assert_eq!(LockingMode::SingleThread.label(), "no-locking");
        assert_eq!(LockingMode::Coarse.label(), "coarse-grain");
        assert_eq!(LockingMode::Fine.label(), "fine-grain");
    }

    #[test]
    fn class_tables_are_generated_per_index() {
        assert_eq!(DRIVER_LOCK_CLASSES[0], "core.driver.0");
        assert_eq!(DRIVER_LOCK_CLASSES[15], "core.driver.15");
        assert_eq!(COLLECT_TX_LOCK_CLASSES[3], "core.collect.tx.3");
        assert_eq!(COLLECT_RX_LOCK_CLASSES[3], "core.collect.rx.3");
        assert_eq!(RETRANS_LOCK_CLASSES[0], "core.retrans.0");
        assert_eq!(RETRANS_LOCK_CLASSES[15], "core.retrans.15");
        assert_eq!(VCI_LOCK_CLASSES[0], "core.vci.0");
        assert_eq!(VCI_LOCK_CLASSES[15], "core.vci.15");
        // tx and rx shards of the same gate must be distinct classes.
        for (tx, rx) in COLLECT_TX_LOCK_CLASSES
            .iter()
            .zip(COLLECT_RX_LOCK_CLASSES.iter())
        {
            assert_ne!(tx, rx);
        }
    }

    #[test]
    fn coarse_locks_once_per_api_call() {
        let p = LockPolicy::new(LockingMode::Coarse, 1, 2);
        {
            let api = p.enter_api();
            let _c = p.enter(SectionKind::CollectRx(0));
            let _d = p.enter(SectionKind::Driver(1));
            drop(api); // sections carry no locks of their own
        }
        assert_eq!(p.global_stats().acquisitions(), 1);
        assert_eq!(p.collect_stats().acquisitions(), 0);
        assert_eq!(p.total_acquisitions(), 1);
    }

    #[test]
    fn fine_uses_separate_locks_and_free_api() {
        let p = LockPolicy::new(LockingMode::Fine, 1, 2);
        let _api = p.enter_api();
        // Distinct sections may be held simultaneously in fine mode.
        let g1 = p.enter(SectionKind::CollectRx(0));
        let g2 = p.enter(SectionKind::Driver(0));
        let g3 = p.enter(SectionKind::Driver(1));
        drop((g1, g2, g3));
        assert_eq!(p.global_stats().acquisitions(), 0);
        assert_eq!(p.collect_stats().acquisitions(), 1);
        assert_eq!(p.collect_rx_stats(0).acquisitions(), 1);
        assert_eq!(p.collect_tx_stats(0).acquisitions(), 0);
        assert_eq!(p.total_acquisitions(), 3);
    }

    #[test]
    fn collect_shards_are_independent_per_gate() {
        let p = LockPolicy::new(LockingMode::Fine, 4, 1);
        // Different gates' shards, and one gate's tx vs rx, may all be
        // held at once: they are distinct locks.
        let a = p.enter(SectionKind::CollectTx(0));
        let b = p.enter(SectionKind::CollectRx(0));
        let c = p.enter(SectionKind::CollectTx(3));
        let d = p.enter(SectionKind::CollectRx(3));
        drop((a, b, c, d));
        assert_eq!(p.collect_tx_stats(0).acquisitions(), 1);
        assert_eq!(p.collect_rx_stats(0).acquisitions(), 1);
        assert_eq!(p.collect_tx_stats(3).acquisitions(), 1);
        assert_eq!(p.collect_rx_stats(3).acquisitions(), 1);
        assert_eq!(p.collect_tx_stats(1).acquisitions(), 0);
        assert_eq!(p.collect_stats().acquisitions(), 4);
    }

    #[test]
    fn collect_stats_aggregates_contention() {
        let p = Arc::new(LockPolicy::new(LockingMode::Fine, 2, 1));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        let _g = p.enter(SectionKind::CollectTx(t % 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = p.collect_stats();
        assert_eq!(snap.acquisitions(), 4_000);
        assert_eq!(
            snap.contentions(),
            p.collect_tx_stats(0).contentions() + p.collect_tx_stats(1).contentions()
        );
        assert!(snap.contention_ratio() <= 1.0);
    }

    #[test]
    fn vci_sections_are_independent_locks() {
        let p = LockPolicy::new(LockingMode::Fine, 1, 4);
        // Distinct VCI lanes, and a lane's vci/retrans/driver locks, may
        // all be held at once (in hierarchy order): five distinct locks.
        let a = p.enter(SectionKind::Vci(0));
        let b = p.enter(SectionKind::Vci(3));
        let c = p.enter(SectionKind::Retrans(0));
        let d = p.enter(SectionKind::Driver(0));
        drop((d, c, b, a));
        assert_eq!(p.vci_stats(0).acquisitions(), 1);
        assert_eq!(p.vci_stats(3).acquisitions(), 1);
        assert_eq!(p.vci_stats(1).acquisitions(), 0);
        assert_eq!(p.total_acquisitions(), 4);
    }

    #[test]
    fn lockclass_overflow_is_counted_not_silent() {
        let counter = crate::metrics::lockclass_overflow();
        let before = counter.get();
        // 20 gates and 20 lanes exceed the 16-entry class tables by 4
        // each: 4 tx + 4 rx + 4 vci + 4 retrans + 4 driver locks fall
        // back to the shared overflow classes.
        let p = LockPolicy::new(LockingMode::Fine, 20, 20);
        assert_eq!(counter.get() - before, 20);
        // Overflowed locks still function, under the per-family shared
        // class (cycle detection coverage is exercised in
        // tests/lockclass_overflow.rs under the lockcheck feature).
        let g = p.enter(SectionKind::CollectTx(19));
        drop(g);
        let d = p.enter(SectionKind::Driver(19));
        drop(d);
        assert_eq!(p.collect_tx_stats(19).acquisitions(), 1);
    }

    #[test]
    fn in_table_lock_counts_no_overflow() {
        let counter = crate::metrics::lockclass_overflow();
        let before = counter.get();
        let _p = LockPolicy::new(LockingMode::Fine, 16, 16);
        assert_eq!(counter.get(), before);
    }

    #[test]
    fn single_thread_takes_no_lock() {
        let p = LockPolicy::new(LockingMode::SingleThread, 1, 1);
        let _api = p.enter_api();
        let _g = p.enter(SectionKind::CollectTx(0));
        let _g2 = p.enter(SectionKind::Driver(0));
        assert_eq!(p.total_acquisitions(), 0);
    }

    #[test]
    fn single_thread_rejects_second_thread() {
        let p = Arc::new(LockPolicy::new(LockingMode::SingleThread, 1, 1));
        let _g = p.enter_api();
        let p2 = Arc::clone(&p);
        let res = thread::spawn(move || {
            let _ = p2.enter_api();
        })
        .join();
        assert!(res.is_err(), "second thread must panic");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "without the API guard")]
    fn coarse_inner_section_requires_api_guard() {
        let p = LockPolicy::new(LockingMode::Coarse, 1, 1);
        let _ = p.enter(SectionKind::CollectRx(0));
    }

    #[test]
    fn protected_cell_round_trip() {
        let p = LockPolicy::new(LockingMode::Fine, 1, 1);
        let cell = Protected::new(SectionKind::CollectRx(0), vec![1, 2]);
        let g = p.enter(SectionKind::CollectRx(0));
        cell.with(&g, |v| v.push(3));
        assert_eq!(cell.with(&g, |v| v.clone()), vec![1, 2, 3]);
    }

    #[test]
    fn global_guard_covers_any_cell() {
        let p = LockPolicy::new(LockingMode::Coarse, 1, 1);
        let cell = Protected::new(SectionKind::Driver(0), 7u32);
        let api = p.enter_api();
        assert_eq!(cell.with(&api, |v| *v), 7);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "wrong section guard")]
    fn wrong_guard_caught_in_debug() {
        let p = LockPolicy::new(LockingMode::Fine, 1, 1);
        let cell = Protected::new(SectionKind::CollectRx(0), 0u32);
        let g = p.enter(SectionKind::Driver(0));
        cell.with(&g, |v| *v += 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "wrong section guard")]
    fn tx_guard_does_not_cover_rx_cell() {
        let p = LockPolicy::new(LockingMode::Fine, 1, 1);
        let cell = Protected::new(SectionKind::CollectRx(0), 0u32);
        let g = p.enter(SectionKind::CollectTx(0));
        cell.with(&g, |v| *v += 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "wrong section guard")]
    fn other_gates_guard_does_not_cover_cell() {
        let p = LockPolicy::new(LockingMode::Fine, 2, 1);
        let cell = Protected::new(SectionKind::CollectRx(0), 0u32);
        let g = p.enter(SectionKind::CollectRx(1));
        cell.with(&g, |v| *v += 1);
    }

    #[test]
    fn concurrent_fine_grain_counters_stay_exact() {
        let p = Arc::new(LockPolicy::new(LockingMode::Fine, 1, 1));
        let cell = Arc::new(Protected::new(SectionKind::CollectRx(0), 0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (p, c) = (Arc::clone(&p), Arc::clone(&cell));
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        let g = p.enter(SectionKind::CollectRx(0));
                        c.with(&g, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = p.enter(SectionKind::CollectRx(0));
        assert_eq!(cell.with(&g, |v| *v), 40_000);
    }

    #[test]
    fn concurrent_coarse_grain_counters_stay_exact() {
        let p = Arc::new(LockPolicy::new(LockingMode::Coarse, 1, 1));
        let cell = Arc::new(Protected::new(SectionKind::CollectRx(0), 0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (p, c) = (Arc::clone(&p), Arc::clone(&cell));
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        let api = p.enter_api();
                        c.with(&api, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let api = p.enter_api();
        assert_eq!(cell.with(&api, |v| *v), 40_000);
    }

    #[test]
    fn thread_ids_are_distinct_and_stable() {
        let a = thread_id();
        assert_eq!(a, thread_id());
        let b = thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
    }
}
