//! Communication requests: the handles `isend`/`irecv` return.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use nm_sync::{CompletionFlag, SpinLock, WaitStrategy};
use nm_trace::trace_event;

use crate::completion::{Completion, CompletionEvent};
use crate::error::CommError;
use crate::metrics;

/// Next request id; process-global so completion-queue events and the
/// async waker table can key on it across communicators.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Send or receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Posted by `isend`.
    Send,
    /// Posted by `irecv`.
    Recv,
}

#[derive(Debug)]
struct Inner {
    /// Unique id (assigned at post time, never reused).
    id: u64,
    kind: RequestKind,
    /// Where completion is delivered (flag / queue / handler / waker).
    completion: Completion,
    flag: CompletionFlag,
    /// Received payload (recv requests) — set before the flag is signalled.
    data: SpinLock<Option<Bytes>>,
    /// Tag of the matched message (for wildcard receives).
    matched_tag: SpinLock<Option<u64>>,
    /// Failure, if any — set before the flag is signalled.
    error: SpinLock<Option<CommError>>,
}

/// A non-blocking communication request (`nm_isend`/`nm_irecv` handle).
///
/// Cheap to clone (it is an `Arc`); the library keeps a clone until the
/// operation completes.
#[derive(Debug, Clone)]
pub struct Request {
    inner: Arc<Inner>,
}

impl Request {
    /// Flag-completion request (the pre-completion-object constructor;
    /// production posts go through [`Request::new_with`]).
    #[cfg(test)]
    pub(crate) fn new(kind: RequestKind) -> Self {
        Request::new_with(kind, Completion::Flag)
    }

    pub(crate) fn new_with(kind: RequestKind, completion: Completion) -> Self {
        Request {
            inner: Arc::new(Inner {
                // relaxed: a unique-id counter; only uniqueness matters,
                // nothing is ordered against the increment.
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                kind,
                completion,
                flag: CompletionFlag::new(),
                data: SpinLock::with_class("core.request.data", None),
                matched_tag: SpinLock::with_class("core.request.tag", None),
                error: SpinLock::with_class("core.request.error", None),
            }),
        }
    }

    /// The request's unique id (completion-queue events and async wakers
    /// key on it).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Send or receive.
    pub fn kind(&self) -> RequestKind {
        self.inner.kind
    }

    /// `true` once the operation has completed (successfully or not).
    pub fn is_complete(&self) -> bool {
        self.inner.flag.is_set()
    }

    /// The completion flag (for engine-level waiting).
    pub fn flag(&self) -> &CompletionFlag {
        &self.inner.flag
    }

    /// Marks the request complete (send side / data-less completion).
    pub(crate) fn complete(&self) {
        self.inner.flag.signal();
        self.deliver();
    }

    /// Completes a receive with its payload.
    #[cfg(test)]
    pub(crate) fn complete_with_data(&self, data: Bytes) {
        debug_assert_eq!(self.inner.kind, RequestKind::Recv);
        *self.inner.data.lock() = Some(data);
        self.inner.flag.signal();
        self.deliver();
    }

    /// Completes a receive with its payload and the tag it matched
    /// (wildcard receives).
    pub(crate) fn complete_with_tagged_data(&self, tag: u64, data: Bytes) {
        debug_assert_eq!(self.inner.kind, RequestKind::Recv);
        *self.inner.matched_tag.lock() = Some(tag);
        *self.inner.data.lock() = Some(data);
        self.inner.flag.signal();
        self.deliver();
    }

    /// Routes the completion through this request's [`Completion`]
    /// object. Runs in the delivery context (the thread that advanced
    /// the library, typically with the core API lock held), strictly
    /// *after* the flag is signalled so every observer of the event sees
    /// the terminal state.
    fn deliver(&self) {
        match &self.inner.completion {
            Completion::Flag => {
                trace_event!(CompletionDeliver, self.inner.id, 0u64);
            }
            Completion::Queue(cq) => {
                trace_event!(CompletionDeliver, self.inner.id, 1u64);
                cq.push(CompletionEvent::new(self.clone()));
            }
            Completion::Handler(h) => {
                trace_event!(CompletionDeliver, self.inner.id, 2u64);
                trace_event!(HandlerRun, self.inner.id);
                let _timer = metrics::handler_hist().timer();
                let ev = CompletionEvent::new(self.clone());
                h(&ev);
            }
            Completion::Waker(table) => {
                trace_event!(CompletionDeliver, self.inner.id, 3u64);
                table.wake(self.inner.id);
            }
        }
    }

    /// The tag a completed receive matched (`MPI_Status.tag`).
    ///
    /// `None` until completion (and for send requests).
    pub fn matched_tag(&self) -> Option<u64> {
        if !self.is_complete() {
            return None;
        }
        *self.inner.matched_tag.lock()
    }

    /// Completes the request with an error.
    #[allow(dead_code)] // kept for substrate-failure injection in tests
    pub(crate) fn fail(&self, error: CommError) {
        *self.inner.error.lock() = Some(error);
        self.inner.flag.signal();
        self.deliver();
    }

    /// Busy-waits on the raw flag without polling anything.
    ///
    /// Only correct when some other agent (progression thread, scheduler
    /// hooks, another thread's polling) is driving the library; prefer
    /// waiting through the core / progression engine.
    pub fn wait_flag_only(&self, strategy: WaitStrategy) {
        self.inner.flag.wait(strategy);
    }

    /// Takes the completion error, if the operation failed.
    pub fn take_error(&self) -> Option<CommError> {
        self.inner.error.lock().take()
    }

    /// Takes the received payload.
    ///
    /// Returns `None` for send requests, incomplete requests, or when the
    /// payload was already taken.
    pub fn take_data(&self) -> Option<Bytes> {
        if !self.is_complete() {
            return None;
        }
        self.inner.data.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_completion() {
        let r = Request::new(RequestKind::Send);
        assert!(!r.is_complete());
        r.complete();
        assert!(r.is_complete());
        assert_eq!(r.take_data(), None);
        assert_eq!(r.take_error(), None);
    }

    #[test]
    fn recv_completion_carries_data() {
        let r = Request::new(RequestKind::Recv);
        assert_eq!(r.take_data(), None, "no data before completion");
        r.complete_with_data(Bytes::from_static(b"payload"));
        assert!(r.is_complete());
        assert_eq!(r.take_data(), Some(Bytes::from_static(b"payload")));
        assert_eq!(r.take_data(), None, "data taken once");
    }

    #[test]
    fn failure_carries_error() {
        let r = Request::new(RequestKind::Send);
        r.fail(CommError::MessageTooLarge { len: 1 });
        assert!(r.is_complete());
        assert_eq!(r.take_error(), Some(CommError::MessageTooLarge { len: 1 }));
    }

    #[test]
    fn clones_share_state() {
        let r = Request::new(RequestKind::Recv);
        let r2 = r.clone();
        r.complete_with_data(Bytes::from_static(b"x"));
        assert!(r2.is_complete());
        assert_eq!(r2.take_data(), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn cross_thread_wait() {
        let r = Request::new(RequestKind::Send);
        let r2 = r.clone();
        let h = std::thread::spawn(move || {
            r2.wait_flag_only(WaitStrategy::Passive);
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.complete();
        assert!(h.join().unwrap());
    }
}
