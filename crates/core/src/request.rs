//! Communication requests: the handles `isend`/`irecv` return.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use nm_sync::{CompletionFlag, SpinLock, WaitStrategy};
use nm_trace::trace_event;

use crate::completion::{Completion, CompletionEvent};
use crate::error::CommError;
use crate::metrics;

/// Next request id; process-global so completion-queue events and the
/// async waker table can key on it across communicators.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Send or receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Posted by `isend`.
    Send,
    /// Posted by `irecv`.
    Recv,
}

#[derive(Debug)]
struct Inner {
    /// Unique id (assigned at post time, never reused).
    id: u64,
    /// Observability span id (0 when tracing is compiled out). Threaded
    /// through the collect shards, wire frames, and waker table so every
    /// event of this message joins one timeline.
    span: u64,
    kind: RequestKind,
    /// Where completion is delivered (flag / queue / handler / waker).
    completion: Completion,
    /// Finish arbiter: exactly one of complete / fail / cancel wins the
    /// transition out of the live state, so completion is delivered once
    /// even when cancellation races delivery.
    finished: AtomicBool,
    flag: CompletionFlag,
    /// Received payload (recv requests) — set before the flag is signalled.
    data: SpinLock<Option<Bytes>>,
    /// Tag of the matched message (for wildcard receives).
    matched_tag: SpinLock<Option<u64>>,
    /// Failure, if any — set before the flag is signalled.
    error: SpinLock<Option<CommError>>,
}

/// A non-blocking communication request (`nm_isend`/`nm_irecv` handle).
///
/// Cheap to clone (it is an `Arc`); the library keeps a clone until the
/// operation completes.
#[derive(Debug, Clone)]
pub struct Request {
    inner: Arc<Inner>,
}

impl Request {
    /// Flag-completion request (the pre-completion-object constructor;
    /// production posts go through [`Request::new_with`]).
    #[cfg(test)]
    pub(crate) fn new(kind: RequestKind) -> Self {
        Request::new_with(kind, Completion::Flag)
    }

    pub(crate) fn new_with(kind: RequestKind, completion: Completion) -> Self {
        Request {
            inner: Arc::new(Inner {
                // relaxed: a unique-id counter; only uniqueness matters,
                // nothing is ordered against the increment.
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                span: nm_trace::next_span_id(),
                kind,
                completion,
                finished: AtomicBool::new(false),
                flag: CompletionFlag::new(),
                data: SpinLock::with_class("core.request.data", None),
                matched_tag: SpinLock::with_class("core.request.tag", None),
                error: SpinLock::with_class("core.request.error", None),
            }),
        }
    }

    /// The request's unique id (completion-queue events and async wakers
    /// key on it).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The request's observability span id (0 = tracing compiled out).
    pub fn span(&self) -> u64 {
        self.inner.span
    }

    /// Send or receive.
    pub fn kind(&self) -> RequestKind {
        self.inner.kind
    }

    /// `true` once the operation has completed (successfully or not).
    pub fn is_complete(&self) -> bool {
        self.inner.flag.is_set()
    }

    /// The completion flag (for engine-level waiting).
    pub fn flag(&self) -> &CompletionFlag {
        &self.inner.flag
    }

    /// Claims the live→finished transition. Exactly one caller over the
    /// request's lifetime gets `true`; that caller (and only it) must
    /// set the outcome, signal the flag, and deliver.
    fn try_finish(&self) -> bool {
        self.inner
            .finished
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks the request complete (send side / data-less completion).
    /// No-op if the request already finished (e.g. was cancelled).
    pub(crate) fn complete(&self) {
        if !self.try_finish() {
            return;
        }
        self.inner.flag.signal();
        self.deliver();
    }

    /// Completes a receive with its payload.
    #[cfg(test)]
    pub(crate) fn complete_with_data(&self, data: Bytes) {
        debug_assert_eq!(self.inner.kind, RequestKind::Recv);
        if !self.try_finish() {
            return;
        }
        *self.inner.data.lock() = Some(data);
        self.inner.flag.signal();
        self.deliver();
    }

    /// Completes a receive with its payload and the tag it matched
    /// (wildcard receives). No-op if the request already finished.
    pub(crate) fn complete_with_tagged_data(&self, tag: u64, data: Bytes) {
        debug_assert_eq!(self.inner.kind, RequestKind::Recv);
        if !self.try_finish() {
            return;
        }
        *self.inner.matched_tag.lock() = Some(tag);
        *self.inner.data.lock() = Some(data);
        self.inner.flag.signal();
        self.deliver();
    }

    /// Routes the completion through this request's [`Completion`]
    /// object. Runs in the delivery context (the thread that advanced
    /// the library, typically with the core API lock held), strictly
    /// *after* the flag is signalled so every observer of the event sees
    /// the terminal state.
    fn deliver(&self) {
        if self.inner.span != 0 {
            let path: u64 = match &self.inner.completion {
                Completion::Flag => 0,
                Completion::Queue(_) => 1,
                Completion::Handler(_) => 2,
                Completion::Waker(_) => 3,
            };
            trace_event!(SpanComplete, self.inner.span, path);
        }
        match &self.inner.completion {
            Completion::Flag => {
                trace_event!(CompletionDeliver, self.inner.id, 0u64);
            }
            Completion::Queue(cq) => {
                trace_event!(CompletionDeliver, self.inner.id, 1u64);
                cq.push(CompletionEvent::new(self.clone()));
            }
            Completion::Handler(h) => {
                trace_event!(CompletionDeliver, self.inner.id, 2u64);
                trace_event!(HandlerRun, self.inner.id);
                let _timer = metrics::handler_hist().timer();
                let ev = CompletionEvent::new(self.clone());
                h(&ev);
            }
            Completion::Waker(table) => {
                trace_event!(CompletionDeliver, self.inner.id, 3u64);
                table.wake(self.inner.id);
            }
        }
    }

    /// The tag a completed receive matched (`MPI_Status.tag`).
    ///
    /// `None` until completion (and for send requests).
    pub fn matched_tag(&self) -> Option<u64> {
        if !self.is_complete() {
            return None;
        }
        *self.inner.matched_tag.lock()
    }

    /// Finishes the request with [`CommError::Timeout`] — the deadline
    /// side of `wait_deadline`/`expire_after`. Returns `true` if this
    /// call won the finish transition; `false` if the operation
    /// completed (or was cancelled) first, in which case that outcome
    /// stands.
    pub(crate) fn expire(&self) -> bool {
        if !self.try_finish() {
            return false;
        }
        *self.inner.error.lock() = Some(CommError::Timeout);
        self.inner.flag.signal();
        self.deliver();
        nm_obs::flight::record_failure("timeout", self.inner.id, self.inner.span);
        true
    }

    /// Completes the request with an error. No-op if already finished.
    pub(crate) fn fail(&self, error: CommError) {
        if !self.try_finish() {
            return;
        }
        let reason = match error {
            CommError::Timeout => Some("timeout"),
            CommError::PeerUnreachable => Some("peer-unreachable"),
            _ => None,
        };
        *self.inner.error.lock() = Some(error);
        self.inner.flag.signal();
        self.deliver();
        if let Some(reason) = reason {
            nm_obs::flight::record_failure(reason, self.inner.id, self.inner.span);
        }
    }

    /// Cancels the request if it has not already completed.
    ///
    /// Returns `true` if this call won the race and the request finished
    /// with [`CommError::Cancelled`]; `false` if the operation had
    /// already completed (or was cancelled/failed) — its original
    /// outcome stands. The finish transition is a single CAS, so a
    /// cancel racing completion delivery resolves to exactly one of the
    /// two outcomes and completion is delivered exactly once either way.
    ///
    /// Cancelling only detaches the *request*: a cancelled receive's
    /// posting is reaped by the core's pruning (the message, if it ever
    /// arrives, is treated as unexpected); a cancelled send whose
    /// packet was already injected may still be delivered to the peer.
    pub fn cancel(&self) -> bool {
        if !self.try_finish() {
            return false;
        }
        trace_event!(RequestCancel, self.inner.id);
        metrics::cancelled().incr();
        *self.inner.error.lock() = Some(CommError::Cancelled);
        self.inner.flag.signal();
        self.deliver();
        true
    }

    /// Busy-waits on the raw flag without polling anything.
    ///
    /// Only correct when some other agent (progression thread, scheduler
    /// hooks, another thread's polling) is driving the library; prefer
    /// waiting through the core / progression engine.
    pub fn wait_flag_only(&self, strategy: WaitStrategy) {
        self.inner.flag.wait(strategy);
    }

    /// Takes the completion error, if the operation failed.
    pub fn take_error(&self) -> Option<CommError> {
        self.inner.error.lock().take()
    }

    /// Takes the received payload.
    ///
    /// Returns `None` for send requests, incomplete requests, or when the
    /// payload was already taken.
    pub fn take_data(&self) -> Option<Bytes> {
        if !self.is_complete() {
            return None;
        }
        self.inner.data.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_completion() {
        let r = Request::new(RequestKind::Send);
        assert!(!r.is_complete());
        r.complete();
        assert!(r.is_complete());
        assert_eq!(r.take_data(), None);
        assert_eq!(r.take_error(), None);
    }

    #[test]
    fn recv_completion_carries_data() {
        let r = Request::new(RequestKind::Recv);
        assert_eq!(r.take_data(), None, "no data before completion");
        r.complete_with_data(Bytes::from_static(b"payload"));
        assert!(r.is_complete());
        assert_eq!(r.take_data(), Some(Bytes::from_static(b"payload")));
        assert_eq!(r.take_data(), None, "data taken once");
    }

    #[test]
    fn failure_carries_error() {
        let r = Request::new(RequestKind::Send);
        r.fail(CommError::MessageTooLarge { len: 1 });
        assert!(r.is_complete());
        assert_eq!(r.take_error(), Some(CommError::MessageTooLarge { len: 1 }));
    }

    #[test]
    fn clones_share_state() {
        let r = Request::new(RequestKind::Recv);
        let r2 = r.clone();
        r.complete_with_data(Bytes::from_static(b"x"));
        assert!(r2.is_complete());
        assert_eq!(r2.take_data(), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn cancel_before_completion_wins() {
        let r = Request::new(RequestKind::Recv);
        assert!(r.cancel());
        assert!(r.is_complete());
        assert_eq!(r.take_error(), Some(CommError::Cancelled));
        assert_eq!(r.take_data(), None);
    }

    #[test]
    fn cancel_after_completion_is_a_noop() {
        let r = Request::new(RequestKind::Recv);
        r.complete_with_data(Bytes::from_static(b"won"));
        assert!(!r.cancel(), "completed request cannot be cancelled");
        assert_eq!(r.take_error(), None);
        assert_eq!(r.take_data(), Some(Bytes::from_static(b"won")));
    }

    #[test]
    fn completion_after_cancel_is_a_noop() {
        let r = Request::new(RequestKind::Recv);
        assert!(r.cancel());
        r.complete_with_data(Bytes::from_static(b"late"));
        assert_eq!(r.take_data(), None, "late data must be discarded");
        assert_eq!(r.take_error(), Some(CommError::Cancelled));
    }

    #[test]
    fn cancel_is_idempotent() {
        let r = Request::new(RequestKind::Send);
        assert!(r.cancel());
        assert!(!r.cancel());
    }

    #[test]
    fn racing_cancel_and_complete_resolve_to_one_outcome() {
        for _ in 0..200 {
            let r = Request::new(RequestKind::Send);
            let rc = r.clone();
            let canceller = std::thread::spawn(move || rc.cancel());
            r.complete();
            let cancelled = canceller.join().unwrap();
            assert!(r.is_complete());
            let err = r.take_error();
            if cancelled {
                assert_eq!(err, Some(CommError::Cancelled));
            } else {
                assert_eq!(err, None);
            }
        }
    }

    #[test]
    fn cross_thread_wait() {
        let r = Request::new(RequestKind::Send);
        let r2 = r.clone();
        let h = std::thread::spawn(move || {
            r2.wait_flag_only(WaitStrategy::Passive);
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.complete();
        assert!(h.join().unwrap());
    }
}
