//! Wire format: what the transfer layer actually puts on a NIC.
//!
//! Every wire packet is a container of one or more *entries*; aggregation
//! (the optimization layer coalescing several small messages into one
//! packet) is therefore free at the format level — an aggregated packet is
//! just a container with `count > 1`. Since the reliability layer, every
//! container travels inside a *frame* that adds integrity and sequencing:
//!
//! ```text
//! frame   := crc:u32 wseq:u32 ack:u32 flags:u8 [span:u64] packet
//! packet  := count:u16 entry*
//! entry   := kind:u8 tag:u64 seq:u32 aux:u32 len:u32 payload[len]
//! ```
//!
//! `crc` is a CRC-32 (IEEE) over everything after itself; a frame whose
//! checksum does not match is dropped before any entry is decoded
//! ([`WireError::BadChecksum`]). `wseq`/`ack` are the per-wire send
//! sequence number and cumulative acknowledgement of the reliability
//! protocol; on an unreliable wire (reliability disabled) the
//! [`FRAME_RELIABLE`] flag is clear and both fields are ignored.
//! [`FRAME_ACK_ONLY`] marks a bare acknowledgement with no packet.
//! [`FRAME_SPAN`] marks an 8-byte observability span id between the
//! flags byte and the packet; frames with span 0 omit it entirely, so
//! trace-off builds pay zero wire bytes.
//!
//! Entry kinds:
//!
//! * `EAGER` — a complete small message; `len` bytes of payload.
//! * `RTS`   — rendezvous request-to-send; `aux` = total message length.
//! * `CTS`   — clear-to-send, echoing the RTS `tag`/`seq`.
//! * `DATA`  — one rendezvous chunk; `aux` = offset into the message.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Per-entry header size in bytes.
pub const ENTRY_HEADER: usize = 1 + 8 + 4 + 4 + 4;
/// Container header size in bytes.
pub const PACKET_HEADER: usize = 2;
/// Frame header size in bytes (crc + wseq + ack + flags).
pub const FRAME_HEADER: usize = 4 + 4 + 4 + 1;
/// Extra frame bytes when [`FRAME_SPAN`] is set (the span id).
pub const FRAME_SPAN_BYTES: usize = 8;

/// Frame flag: `wseq`/`ack` are live reliability-protocol fields.
pub const FRAME_RELIABLE: u8 = 1 << 0;
/// Frame flag: bare acknowledgement, carries no packet.
pub const FRAME_ACK_ONLY: u8 = 1 << 1;
/// Frame flag: a `u64` observability span id follows the flags byte.
pub const FRAME_SPAN: u8 = 1 << 2;
const FRAME_FLAG_MASK: u8 = FRAME_RELIABLE | FRAME_ACK_ONLY | FRAME_SPAN;

/// One logical unit inside a wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A complete eager message.
    Eager {
        /// Message tag.
        tag: u64,
        /// Per-gate message sequence number.
        seq: u32,
        /// Payload.
        data: Bytes,
    },
    /// Rendezvous handshake: request to send `total` bytes.
    Rts {
        /// Message tag.
        tag: u64,
        /// Rendezvous id (the sender's sequence number).
        seq: u32,
        /// Total message length.
        total: u32,
    },
    /// Rendezvous handshake: receiver is ready.
    Cts {
        /// Echoed tag.
        tag: u64,
        /// Echoed rendezvous id.
        seq: u32,
    },
    /// One chunk of a rendezvous transfer.
    Data {
        /// Message tag.
        tag: u64,
        /// Rendezvous id.
        seq: u32,
        /// Offset of this chunk in the full message.
        offset: u32,
        /// Chunk payload.
        data: Bytes,
    },
}

const KIND_EAGER: u8 = 1;
const KIND_RTS: u8 = 2;
const KIND_CTS: u8 = 3;
const KIND_DATA: u8 = 4;

impl Entry {
    /// Encoded size of this entry on the wire.
    pub fn wire_size(&self) -> usize {
        ENTRY_HEADER
            + match self {
                Entry::Eager { data, .. } | Entry::Data { data, .. } => data.len(),
                _ => 0,
            }
    }

    /// Payload length carried (0 for control entries).
    pub fn payload_len(&self) -> usize {
        match self {
            Entry::Eager { data, .. } | Entry::Data { data, .. } => data.len(),
            _ => 0,
        }
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Entry::Eager { tag, seq, data } => {
                buf.put_u8(KIND_EAGER);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(0);
                buf.put_u32(data.len() as u32);
                buf.put_slice(data);
            }
            Entry::Rts { tag, seq, total } => {
                buf.put_u8(KIND_RTS);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(*total);
                buf.put_u32(0);
            }
            Entry::Cts { tag, seq } => {
                buf.put_u8(KIND_CTS);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(0);
                buf.put_u32(0);
            }
            Entry::Data {
                tag,
                seq,
                offset,
                data,
            } => {
                buf.put_u8(KIND_DATA);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(*offset);
                buf.put_u32(data.len() as u32);
                buf.put_slice(data);
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Entry, WireError> {
        if buf.remaining() < ENTRY_HEADER {
            return Err(WireError::Truncated);
        }
        let kind = buf.get_u8();
        let tag = buf.get_u64();
        let seq = buf.get_u32();
        let aux = buf.get_u32();
        let len = buf.get_u32() as usize;
        match kind {
            KIND_EAGER | KIND_DATA => {
                if buf.remaining() < len {
                    return Err(WireError::Truncated);
                }
                let data = buf.split_to(len);
                Ok(if kind == KIND_EAGER {
                    Entry::Eager { tag, seq, data }
                } else {
                    Entry::Data {
                        tag,
                        seq,
                        offset: aux,
                        data,
                    }
                })
            }
            KIND_RTS => {
                if len != 0 {
                    return Err(WireError::Malformed("RTS with payload"));
                }
                Ok(Entry::Rts {
                    tag,
                    seq,
                    total: aux,
                })
            }
            KIND_CTS => {
                if len != 0 {
                    return Err(WireError::Malformed("CTS with payload"));
                }
                Ok(Entry::Cts { tag, seq })
            }
            k => Err(WireError::UnknownKind(k)),
        }
    }
}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Packet shorter than its headers claim.
    Truncated,
    /// Unknown entry kind byte.
    UnknownKind(u8),
    /// Structurally invalid entry.
    Malformed(&'static str),
    /// Frame checksum mismatch (corrupted in transit).
    BadChecksum {
        /// CRC the frame header claims.
        expected: u32,
        /// CRC computed over the received body.
        got: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::UnknownKind(k) => write!(f, "unknown entry kind {k}"),
            WireError::Malformed(why) => write!(f, "malformed packet: {why}"),
            WireError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
///
/// Computed in software so the integrity layer has no dependencies; the
/// table is built at compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A decoded frame header plus its (still encoded) packet payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Per-wire send sequence number (live iff [`FRAME_RELIABLE`]).
    pub wseq: u32,
    /// Cumulative ack: all wire sequence numbers `< ack` received.
    pub ack: u32,
    /// Frame flags ([`FRAME_RELIABLE`], [`FRAME_ACK_ONLY`],
    /// [`FRAME_SPAN`]).
    pub flags: u8,
    /// Observability span id of the first message aboard (0 = none).
    pub span: u64,
    /// The contained wire packet (empty for ack-only frames).
    pub payload: Bytes,
}

impl Frame {
    /// Whether `wseq`/`ack` are live reliability-protocol fields.
    pub fn reliable(&self) -> bool {
        self.flags & FRAME_RELIABLE != 0
    }

    /// Whether this is a bare acknowledgement with no packet.
    pub fn ack_only(&self) -> bool {
        self.flags & FRAME_ACK_ONLY != 0
    }
}

/// Wraps an encoded packet in a checksummed frame.
///
/// `span` is the observability span id of the first message aboard;
/// `0` ("no span", the value in every trace-off build) clears
/// [`FRAME_SPAN`] and the frame carries no span bytes at all.
pub fn encode_frame(wseq: u32, ack: u32, flags: u8, span: u64, payload: &[u8]) -> Bytes {
    let span_bytes = if span != 0 { FRAME_SPAN_BYTES } else { 0 };
    let flags = if span != 0 {
        flags | FRAME_SPAN
    } else {
        flags & !FRAME_SPAN
    };
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + span_bytes + payload.len());
    buf.put_u32(0); // crc placeholder
    buf.put_u32(wseq);
    buf.put_u32(ack);
    buf.put_u8(flags);
    if span != 0 {
        buf.put_u64(span);
    }
    buf.put_slice(payload);
    let crc = crc32(&buf[4..]);
    buf[0..4].copy_from_slice(&crc.to_be_bytes());
    buf.freeze()
}

/// Verifies and strips a frame header.
///
/// A frame that fails the checksum is reported as
/// [`WireError::BadChecksum`] *without* decoding any entry, so corrupted
/// bytes never reach protocol dispatch.
pub fn decode_frame(mut frame: Bytes) -> Result<Frame, WireError> {
    if frame.remaining() < FRAME_HEADER {
        return Err(WireError::Truncated);
    }
    let expected = frame.get_u32();
    let got = crc32(&frame);
    if expected != got {
        return Err(WireError::BadChecksum { expected, got });
    }
    let wseq = frame.get_u32();
    let ack = frame.get_u32();
    let flags = frame.get_u8();
    if flags & !FRAME_FLAG_MASK != 0 {
        return Err(WireError::Malformed("unknown frame flags"));
    }
    let span = if flags & FRAME_SPAN != 0 {
        if frame.remaining() < FRAME_SPAN_BYTES {
            return Err(WireError::Truncated);
        }
        frame.get_u64()
    } else {
        0
    };
    if flags & FRAME_ACK_ONLY != 0 && frame.has_remaining() {
        return Err(WireError::Malformed("ack-only frame with payload"));
    }
    Ok(Frame {
        wseq,
        ack,
        flags,
        span,
        payload: frame,
    })
}

/// Encodes a container of entries into one wire packet.
///
/// # Panics
/// Panics if `entries` is empty or longer than `u16::MAX`.
pub fn encode_packet(entries: &[Entry]) -> Bytes {
    assert!(!entries.is_empty(), "cannot encode an empty packet");
    assert!(entries.len() <= u16::MAX as usize, "too many entries");
    let size = PACKET_HEADER + entries.iter().map(Entry::wire_size).sum::<usize>();
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u16(entries.len() as u16);
    for e in entries {
        e.encode_into(&mut buf);
    }
    debug_assert_eq!(buf.len(), size);
    buf.freeze()
}

/// Decodes one wire packet into its entries.
pub fn decode_packet(mut packet: Bytes) -> Result<Vec<Entry>, WireError> {
    if packet.remaining() < PACKET_HEADER {
        return Err(WireError::Truncated);
    }
    let count = packet.get_u16() as usize;
    if count == 0 {
        return Err(WireError::Malformed("empty container"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(Entry::decode_from(&mut packet)?);
    }
    if packet.has_remaining() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: Vec<Entry>) {
        let encoded = encode_packet(&entries);
        let decoded = decode_packet(encoded).expect("decode");
        assert_eq!(decoded, entries);
    }

    #[test]
    fn eager_roundtrip() {
        roundtrip(vec![Entry::Eager {
            tag: 7,
            seq: 3,
            data: Bytes::from_static(b"hello"),
        }]);
    }

    #[test]
    fn control_roundtrips() {
        roundtrip(vec![Entry::Rts {
            tag: 1,
            seq: 2,
            total: 1 << 20,
        }]);
        roundtrip(vec![Entry::Cts { tag: 1, seq: 2 }]);
    }

    #[test]
    fn data_chunk_roundtrip() {
        roundtrip(vec![Entry::Data {
            tag: 9,
            seq: 4,
            offset: 4096,
            data: Bytes::from(vec![0xAB; 1000]),
        }]);
    }

    #[test]
    fn aggregated_container_roundtrip() {
        roundtrip(vec![
            Entry::Eager {
                tag: 1,
                seq: 0,
                data: Bytes::from_static(b"a"),
            },
            Entry::Rts {
                tag: 2,
                seq: 1,
                total: 99999,
            },
            Entry::Eager {
                tag: 3,
                seq: 2,
                data: Bytes::from_static(b"bc"),
            },
        ]);
    }

    #[test]
    fn empty_payload_eager_roundtrip() {
        roundtrip(vec![Entry::Eager {
            tag: 0,
            seq: 0,
            data: Bytes::new(),
        }]);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let entries = vec![
            Entry::Eager {
                tag: 1,
                seq: 0,
                data: Bytes::from_static(b"xyz"),
            },
            Entry::Cts { tag: 1, seq: 0 },
        ];
        let expected = PACKET_HEADER + entries.iter().map(Entry::wire_size).sum::<usize>();
        assert_eq!(encode_packet(&entries).len(), expected);
    }

    #[test]
    fn truncated_packets_rejected() {
        let good = encode_packet(&[Entry::Eager {
            tag: 1,
            seq: 0,
            data: Bytes::from_static(b"abcdef"),
        }]);
        for cut in [0, 1, PACKET_HEADER, good.len() - 1] {
            let bad = good.slice(0..cut);
            assert!(
                decode_packet(bad).is_err(),
                "cut at {cut} should fail to decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = BytesMut::from(&encode_packet(&[Entry::Cts { tag: 0, seq: 0 }])[..]);
        bytes.put_u8(0xFF);
        assert_eq!(
            decode_packet(bytes.freeze()),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(1);
        buf.put_u8(0xEE);
        buf.put_u64(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        assert_eq!(
            decode_packet(buf.freeze()),
            Err(WireError::UnknownKind(0xEE))
        );
    }

    #[test]
    fn zero_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        assert!(decode_packet(buf.freeze()).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn frame_roundtrip() {
        let packet = encode_packet(&[Entry::Eager {
            tag: 7,
            seq: 3,
            data: Bytes::from_static(b"hello"),
        }]);
        let framed = encode_frame(42, 17, FRAME_RELIABLE, 0, &packet);
        assert_eq!(framed.len(), FRAME_HEADER + packet.len());
        let frame = decode_frame(framed).expect("decode");
        assert_eq!(frame.wseq, 42);
        assert_eq!(frame.ack, 17);
        assert!(frame.reliable());
        assert!(!frame.ack_only());
        assert_eq!(frame.span, 0);
        assert_eq!(frame.payload, packet);
        assert!(decode_packet(frame.payload).is_ok());
    }

    #[test]
    fn span_frame_roundtrip() {
        let packet = encode_packet(&[Entry::Cts { tag: 1, seq: 2 }]);
        let framed = encode_frame(8, 3, FRAME_RELIABLE, 0xFEED_F00D, &packet);
        assert_eq!(framed.len(), FRAME_HEADER + FRAME_SPAN_BYTES + packet.len());
        let frame = decode_frame(framed).expect("decode");
        assert_eq!(frame.span, 0xFEED_F00D);
        assert!(frame.flags & FRAME_SPAN != 0);
        assert_eq!(frame.payload, packet);
    }

    #[test]
    fn zero_span_carries_no_span_bytes() {
        // Even if the caller passes FRAME_SPAN explicitly, span 0 must
        // clear it: decoders would otherwise read payload as a span.
        let framed = encode_frame(0, 0, FRAME_SPAN, 0, b"xy");
        assert_eq!(framed.len(), FRAME_HEADER + 2);
        let frame = decode_frame(framed).expect("decode");
        assert_eq!(frame.span, 0);
        assert_eq!(frame.flags & FRAME_SPAN, 0);
        assert_eq!(&frame.payload[..], b"xy");
    }

    #[test]
    fn span_frame_truncated_before_span_rejected() {
        let framed = encode_frame(1, 1, FRAME_RELIABLE, 77, b"payload");
        // Cut inside the span field: CRC fails first (covers all bytes),
        // so re-frame a short body with a valid checksum instead.
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u32(1);
        buf.put_u32(1);
        buf.put_u8(FRAME_SPAN);
        buf.put_u32(0xDEAD); // only 4 of the 8 span bytes
        let crc = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(decode_frame(buf.freeze()), Err(WireError::Truncated));
        // And the well-formed frame still decodes.
        assert_eq!(decode_frame(framed).unwrap().span, 77);
    }

    #[test]
    fn ack_only_frame_roundtrip() {
        let framed = encode_frame(0, 9, FRAME_RELIABLE | FRAME_ACK_ONLY, 0, &[]);
        let frame = decode_frame(framed).expect("decode");
        assert!(frame.ack_only());
        assert_eq!(frame.ack, 9);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let packet = encode_packet(&[Entry::Eager {
            tag: 1,
            seq: 0,
            data: Bytes::from_static(b"integrity"),
        }]);
        let framed = encode_frame(5, 2, FRAME_RELIABLE, 0x5EED, &packet);
        for i in 0..framed.len() {
            let mut bad = BytesMut::from(&framed[..]);
            bad[i] ^= 0xFF;
            let err = decode_frame(bad.freeze()).expect_err("flip must be caught");
            assert!(
                matches!(err, WireError::BadChecksum { .. }),
                "flip at {i} gave {err:?}"
            );
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let framed = encode_frame(0, 0, 0, 0, b"xy");
        for cut in 0..FRAME_HEADER {
            assert_eq!(
                decode_frame(framed.slice(0..cut)),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_frame_flags_rejected() {
        // Re-frame with an undefined flag bit but a valid checksum.
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u8(0x80);
        let crc = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            decode_frame(buf.freeze()),
            Err(WireError::Malformed("unknown frame flags"))
        );
    }

    #[test]
    fn ack_only_with_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(3);
        buf.put_u8(FRAME_RELIABLE | FRAME_ACK_ONLY);
        buf.put_slice(b"stray");
        let crc = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            decode_frame(buf.freeze()),
            Err(WireError::Malformed("ack-only frame with payload"))
        );
    }
}
