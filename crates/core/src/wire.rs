//! Wire format: what the transfer layer actually puts on a NIC.
//!
//! Every wire packet is a container of one or more *entries*; aggregation
//! (the optimization layer coalescing several small messages into one
//! packet) is therefore free at the format level — an aggregated packet is
//! just a container with `count > 1`.
//!
//! ```text
//! packet  := count:u16 entry*
//! entry   := kind:u8 tag:u64 seq:u32 aux:u32 len:u32 payload[len]
//! ```
//!
//! Entry kinds:
//!
//! * `EAGER` — a complete small message; `len` bytes of payload.
//! * `RTS`   — rendezvous request-to-send; `aux` = total message length.
//! * `CTS`   — clear-to-send, echoing the RTS `tag`/`seq`.
//! * `DATA`  — one rendezvous chunk; `aux` = offset into the message.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Per-entry header size in bytes.
pub const ENTRY_HEADER: usize = 1 + 8 + 4 + 4 + 4;
/// Container header size in bytes.
pub const PACKET_HEADER: usize = 2;

/// One logical unit inside a wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A complete eager message.
    Eager {
        /// Message tag.
        tag: u64,
        /// Per-gate message sequence number.
        seq: u32,
        /// Payload.
        data: Bytes,
    },
    /// Rendezvous handshake: request to send `total` bytes.
    Rts {
        /// Message tag.
        tag: u64,
        /// Rendezvous id (the sender's sequence number).
        seq: u32,
        /// Total message length.
        total: u32,
    },
    /// Rendezvous handshake: receiver is ready.
    Cts {
        /// Echoed tag.
        tag: u64,
        /// Echoed rendezvous id.
        seq: u32,
    },
    /// One chunk of a rendezvous transfer.
    Data {
        /// Message tag.
        tag: u64,
        /// Rendezvous id.
        seq: u32,
        /// Offset of this chunk in the full message.
        offset: u32,
        /// Chunk payload.
        data: Bytes,
    },
}

const KIND_EAGER: u8 = 1;
const KIND_RTS: u8 = 2;
const KIND_CTS: u8 = 3;
const KIND_DATA: u8 = 4;

impl Entry {
    /// Encoded size of this entry on the wire.
    pub fn wire_size(&self) -> usize {
        ENTRY_HEADER
            + match self {
                Entry::Eager { data, .. } | Entry::Data { data, .. } => data.len(),
                _ => 0,
            }
    }

    /// Payload length carried (0 for control entries).
    pub fn payload_len(&self) -> usize {
        match self {
            Entry::Eager { data, .. } | Entry::Data { data, .. } => data.len(),
            _ => 0,
        }
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Entry::Eager { tag, seq, data } => {
                buf.put_u8(KIND_EAGER);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(0);
                buf.put_u32(data.len() as u32);
                buf.put_slice(data);
            }
            Entry::Rts { tag, seq, total } => {
                buf.put_u8(KIND_RTS);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(*total);
                buf.put_u32(0);
            }
            Entry::Cts { tag, seq } => {
                buf.put_u8(KIND_CTS);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(0);
                buf.put_u32(0);
            }
            Entry::Data {
                tag,
                seq,
                offset,
                data,
            } => {
                buf.put_u8(KIND_DATA);
                buf.put_u64(*tag);
                buf.put_u32(*seq);
                buf.put_u32(*offset);
                buf.put_u32(data.len() as u32);
                buf.put_slice(data);
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Entry, WireError> {
        if buf.remaining() < ENTRY_HEADER {
            return Err(WireError::Truncated);
        }
        let kind = buf.get_u8();
        let tag = buf.get_u64();
        let seq = buf.get_u32();
        let aux = buf.get_u32();
        let len = buf.get_u32() as usize;
        match kind {
            KIND_EAGER | KIND_DATA => {
                if buf.remaining() < len {
                    return Err(WireError::Truncated);
                }
                let data = buf.split_to(len);
                Ok(if kind == KIND_EAGER {
                    Entry::Eager { tag, seq, data }
                } else {
                    Entry::Data {
                        tag,
                        seq,
                        offset: aux,
                        data,
                    }
                })
            }
            KIND_RTS => {
                if len != 0 {
                    return Err(WireError::Malformed("RTS with payload"));
                }
                Ok(Entry::Rts {
                    tag,
                    seq,
                    total: aux,
                })
            }
            KIND_CTS => {
                if len != 0 {
                    return Err(WireError::Malformed("CTS with payload"));
                }
                Ok(Entry::Cts { tag, seq })
            }
            k => Err(WireError::UnknownKind(k)),
        }
    }
}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Packet shorter than its headers claim.
    Truncated,
    /// Unknown entry kind byte.
    UnknownKind(u8),
    /// Structurally invalid entry.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::UnknownKind(k) => write!(f, "unknown entry kind {k}"),
            WireError::Malformed(why) => write!(f, "malformed packet: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a container of entries into one wire packet.
///
/// # Panics
/// Panics if `entries` is empty or longer than `u16::MAX`.
pub fn encode_packet(entries: &[Entry]) -> Bytes {
    assert!(!entries.is_empty(), "cannot encode an empty packet");
    assert!(entries.len() <= u16::MAX as usize, "too many entries");
    let size = PACKET_HEADER + entries.iter().map(Entry::wire_size).sum::<usize>();
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u16(entries.len() as u16);
    for e in entries {
        e.encode_into(&mut buf);
    }
    debug_assert_eq!(buf.len(), size);
    buf.freeze()
}

/// Decodes one wire packet into its entries.
pub fn decode_packet(mut packet: Bytes) -> Result<Vec<Entry>, WireError> {
    if packet.remaining() < PACKET_HEADER {
        return Err(WireError::Truncated);
    }
    let count = packet.get_u16() as usize;
    if count == 0 {
        return Err(WireError::Malformed("empty container"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(Entry::decode_from(&mut packet)?);
    }
    if packet.has_remaining() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: Vec<Entry>) {
        let encoded = encode_packet(&entries);
        let decoded = decode_packet(encoded).expect("decode");
        assert_eq!(decoded, entries);
    }

    #[test]
    fn eager_roundtrip() {
        roundtrip(vec![Entry::Eager {
            tag: 7,
            seq: 3,
            data: Bytes::from_static(b"hello"),
        }]);
    }

    #[test]
    fn control_roundtrips() {
        roundtrip(vec![Entry::Rts {
            tag: 1,
            seq: 2,
            total: 1 << 20,
        }]);
        roundtrip(vec![Entry::Cts { tag: 1, seq: 2 }]);
    }

    #[test]
    fn data_chunk_roundtrip() {
        roundtrip(vec![Entry::Data {
            tag: 9,
            seq: 4,
            offset: 4096,
            data: Bytes::from(vec![0xAB; 1000]),
        }]);
    }

    #[test]
    fn aggregated_container_roundtrip() {
        roundtrip(vec![
            Entry::Eager {
                tag: 1,
                seq: 0,
                data: Bytes::from_static(b"a"),
            },
            Entry::Rts {
                tag: 2,
                seq: 1,
                total: 99999,
            },
            Entry::Eager {
                tag: 3,
                seq: 2,
                data: Bytes::from_static(b"bc"),
            },
        ]);
    }

    #[test]
    fn empty_payload_eager_roundtrip() {
        roundtrip(vec![Entry::Eager {
            tag: 0,
            seq: 0,
            data: Bytes::new(),
        }]);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let entries = vec![
            Entry::Eager {
                tag: 1,
                seq: 0,
                data: Bytes::from_static(b"xyz"),
            },
            Entry::Cts { tag: 1, seq: 0 },
        ];
        let expected = PACKET_HEADER + entries.iter().map(Entry::wire_size).sum::<usize>();
        assert_eq!(encode_packet(&entries).len(), expected);
    }

    #[test]
    fn truncated_packets_rejected() {
        let good = encode_packet(&[Entry::Eager {
            tag: 1,
            seq: 0,
            data: Bytes::from_static(b"abcdef"),
        }]);
        for cut in [0, 1, PACKET_HEADER, good.len() - 1] {
            let bad = good.slice(0..cut);
            assert!(
                decode_packet(bad).is_err(),
                "cut at {cut} should fail to decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = BytesMut::from(&encode_packet(&[Entry::Cts { tag: 0, seq: 0 }])[..]);
        bytes.put_u8(0xFF);
        assert_eq!(
            decode_packet(bytes.freeze()),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(1);
        buf.put_u8(0xEE);
        buf.put_u64(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        assert_eq!(
            decode_packet(buf.freeze()),
            Err(WireError::UnknownKind(0xEE))
        );
    }

    #[test]
    fn zero_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        assert!(decode_packet(buf.freeze()).is_err());
    }
}
