//! Core configuration.

use std::sync::Arc;

use nm_progress::{OffloadMode, TaskletEngine};

use crate::locking::LockingMode;
use crate::strategy::StrategyKind;

/// Configuration of a communication core.
#[derive(Clone)]
pub struct CoreConfig {
    /// Thread-safety scheme (§3.1–3.2).
    pub locking: LockingMode,
    /// Messages up to this size go eagerly in one packet; larger ones use
    /// the rendezvous protocol (RTS/CTS + chunked data).
    pub eager_threshold: usize,
    /// Scheduling strategy of the optimization layer.
    pub strategy: StrategyKind,
    /// Payload budget for one aggregated packet (entry headers included).
    pub max_aggregation: usize,
    /// Where submission work runs (§4.2 / Fig 9).
    pub offload: OffloadMode,
    /// Tasklet engine for [`OffloadMode::Tasklet`].
    pub tasklet_engine: Option<Arc<TaskletEngine>>,
    /// Preferred rendezvous chunk size (clamped to the rail MTU).
    pub rdv_chunk: usize,
    /// Packets polled per rail per progression pass.
    pub max_polls_per_pass: usize,
    /// Restore per-gate FIFO order of eager messages at the receiver.
    ///
    /// Multirail distribution and reordering transports can deliver eager
    /// packets out of order; with this on (the default) the receiver
    /// holds out-of-order eager messages in a resequencing buffer so
    /// same-tag messages always match receives in send order.
    pub ordered_eager: bool,
    /// End-to-end reliability protocol (ack/retransmit over lossy wires).
    pub reliability: ReliabilityConfig,
}

/// Knobs of the end-to-end reliability protocol.
///
/// Disabled by default: the simulated fabric is lossless, and the
/// unreliable path adds only the frame checksum. With `enabled` the core
/// sequences every frame per rail, acknowledges cumulatively, suppresses
/// duplicates, retransmits on timeout with exponential backoff, and
/// fails over to surviving rails when one exhausts its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Run the ack/retransmit protocol (frames always carry a CRC).
    pub enabled: bool,
    /// Maximum unacknowledged frames in flight per rail.
    pub window: usize,
    /// Initial retransmit timeout in nanoseconds.
    pub rto_base_ns: u64,
    /// Retransmit timeout ceiling (backoff doubles up to this).
    pub rto_max_ns: u64,
    /// Retransmits of one frame before the rail counts an exhaustion.
    pub max_retries: u32,
    /// Consecutive exhaustions that mark a rail dead (failover).
    pub rail_dead_threshold: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            window: 64,
            rto_base_ns: 200_000,   // 200 µs
            rto_max_ns: 50_000_000, // 50 ms cap
            max_retries: 8,
            rail_dead_threshold: 3,
        }
    }
}

impl ReliabilityConfig {
    /// An enabled configuration with the default knobs.
    pub fn enabled() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..ReliabilityConfig::default()
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            locking: LockingMode::Fine,
            eager_threshold: 16 * 1024,
            strategy: StrategyKind::Aggregate,
            max_aggregation: 16 * 1024,
            offload: OffloadMode::Inline,
            tasklet_engine: None,
            rdv_chunk: 16 * 1024,
            max_polls_per_pass: 16,
            ordered_eager: true,
            reliability: ReliabilityConfig::default(),
        }
    }
}

impl CoreConfig {
    /// Sets the locking mode.
    pub fn locking(mut self, mode: LockingMode) -> Self {
        self.locking = mode;
        self
    }

    /// Sets the eager/rendezvous threshold.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = bytes;
        self
    }

    /// Sets the scheduling strategy.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the offload mode (tasklet mode also needs
    /// [`CoreConfig::tasklet_engine`]).
    pub fn offload(mut self, mode: OffloadMode) -> Self {
        self.offload = mode;
        self
    }

    /// Provides the tasklet engine for [`OffloadMode::Tasklet`].
    pub fn tasklet_engine(mut self, engine: Arc<TaskletEngine>) -> Self {
        self.tasklet_engine = Some(engine);
        self
    }

    /// Sets the rendezvous chunk size.
    pub fn rdv_chunk(mut self, bytes: usize) -> Self {
        self.rdv_chunk = bytes;
        self
    }

    /// Enables or disables receiver-side eager resequencing.
    pub fn ordered_eager(mut self, on: bool) -> Self {
        self.ordered_eager = on;
        self
    }

    /// Configures the end-to-end reliability protocol.
    pub fn reliability(mut self, r: ReliabilityConfig) -> Self {
        self.reliability = r;
        self
    }
}

impl std::fmt::Debug for CoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreConfig")
            .field("locking", &self.locking)
            .field("eager_threshold", &self.eager_threshold)
            .field("strategy", &self.strategy)
            .field("offload", &self.offload)
            .field("reliability", &self.reliability.enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters() {
        let c = CoreConfig::default()
            .locking(LockingMode::Coarse)
            .eager_threshold(1024)
            .strategy(StrategyKind::Fifo)
            .offload(OffloadMode::IdleCore)
            .rdv_chunk(4096);
        assert_eq!(c.locking, LockingMode::Coarse);
        assert_eq!(c.eager_threshold, 1024);
        assert_eq!(c.strategy, StrategyKind::Fifo);
        assert_eq!(c.offload, OffloadMode::IdleCore);
        assert_eq!(c.rdv_chunk, 4096);
    }

    #[test]
    fn defaults_are_paper_like() {
        let c = CoreConfig::default();
        assert_eq!(c.locking, LockingMode::Fine);
        assert!(c.eager_threshold <= 32 * 1024, "must fit the MX MTU");
    }

    #[test]
    fn reliability_defaults_off_and_enable_helper() {
        let c = CoreConfig::default();
        assert!(!c.reliability.enabled, "lossless fabric needs no acks");
        let r = ReliabilityConfig::enabled();
        assert!(r.enabled);
        assert!(r.window > 0);
        assert!(r.rto_base_ns > 0 && r.rto_base_ns <= r.rto_max_ns);
        assert!(r.max_retries > 0 && r.rail_dead_threshold > 0);
        let c = CoreConfig::default().reliability(r.clone());
        assert_eq!(c.reliability, r);
    }
}
