//! Core configuration.

use std::sync::Arc;

use nm_progress::{OffloadMode, TaskletEngine};

use crate::locking::LockingMode;
use crate::strategy::StrategyKind;

/// Configuration of a communication core.
#[derive(Clone)]
pub struct CoreConfig {
    /// Thread-safety scheme (§3.1–3.2).
    pub locking: LockingMode,
    /// Messages up to this size go eagerly in one packet; larger ones use
    /// the rendezvous protocol (RTS/CTS + chunked data).
    pub eager_threshold: usize,
    /// Scheduling strategy of the optimization layer.
    pub strategy: StrategyKind,
    /// Payload budget for one aggregated packet (entry headers included).
    pub max_aggregation: usize,
    /// Where submission work runs (§4.2 / Fig 9).
    pub offload: OffloadMode,
    /// Tasklet engine for [`OffloadMode::Tasklet`].
    pub tasklet_engine: Option<Arc<TaskletEngine>>,
    /// Preferred rendezvous chunk size (clamped to the rail MTU).
    pub rdv_chunk: usize,
    /// Packets polled per rail per progression pass.
    pub max_polls_per_pass: usize,
    /// Restore per-gate FIFO order of eager messages at the receiver.
    ///
    /// Multirail distribution and reordering transports can deliver eager
    /// packets out of order; with this on (the default) the receiver
    /// holds out-of-order eager messages in a resequencing buffer so
    /// same-tag messages always match receives in send order.
    pub ordered_eager: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            locking: LockingMode::Fine,
            eager_threshold: 16 * 1024,
            strategy: StrategyKind::Aggregate,
            max_aggregation: 16 * 1024,
            offload: OffloadMode::Inline,
            tasklet_engine: None,
            rdv_chunk: 16 * 1024,
            max_polls_per_pass: 16,
            ordered_eager: true,
        }
    }
}

impl CoreConfig {
    /// Sets the locking mode.
    pub fn locking(mut self, mode: LockingMode) -> Self {
        self.locking = mode;
        self
    }

    /// Sets the eager/rendezvous threshold.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = bytes;
        self
    }

    /// Sets the scheduling strategy.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the offload mode (tasklet mode also needs
    /// [`CoreConfig::tasklet_engine`]).
    pub fn offload(mut self, mode: OffloadMode) -> Self {
        self.offload = mode;
        self
    }

    /// Provides the tasklet engine for [`OffloadMode::Tasklet`].
    pub fn tasklet_engine(mut self, engine: Arc<TaskletEngine>) -> Self {
        self.tasklet_engine = Some(engine);
        self
    }

    /// Sets the rendezvous chunk size.
    pub fn rdv_chunk(mut self, bytes: usize) -> Self {
        self.rdv_chunk = bytes;
        self
    }

    /// Enables or disables receiver-side eager resequencing.
    pub fn ordered_eager(mut self, on: bool) -> Self {
        self.ordered_eager = on;
        self
    }
}

impl std::fmt::Debug for CoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreConfig")
            .field("locking", &self.locking)
            .field("eager_threshold", &self.eager_threshold)
            .field("strategy", &self.strategy)
            .field("offload", &self.offload)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters() {
        let c = CoreConfig::default()
            .locking(LockingMode::Coarse)
            .eager_threshold(1024)
            .strategy(StrategyKind::Fifo)
            .offload(OffloadMode::IdleCore)
            .rdv_chunk(4096);
        assert_eq!(c.locking, LockingMode::Coarse);
        assert_eq!(c.eager_threshold, 1024);
        assert_eq!(c.strategy, StrategyKind::Fifo);
        assert_eq!(c.offload, OffloadMode::IdleCore);
        assert_eq!(c.rdv_chunk, 4096);
    }

    #[test]
    fn defaults_are_paper_like() {
        let c = CoreConfig::default();
        assert_eq!(c.locking, LockingMode::Fine);
        assert!(c.eager_threshold <= 32 * 1024, "must fit the MX MTU");
    }
}
