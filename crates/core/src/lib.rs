//! The NewMadeleine-style communication library — the paper's primary
//! study object.
//!
//! `nm-core` is a 3-layer, NIC-driven communication library (paper Fig 1):
//! the application submits messages to the **collect layer** (per-gate
//! lists); whenever a NIC becomes idle, the **optimization layer** computes
//! the best packet arrangement (aggregation, control-first reordering) and
//! hands it to the **transfer layer**, which programs the drivers and
//! polls for completions.
//!
//! The thread-safety study of §3 maps onto [`LockingMode`]:
//!
//! * [`LockingMode::SingleThread`] — no locks, single caller enforced.
//! * [`LockingMode::Coarse`] — one library-wide spinlock per call (Fig 2).
//! * [`LockingMode::Fine`] — one lock per shared list (Fig 4).
//!
//! Waiting (§3.3) is driven by [`nm_sync::WaitStrategy`]; background
//! progression and submission offloading (§4) plug in through
//! `nm-progress` ([`CommCore`] implements
//! [`PollSource`](nm_progress::PollSource), and its
//! [`offloader`](CommCore::offloader) can defer submissions to idle cores
//! or tasklets).
//!
//! ```
//! use nm_core::{CoreBuilder, CoreConfig, GateId, LockingMode};
//! use nm_fabric::LoopbackDriver;
//! use nm_sync::WaitStrategy;
//! use std::sync::Arc;
//!
//! let (da, db) = LoopbackDriver::pair(64);
//! let a = CoreBuilder::new(CoreConfig::default().locking(LockingMode::Fine))
//!     .add_gate(vec![Arc::new(da)])
//!     .build();
//! let b = CoreBuilder::new(CoreConfig::default())
//!     .add_gate(vec![Arc::new(db)])
//!     .build();
//!
//! let send = a.isend(GateId(0), 1, bytes::Bytes::from_static(b"hi")).unwrap();
//! let recv = b.irecv(GateId(0), 1).unwrap();
//! b.wait(&recv, WaitStrategy::Busy).unwrap();
//! a.wait(&send, WaitStrategy::Busy).unwrap();
//! assert_eq!(recv.take_data().unwrap(), bytes::Bytes::from_static(b"hi"));
//! ```
//!
//! Completion does not have to block a thread: each operation can pick a
//! [`Completion`] object at post time ([`CommCore::isend_with`] /
//! [`CommCore::irecv_with`]) — today's flag, a shared
//! [`CompletionQueue`] drained by a few cores, a fire-and-forget
//! handler, or an async waker. See `docs/COMPLETION.md` for the full
//! model and the handler reentrancy rules.

#![warn(missing_docs)]

mod comm;
mod completion;
mod config;
mod error;
mod gate;
mod locking;
#[cfg(test)]
mod matching_proptest;
pub mod metrics;
mod request;
mod stats;
mod strategy;
pub mod wire;

pub use comm::{CommCore, CoreBuilder, PendingCounts, VciPollSource};
pub use completion::{Completion, CompletionEvent, CompletionHandler, CompletionQueue};
pub use config::{CoreConfig, ReliabilityConfig};
pub use error::CommError;
pub use gate::GateId;
pub use locking::{LockPolicy, LockingMode, Protected, Section, SectionKind};
pub use request::{Request, RequestKind};
pub use stats::CoreStats;
pub use strategy::{
    AggregateStrategy, ControlFirstStrategy, FifoStrategy, SendItem, SendItemKind, Strategy,
    StrategyKind,
};
