//! Property test: the reliability channel over an arbitrary chaos plan
//! must be observationally identical to a lossless wire.
//!
//! The oracle is the send schedule itself — exactly-once in-order
//! delivery means the receiver must observe precisely the sent payload
//! sequence, whatever combination of loss, duplication, corruption and
//! reordering the fault plan draws from its seed.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, ReliabilityConfig, StrategyKind};
use nm_fabric::{ChaosDriver, Driver, FaultPlan, LoopbackDriver};
use nm_sync::WaitStrategy;

const G: GateId = GateId(0);

fn chaos_pair(plan: FaultPlan) -> (Arc<CommCore>, Arc<CommCore>) {
    let rel = ReliabilityConfig {
        rto_base_ns: 30_000,
        rto_max_ns: 1_000_000,
        ..ReliabilityConfig::enabled()
    };
    // A small eager threshold makes the size strategy cover both the
    // eager and the rendezvous path.
    let config = CoreConfig::default()
        .eager_threshold(512)
        .strategy(StrategyKind::Fifo)
        .reliability(rel);
    let (da, db) = LoopbackDriver::pair(256);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(ChaosDriver::new(da, plan.clone())) as Arc<dyn Driver>
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(ChaosDriver::new(db, plan)) as Arc<dyn Driver>])
        .build();
    (a, b)
}

/// Deterministic per-message payload: index header + patterned body.
fn payload(i: usize, len: usize) -> Bytes {
    let mut v = Vec::with_capacity(8 + len);
    v.extend_from_slice(&(i as u64).to_le_bytes());
    v.extend((0..len).map(|j| (i.wrapping_mul(37) ^ j) as u8));
    Bytes::from(v)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full channel with real-time retransmits
        .. ProptestConfig::default()
    })]

    #[test]
    fn reliable_channel_matches_the_lossless_oracle(
        seed in any::<u64>(),
        loss_ppm in 0u32..60_000,
        dup_ppm in 0u32..60_000,
        corrupt_ppm in 0u32..30_000,
        reorder_depth in 1usize..5,
        sizes in prop::collection::vec(0usize..2_000, 1..40),
    ) {
        let plan = FaultPlan::new(seed)
            .loss(f64::from(loss_ppm) / 1e6)
            .duplicate(f64::from(dup_ppm) / 1e6)
            .corrupt(f64::from(corrupt_ppm) / 1e6)
            .reorder(reorder_depth);
        let (a, b) = chaos_pair(plan);

        // Oracle: what a lossless wire would deliver — the schedule.
        let expect: Vec<Bytes> = sizes.iter().enumerate().map(|(i, &n)| payload(i, n)).collect();

        let sends: Vec<_> = expect
            .iter()
            .map(|p| a.isend(G, 1, p.clone()).unwrap())
            .collect();
        let recvs: Vec<_> = (0..expect.len()).map(|_| b.irecv(G, 1).unwrap()).collect();
        for (i, r) in recvs.iter().enumerate() {
            while !r.is_complete() {
                a.progress();
                b.progress();
            }
            let got = r.take_data().unwrap();
            prop_assert_eq!(
                &got, &expect[i],
                "message {} diverged from the lossless oracle", i
            );
        }
        for s in &sends {
            a.wait(s, WaitStrategy::Busy).unwrap();
        }

        // Nothing may linger once the wire quiesces.
        for _ in 0..1_000 {
            a.progress();
            b.progress();
        }
        prop_assert_eq!(a.pending().unacked_frames, 0);
        prop_assert_eq!(b.pending().unacked_frames, 0);
        prop_assert_eq!(b.pending().posted_recvs, 0);
    }
}
