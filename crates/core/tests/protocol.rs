//! End-to-end protocol tests of the communication core over loopback and
//! simulated-NIC drivers.

use std::sync::Arc;

use bytes::Bytes;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode, StrategyKind};
use nm_fabric::{ClockSource, Driver, Fabric, LoopbackDriver, SimNic, SimNicDriver, WireModel};
use nm_sync::WaitStrategy;

const G: GateId = GateId(0);

/// Builds two connected single-rail cores over loopback drivers.
fn loopback_pair(config: CoreConfig) -> (Arc<CommCore>, Arc<CommCore>) {
    let (da, db) = LoopbackDriver::pair(64);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    (a, b)
}

/// Builds two connected cores over real-time simulated NICs.
fn simnic_pair(config: CoreConfig, model: WireModel) -> (Arc<CommCore>, Arc<CommCore>) {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(&[model], true);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();
    (a, b)
}

#[test]
fn eager_roundtrip_all_locking_modes() {
    for mode in LockingMode::ALL {
        let (a, b) = loopback_pair(CoreConfig::default().locking(mode));
        let payload = Bytes::from_static(b"eager message");
        let send = a.isend(G, 42, payload.clone()).unwrap();
        let recv = b.irecv(G, 42).unwrap();
        b.wait(&recv, WaitStrategy::Busy).unwrap();
        a.wait(&send, WaitStrategy::Busy).unwrap();
        assert_eq!(recv.take_data().unwrap(), payload, "mode {mode:?}");
        assert_eq!(a.stats().eager_sent.get(), 1);
        assert_eq!(a.stats().rdv_started.get(), 0);
    }
}

#[test]
fn blocking_send_recv_helpers() {
    let (a, b) = loopback_pair(CoreConfig::default());
    let t = std::thread::spawn(move || b.recv(G, 7, WaitStrategy::Busy).unwrap());
    a.send(G, 7, Bytes::from_static(b"blocking"), WaitStrategy::Busy)
        .unwrap();
    assert_eq!(t.join().unwrap(), Bytes::from_static(b"blocking"));
}

#[test]
fn unexpected_message_is_buffered() {
    let (a, b) = loopback_pair(CoreConfig::default());
    let send = a.isend(G, 5, Bytes::from_static(b"early")).unwrap();
    a.wait(&send, WaitStrategy::Busy).unwrap();
    // Drive the receiver before any recv is posted: message becomes
    // unexpected.
    while b.progress() > 0 {}
    assert_eq!(b.stats().unexpected_msgs.get(), 1);
    let recv = b.irecv(G, 5).unwrap();
    assert!(recv.is_complete(), "matched from the unexpected queue");
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"early"));
}

#[test]
fn tag_matching_is_selective_and_fifo() {
    let (a, b) = loopback_pair(CoreConfig::default());
    // Two tags interleaved, two messages each.
    for (tag, text) in [(1u64, "a1"), (2, "b1"), (1, "a2"), (2, "b2")] {
        let s = a.isend(G, tag, Bytes::from(text.to_string())).unwrap();
        a.wait(&s, WaitStrategy::Busy).unwrap();
    }
    let r2a = b.irecv(G, 2).unwrap();
    b.wait(&r2a, WaitStrategy::Busy).unwrap();
    assert_eq!(&r2a.take_data().unwrap()[..], b"b1");
    let r1a = b.irecv(G, 1).unwrap();
    b.wait(&r1a, WaitStrategy::Busy).unwrap();
    assert_eq!(&r1a.take_data().unwrap()[..], b"a1");
    let r1b = b.irecv(G, 1).unwrap();
    b.wait(&r1b, WaitStrategy::Busy).unwrap();
    assert_eq!(&r1b.take_data().unwrap()[..], b"a2");
    let r2b = b.irecv(G, 2).unwrap();
    b.wait(&r2b, WaitStrategy::Busy).unwrap();
    assert_eq!(&r2b.take_data().unwrap()[..], b"b2");
}

#[test]
fn rendezvous_large_message_roundtrip() {
    let config = CoreConfig::default().eager_threshold(1024).rdv_chunk(4096);
    let (a, b) = loopback_pair(config);
    let payload: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
    let payload = Bytes::from(payload);

    let recv = b.irecv(G, 9).unwrap();
    let send = a.isend(G, 9, payload.clone()).unwrap();
    // Both sides must progress: A needs B's CTS, B needs A's data.
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), payload);
    assert_eq!(a.stats().rdv_started.get(), 1);
    assert_eq!(b.stats().rdv_accepted.get(), 1);
    // 100 KB in 4 KB chunks: at least 25 data packets.
    assert!(a.stats().packets_tx.get() >= 25);
}

#[test]
fn rendezvous_rts_before_recv_posted() {
    let config = CoreConfig::default().eager_threshold(64);
    let (a, b) = loopback_pair(config);
    let payload = Bytes::from(vec![7u8; 10_000]);
    let send = a.isend(G, 3, payload.clone()).unwrap();
    // B sees the RTS with no posted recv: it must park it.
    while b.progress() > 0 {}
    assert!(!send.is_complete(), "no CTS yet");
    // Posting the recv triggers the CTS and the data flows.
    let recv = b.irecv(G, 3).unwrap();
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), payload);
}

#[test]
fn multirail_distributes_rendezvous_chunks() {
    let fabric = Fabric::real_time();
    let models = [WireModel::ideal(), WireModel::ideal()];
    let (pa, pb) = fabric.pair(&models, true);
    let config = CoreConfig::default().eager_threshold(512).rdv_chunk(1024);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();

    let payload = Bytes::from(vec![0xCD; 64 * 1024]);
    let recv = b.irecv(G, 1).unwrap();
    let send = a.isend(G, 1, payload.clone()).unwrap();
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), payload);
    // Both rails must have carried data packets.
    let c0 = pa.sim_drivers()[0].counters().tx_packets.get();
    let c1 = pa.sim_drivers()[1].counters().tx_packets.get();
    assert!(c0 > 5 && c1 > 5, "rails unbalanced: {c0} vs {c1}");
}

#[test]
fn aggregation_coalesces_small_messages() {
    // A depth-1 loopback driver: the first packet occupies the NIC until
    // the receiver drains it, so subsequent sends pile up in the collect
    // queue and the aggregate strategy packs them into one packet.
    let (da, db) = LoopbackDriver::pair(1);
    let config = CoreConfig::default().strategy(StrategyKind::Aggregate);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    let sends: Vec<_> = (0..10)
        .map(|i| {
            a.isend(G, 100 + i, Bytes::from(format!("msg-{i}")))
                .unwrap()
        })
        .collect();
    let recvs: Vec<_> = (0..10).map(|i| b.irecv(G, 100 + i).unwrap()).collect();
    for (i, r) in recvs.iter().enumerate() {
        while !r.is_complete() {
            b.progress();
            a.progress();
        }
        assert_eq!(r.take_data().unwrap(), Bytes::from(format!("msg-{i}")));
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }
    assert!(
        a.stats().aggregated_packets.get() >= 1,
        "no aggregation happened (packets_tx = {})",
        a.stats().packets_tx.get()
    );
    assert!(
        a.stats().packets_tx.get() < 10,
        "aggregation should reduce packet count"
    );
}

#[test]
fn fifo_strategy_never_aggregates() {
    let (da, db) = LoopbackDriver::pair(1);
    let config = CoreConfig::default().strategy(StrategyKind::Fifo);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    let sends: Vec<_> = (0..5)
        .map(|i| a.isend(G, i, Bytes::from_static(b"x")).unwrap())
        .collect();
    let recvs: Vec<_> = (0..5).map(|i| b.irecv(G, i).unwrap()).collect();
    for r in &recvs {
        while !r.is_complete() {
            b.progress();
            a.progress();
        }
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }
    assert_eq!(a.stats().aggregated_packets.get(), 0);
    assert_eq!(a.stats().packets_tx.get(), 5);
}

#[test]
fn pingpong_over_simulated_myrinet() {
    let (a, b) = simnic_pair(CoreConfig::default(), WireModel::myri_10g());
    let b2 = Arc::clone(&b);
    let echo = std::thread::spawn(move || {
        for _ in 0..10 {
            let data = b2.recv(G, 0, WaitStrategy::Busy).unwrap();
            b2.send(G, 0, data, WaitStrategy::Busy).unwrap();
        }
    });
    let payload = Bytes::from(vec![1u8; 256]);
    for _ in 0..10 {
        a.send(G, 0, payload.clone(), WaitStrategy::Busy).unwrap();
        let back = a.recv(G, 0, WaitStrategy::Busy).unwrap();
        assert_eq!(back, payload);
    }
    echo.join().unwrap();
}

#[test]
fn concurrent_threads_fine_grain() {
    concurrent_threads(LockingMode::Fine);
}

#[test]
fn concurrent_threads_coarse_grain() {
    concurrent_threads(LockingMode::Coarse);
}

fn concurrent_threads(mode: LockingMode) {
    // Two threads per side, each with its own tag, all sharing the cores:
    // MPI_THREAD_MULTIPLE-style usage.
    let (a, b) = loopback_pair(CoreConfig::default().locking(mode));
    const PER_THREAD: usize = 50;
    let mut senders = Vec::new();
    for t in 0..2u64 {
        let a = Arc::clone(&a);
        senders.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let payload = Bytes::from(format!("t{t}-m{i}"));
                a.send(G, t, payload, WaitStrategy::Busy).unwrap();
            }
        }));
    }
    let mut receivers = Vec::new();
    for t in 0..2u64 {
        let b = Arc::clone(&b);
        receivers.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let data = b.recv(G, t, WaitStrategy::Busy).unwrap();
                assert_eq!(&data[..], format!("t{t}-m{i}").as_bytes());
            }
        }));
    }
    for h in senders.into_iter().chain(receivers) {
        h.join().unwrap();
    }
}

#[test]
fn single_thread_mode_panics_on_second_thread() {
    let (a, _b) = loopback_pair(CoreConfig::default().locking(LockingMode::SingleThread));
    a.progress(); // claim ownership on this thread
    let a2 = Arc::clone(&a);
    let res = std::thread::spawn(move || {
        let _ = a2.progress();
    })
    .join();
    assert!(res.is_err(), "second thread must be rejected");
}

#[test]
fn invalid_gate_is_reported() {
    let (a, _b) = loopback_pair(CoreConfig::default());
    let err = a.isend(GateId(9), 0, Bytes::new()).unwrap_err();
    assert_eq!(err, nm_core::CommError::InvalidGate(9));
    let err = a.irecv(GateId(9), 0).unwrap_err();
    assert_eq!(err, nm_core::CommError::InvalidGate(9));
}

#[test]
fn passive_wait_with_progression_thread() {
    use nm_progress::{IdlePolicy, ProgressEngine, ProgressionThread};

    let (a, b) = loopback_pair(CoreConfig::default());
    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(&a) as _);
    engine.register(Arc::clone(&b) as _);
    let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    let recv = b.irecv(G, 1).unwrap();
    let send = a.isend(G, 1, Bytes::from_static(b"async")).unwrap();
    // Purely passive waits: only the progression thread moves data.
    recv.wait_flag_only(WaitStrategy::Passive);
    send.wait_flag_only(WaitStrategy::Passive);
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"async"));
    pt.stop();
}

#[test]
fn virtual_clock_pingpong() {
    // Deterministic pingpong on a manual clock: latency accounted by hand.
    let clock = ClockSource::manual();
    let (na, nb) = SimNic::pair("vt", WireModel::myri_10g(), clock.clone());
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![
            Arc::new(SimNicDriver::new(na, true)) as Arc<dyn Driver>
        ])
        .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![
            Arc::new(SimNicDriver::new(nb, true)) as Arc<dyn Driver>
        ])
        .build();

    let send = a.isend(G, 0, Bytes::from_static(b"tick")).unwrap();
    let recv = b.irecv(G, 0).unwrap();
    a.progress();
    assert!(send.is_complete(), "eager send completes on injection");
    b.progress();
    assert!(!recv.is_complete(), "nothing deliverable at t=0");
    clock.advance(10_000); // > latency + tx time
    b.progress();
    assert!(recv.is_complete());
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"tick"));
}

#[test]
fn message_stream_many_sizes() {
    let config = CoreConfig::default().eager_threshold(1024);
    let (a, b) = loopback_pair(config);
    let sizes = [0usize, 1, 13, 1024, 1025, 5000, 40_000];
    for (i, &n) in sizes.iter().enumerate() {
        let payload = Bytes::from((0..n).map(|j| (j % 256) as u8).collect::<Vec<u8>>());
        let send = a.isend(G, i as u64, payload.clone()).unwrap();
        let recv = b.irecv(G, i as u64).unwrap();
        while !recv.is_complete() || !send.is_complete() {
            a.progress();
            b.progress();
        }
        assert_eq!(recv.take_data().unwrap(), payload, "size {n}");
    }
}

#[test]
#[allow(deprecated)] // the shim must keep behaving exactly like the old driver
fn ordered_delivery_over_reordering_transport() {
    use nm_fabric::ReorderDriver;
    // A transport that shuffles packets within a 4-deep window; the
    // receiver's resequencer must restore send order.
    let (da, db) = LoopbackDriver::pair(128);
    let db = ReorderDriver::new(db, 4, 0xBADC0FFE);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    const N: usize = 32;
    // Force one packet per message so the transport can reorder them.
    let config_check = a.config().ordered_eager;
    assert!(config_check, "ordered delivery is the default");
    for i in 0..N {
        let s = a.isend(G, 9, Bytes::from(format!("m{i:02}"))).unwrap();
        a.wait(&s, WaitStrategy::Busy).unwrap();
    }
    for i in 0..N {
        let r = b.irecv(G, 9).unwrap();
        while !r.is_complete() {
            b.progress();
            a.progress();
        }
        assert_eq!(
            r.take_data().unwrap(),
            Bytes::from(format!("m{i:02}")),
            "message {i} out of order"
        );
    }
}

#[test]
#[allow(deprecated)] // the shim must keep behaving exactly like the old driver
fn unordered_mode_still_delivers_everything() {
    use nm_fabric::ReorderDriver;
    use std::collections::BTreeSet;
    let (da, db) = LoopbackDriver::pair(128);
    let db = ReorderDriver::new(db, 4, 42);
    let config = CoreConfig::default().ordered_eager(false);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    const N: usize = 16;
    for i in 0..N {
        let s = a.isend(G, 0, Bytes::from(vec![i as u8])).unwrap();
        a.wait(&s, WaitStrategy::Busy).unwrap();
    }
    let mut seen = BTreeSet::new();
    for _ in 0..N {
        let r = b.irecv(G, 0).unwrap();
        while !r.is_complete() {
            b.progress();
            a.progress();
        }
        seen.insert(r.take_data().unwrap()[0]);
    }
    // Possibly out of order, but nothing lost or duplicated.
    assert_eq!(seen.len(), N);
}

#[test]
fn wait_all_and_test_apis() {
    let (a, b) = loopback_pair(CoreConfig::default());
    let recvs: Vec<_> = (0..4).map(|i| b.irecv(G, i).unwrap()).collect();
    let sends: Vec<_> = (0..4)
        .map(|i| a.isend(G, i, Bytes::from(vec![i as u8])).unwrap())
        .collect();
    a.wait_all(&sends, WaitStrategy::Busy).unwrap();
    // Drive b until everything tests complete.
    for r in &recvs {
        while !b.test(r) {
            a.progress();
        }
    }
    for (i, r) in recvs.iter().enumerate() {
        assert_eq!(r.take_data().unwrap(), Bytes::from(vec![i as u8]));
    }
}

#[test]
fn wildcard_recv_matches_any_tag_in_order() {
    let (a, b) = loopback_pair(CoreConfig::default());
    for (tag, text) in [(5u64, "first"), (9, "second"), (1, "third")] {
        let s = a.isend(G, tag, Bytes::from(text.to_string())).unwrap();
        a.wait(&s, WaitStrategy::Busy).unwrap();
    }
    // Wildcard receives drain in arrival (send) order, reporting tags.
    let expected = [(5u64, "first"), (9, "second"), (1, "third")];
    for (tag, text) in expected {
        let r = b.irecv_any(G).unwrap();
        while !r.is_complete() {
            b.progress();
            a.progress();
        }
        assert_eq!(r.matched_tag(), Some(tag));
        assert_eq!(r.take_data().unwrap(), Bytes::from(text.to_string()));
    }
}

#[test]
fn wildcard_posted_before_arrival() {
    let (a, b) = loopback_pair(CoreConfig::default());
    let r = b.irecv_any(G).unwrap();
    assert_eq!(r.matched_tag(), None, "no tag before completion");
    let s = a.isend(G, 77, Bytes::from_static(b"wild")).unwrap();
    a.wait(&s, WaitStrategy::Busy).unwrap();
    while !r.is_complete() {
        b.progress();
        a.progress();
    }
    assert_eq!(r.matched_tag(), Some(77));
    assert_eq!(r.take_data().unwrap(), Bytes::from_static(b"wild"));
}

#[test]
fn wildcard_matches_rendezvous_rts() {
    let config = CoreConfig::default().eager_threshold(64);
    let (a, b) = loopback_pair(config);
    let payload = Bytes::from(vec![3u8; 50_000]);
    let s = a.isend(G, 4, payload.clone()).unwrap();
    // Let the RTS land unexpected, then post a wildcard receive.
    while b.progress() > 0 {}
    let r = b.irecv_any(G).unwrap();
    while !r.is_complete() || !s.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(r.matched_tag(), Some(4));
    assert_eq!(r.take_data().unwrap(), payload);
}

#[test]
fn exact_recv_reports_matched_tag_too() {
    let (a, b) = loopback_pair(CoreConfig::default());
    let s = a.isend(G, 13, Bytes::from_static(b"x")).unwrap();
    a.wait(&s, WaitStrategy::Busy).unwrap();
    let r = b.irecv(G, 13).unwrap();
    b.wait(&r, WaitStrategy::Busy).unwrap();
    assert_eq!(r.matched_tag(), Some(13));
}

#[test]
fn corrupt_packets_are_counted_and_skipped() {
    use nm_core::wire::encode_frame;
    // Inject garbage directly into the wire: the receiver must count it
    // and keep functioning.
    let (da, db) = LoopbackDriver::pair(64);
    let da = Arc::new(da);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::clone(&da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    // Raw garbage fails the frame checksum: dropped before any decode.
    da.post(Bytes::from_static(b"\xFF\xFF garbage that is not a packet"))
        .unwrap();
    // A well-framed frame around a garbage packet passes the CRC and
    // fails protocol decode: a wire error.
    da.post(encode_frame(0, 0, 0, 0, b"\xFF\xFF not a packet either"))
        .unwrap();
    while b.progress() > 0 {}
    assert_eq!(b.stats().corrupt_dropped.get(), 1);
    assert_eq!(b.stats().wire_errors.get(), 1);

    // The stack still works after the corrupt packet.
    let s = a.isend(G, 1, Bytes::from_static(b"still alive")).unwrap();
    let r = b.irecv(G, 1).unwrap();
    while !r.is_complete() {
        a.progress();
        b.progress();
    }
    a.wait(&s, WaitStrategy::Busy).unwrap();
    assert_eq!(r.take_data().unwrap(), Bytes::from_static(b"still alive"));
}

#[test]
fn duplicate_cts_is_ignored() {
    use nm_core::wire::{encode_frame, encode_packet, Entry};
    // A CTS for an unknown rendezvous id must be dropped and counted,
    // not crash the sender-side state machine.
    let (da, db) = LoopbackDriver::pair(64);
    let db = Arc::new(db);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let _b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::clone(&db) as Arc<dyn Driver>])
        .build();
    // Send a spurious CTS from b's side of the wire toward a.
    db.post(encode_frame(
        0,
        0,
        0,
        0,
        &encode_packet(&[Entry::Cts { tag: 1, seq: 99 }]),
    ))
    .unwrap();
    while a.progress() > 0 {}
    assert_eq!(a.stats().wire_errors.get(), 1);
}

#[test]
fn pending_counts_track_lifecycle() {
    let (a, b) = loopback_pair(CoreConfig::default().eager_threshold(64));
    assert_eq!(a.pending(), nm_core::PendingCounts::default());

    // A posted receive shows up on b.
    let r = b.irecv(G, 1).unwrap();
    assert_eq!(b.pending().posted_recvs, 1);

    // A rendezvous send waits for its CTS on a.
    let s = a.isend(G, 1, Bytes::from(vec![9u8; 10_000])).unwrap();
    assert_eq!(a.pending().rdv_awaiting_cts, 1);

    while !r.is_complete() || !s.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(a.pending(), nm_core::PendingCounts::default());
    assert_eq!(b.pending(), nm_core::PendingCounts::default());
}

#[test]
fn flush_local_drains_send_queues() {
    // A depth-limited driver keeps packets queued locally; flush_local
    // pushes what it can and reports quiescence exactly when the local
    // queues empty (the receiver must drain the wire meanwhile).
    let (da, db) = LoopbackDriver::pair(2);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    for i in 0..6 {
        let _ = a.isend(G, i, Bytes::from_static(b"queued")).unwrap();
    }
    assert!(
        a.pending().collect_items > 0,
        "wire too small for the burst"
    );
    let drainer = std::thread::spawn(move || {
        for i in 0..6 {
            let r = b.irecv(G, i).unwrap();
            b.wait(&r, WaitStrategy::Busy).unwrap();
        }
    });
    a.flush_local();
    assert_eq!(a.pending().collect_items, 0);
    assert_eq!(a.pending().xfer_items, 0);
    drainer.join().unwrap();
}
