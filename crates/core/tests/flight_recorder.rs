//! The failure flight recorder, end to end: a chaos run that kills a
//! rail must leave a JSON dump holding the dead rail's retransmit span
//! timeline — the black box a postmortem actually needs.
//!
//! Single test on purpose: the trace rings, the dump slot and the
//! `NOMAD_FLIGHT_DIR` variable are process-global.

#![cfg(feature = "trace")]

use std::sync::Arc;

use bytes::Bytes;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, ReliabilityConfig, StrategyKind};
use nm_fabric::{ChaosDriver, Driver, FaultPlan, LoopbackDriver};
use nm_sync::WaitStrategy;

const G: GateId = GateId(0);

#[test]
fn rail_death_dumps_the_retransmit_span_timeline() {
    // Respect a caller-provided dump directory (CI uploads it as an
    // artifact); default to a temp dir that is cleaned up on success.
    let (dir, ephemeral) = match std::env::var("NOMAD_FLIGHT_DIR") {
        Ok(d) if !d.is_empty() => (std::path::PathBuf::from(d), false),
        _ => {
            let d = std::env::temp_dir().join(format!("nm-flight-{}", std::process::id()));
            std::env::set_var("NOMAD_FLIGHT_DIR", &d);
            (d, true)
        }
    };
    std::fs::create_dir_all(&dir).unwrap();
    nm_trace::reset();
    let _ = nm_obs::take_last_dump();

    // Rail 0 of the a→b direction drops everything; rail 1 is clean.
    // Frames on rail 0 retransmit until the rail is declared dead and
    // its unacked window fails over to rail 1.
    let (da0, db0) = LoopbackDriver::pair(256);
    let (da1, db1) = LoopbackDriver::pair(256);
    let rel = ReliabilityConfig {
        rto_base_ns: 5_000,
        rto_max_ns: 50_000,
        max_retries: 2,
        rail_dead_threshold: 1,
        ..ReliabilityConfig::enabled()
    };
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .reliability(rel);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(da0) as Arc<dyn Driver>,
            Arc::new(da1) as Arc<dyn Driver>,
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![
            Arc::new(ChaosDriver::new(db0, FaultPlan::new(3).loss(1.0))) as Arc<dyn Driver>,
            Arc::new(db1) as Arc<dyn Driver>,
        ])
        .build();

    stream(&a, &b, 20);
    assert_eq!(a.stats().rails_failed.get(), 1, "rail 0 must die");

    // The kill published a dump; it must carry at least one message
    // timeline with the retransmits the dying rail performed.
    let dump = nm_obs::take_last_dump().expect("rail death must record a flight dump");
    assert!(
        dump.contains("\"reason\": \"rail-dead\""),
        "dump must name the trigger: {dump}"
    );
    assert!(
        dump.contains("\"event\": \"SpanRetx\""),
        "dump must contain the dead rail's retransmit span timeline"
    );
    assert!(
        dump.contains("\"event\": \"SpanWireTx\""),
        "retransmit timeline must belong to a real transmitted message"
    );
    assert!(
        dump.contains("\"metrics\""),
        "dump carries a metrics snapshot"
    );

    // The same dump was persisted to NOMAD_FLIGHT_DIR.
    let on_disk = std::fs::read_to_string(dir.join("flight-0.json"))
        .expect("NOMAD_FLIGHT_DIR must receive flight-0.json");
    assert_eq!(on_disk, dump);

    if ephemeral {
        std::env::remove_var("NOMAD_FLIGHT_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Streams `n` tagged messages a→b and waits for in-order delivery.
fn stream(a: &Arc<CommCore>, b: &Arc<CommCore>, n: u64) {
    let sends: Vec<_> = (0..n)
        .map(|i| {
            a.isend(G, 7, Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap()
        })
        .collect();
    let recvs: Vec<_> = (0..n).map(|_| b.irecv(G, 7).unwrap()).collect();
    for (i, r) in recvs.iter().enumerate() {
        while !r.is_complete() {
            a.progress();
            b.progress();
        }
        assert_eq!(r.take_data().unwrap().as_ref(), (i as u64).to_le_bytes());
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }
}
