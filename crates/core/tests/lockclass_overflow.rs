//! Regression tests for the lock-class overflow path (feature
//! `lockcheck`): gate/driver indices beyond the 16-entry
//! `COLLECT_{TX,RX}_LOCK_CLASSES` / `DRIVER_LOCK_CLASSES` tables must
//! (a) increment the `core.lockclass_overflow` counter and (b) still
//! participate in lockcheck cycle detection, under the per-family shared
//! `*.overflow` class rather than dropping out of the graph entirely.
//!
//! The lockcheck ordering graph is process-global, so the tests in this
//! file coordinate on which edge directions they establish: only
//! `overflow_lock_participates_in_cycle_detection` records edges, and it
//! keeps both directions inside one test body.

#![cfg(feature = "lockcheck")]

use nm_core::{LockPolicy, LockingMode, SectionKind};
use nm_sync::lockcheck;
use std::sync::Mutex;

/// Gates/drivers one past the 16-entry class tables.
const OVERFLOWING: usize = 17;

/// The overflow counter and the lockcheck graph are process-global; the
/// test harness runs tests on concurrent threads, so serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn overflow_increments_counter_and_keeps_a_class() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let counter = nm_core::metrics::lockclass_overflow();
    let before = counter.get();
    let p = LockPolicy::new(LockingMode::Fine, OVERFLOWING, OVERFLOWING);
    // One tx + one rx + one vci + one retrans + one driver lock past the
    // tables.
    assert_eq!(counter.get() - before, 5);

    // The overflowed lock is not untracked: lockcheck sees it under the
    // family's shared overflow class.
    let g = p.enter(SectionKind::CollectTx(16));
    assert_eq!(lockcheck::held_classes(), ["core.collect.tx.overflow"]);
    drop(g);
    assert!(lockcheck::held_classes().is_empty());

    let d = p.enter(SectionKind::Driver(16));
    assert_eq!(lockcheck::held_classes(), ["core.driver.overflow"]);
    drop(d);
}

#[test]
fn two_overflow_locks_of_one_family_may_nest() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // 18 gates → gates 16 and 17 both map to "core.collect.rx.overflow".
    // Holding both at once is legitimate (they are distinct locks) and
    // must not be misreported as a recursive acquisition.
    let p = LockPolicy::new(LockingMode::Fine, 18, 1);
    let a = p.enter(SectionKind::CollectRx(16));
    let b = p.enter(SectionKind::CollectRx(17));
    assert_eq!(
        lockcheck::held_classes(),
        ["core.collect.rx.overflow", "core.collect.rx.overflow"]
    );
    drop((a, b));
}

#[test]
fn overflow_lock_participates_in_cycle_detection() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let p = std::sync::Arc::new(LockPolicy::new(LockingMode::Fine, OVERFLOWING, OVERFLOWING));

    // Establish the order overflow-tx → driver.2 (both from gate/driver
    // indices this test owns, to stay independent of other tests).
    {
        let tx = p.enter(SectionKind::CollectTx(16));
        let d = p.enter(SectionKind::Driver(2));
        drop((d, tx));
    }

    // The reverse order must now panic with a lock-order cycle — proving
    // the overflowed lock is a real node in the graph, not invisible.
    let p2 = std::sync::Arc::clone(&p);
    let res = std::thread::spawn(move || {
        let d = p2.enter(SectionKind::Driver(2));
        let tx = p2.enter(SectionKind::CollectTx(16));
        drop((tx, d));
    })
    .join();
    let err = res.expect_err("inverted overflow-lock order must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(
        msg.contains("lock-order cycle"),
        "expected a lock-order cycle panic, got: {msg}"
    );
    assert!(
        msg.contains("core.collect.tx.overflow"),
        "cycle report must name the overflow class: {msg}"
    );
}
