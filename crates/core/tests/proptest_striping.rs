//! Property test: striping over multiple (rail, VCI) lanes must be
//! invisible to the application's matching order.
//!
//! The oracle is the linear schedule — what a single-lane wire would
//! deliver. Whatever lane each frame rides, every (peer, tag) stream
//! must match its receives against sends in posting order, for any mix
//! of eager and rendezvous sizes, tag interleavings, and fabric shapes
//! (rails × VCIs).

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, StrategyKind};
use nm_fabric::{Fabric, WireModel};

const G: GateId = GateId(0);

/// Two cores over `rails` rails of `vcis` contexts each.
fn striped_pair(rails: usize, vcis: usize) -> (Arc<CommCore>, Arc<CommCore>) {
    // A small eager threshold and chunk size push traffic onto many
    // lanes: rendezvous payloads stripe round-robin, eager spills when
    // a context's ring fills.
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .eager_threshold(256)
        .rdv_chunk(512);
    let model = WireModel {
        tx_depth: 2,
        ..WireModel::ideal()
    };
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair_vcis(&vec![model; rails], true, vcis);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();
    (a, b)
}

/// Deterministic payload: message index header + patterned body.
fn payload(i: usize, len: usize) -> Bytes {
    let mut v = Vec::with_capacity(8 + len);
    v.extend_from_slice(&(i as u64).to_le_bytes());
    v.extend((0..len).map(|j| (i.wrapping_mul(41) ^ j) as u8));
    Bytes::from(v)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case drives a full multi-lane channel
        .. ProptestConfig::default()
    })]

    #[test]
    fn striped_delivery_matches_the_linear_oracle(
        rails in 1usize..3,
        vcis in 1usize..5,
        msgs in prop::collection::vec((0u64..3, 0usize..3_000), 1..30),
    ) {
        let (a, b) = striped_pair(rails, vcis);

        // Oracle: the linear schedule, split into per-tag streams.
        let sent: Vec<(u64, Bytes)> = msgs
            .iter()
            .enumerate()
            .map(|(i, &(tag, len))| (tag, payload(i, len)))
            .collect();

        let sends: Vec<_> = sent
            .iter()
            .map(|(tag, p)| a.isend(G, *tag, p.clone()).unwrap())
            .collect();
        // Post the receives tag by tag, in schedule order — matching
        // within a (peer, tag) stream must be FIFO no matter the lanes.
        let recvs: Vec<_> = sent
            .iter()
            .map(|(tag, _)| b.irecv(G, *tag).unwrap())
            .collect();
        for (i, r) in recvs.iter().enumerate() {
            let mut spins = 0u64;
            while !r.is_complete() {
                a.progress();
                b.progress();
                spins += 1;
                prop_assert!(spins < 10_000_000, "message {} never completed", i);
            }
            let got = r.take_data().unwrap();
            prop_assert_eq!(
                &got, &sent[i].1,
                "tag {} stream diverged from the linear oracle at message {}",
                sent[i].0, i
            );
        }
        for s in &sends {
            let mut spins = 0u64;
            while !s.is_complete() {
                a.progress();
                b.progress();
                spins += 1;
                prop_assert!(spins < 10_000_000, "send never completed");
            }
        }
        prop_assert_eq!(a.pending().xfer_items, 0);
        prop_assert_eq!(b.pending().posted_recvs, 0);
    }
}
