//! End-to-end tests of the multi-VCI transfer layer: per-(rail, VCI)
//! lane selection, striping under backpressure, the racy `can_post`
//! hint, `flush_xfer` requeue ordering, and per-lane failover.

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use nm_core::wire::{decode_frame, decode_packet, Entry};
use nm_core::{
    CommCore, CoreBuilder, CoreConfig, GateId, LockingMode, ReliabilityConfig, StrategyKind,
};
use nm_fabric::{Driver, DriverCaps, Fabric, LoopbackDriver, PostError, WireModel};
use nm_sync::WaitStrategy;

const G: GateId = GateId(0);

/// Builds two connected cores over one rail of `n_vcis` contexts.
fn vci_pair(config: CoreConfig, model: WireModel, n_vcis: usize) -> (Arc<CommCore>, Arc<CommCore>) {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair_vcis(&[model], true, n_vcis);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();
    (a, b)
}

#[test]
fn multi_vci_eager_and_rendezvous_roundtrip() {
    for mode in [LockingMode::Fine, LockingMode::Coarse] {
        let config = CoreConfig::default().locking(mode).eager_threshold(1024);
        let (a, b) = vci_pair(config, WireModel::ideal(), 4);
        let sizes = [0usize, 1, 64, 1024, 1025, 40_000];
        for (i, &n) in sizes.iter().enumerate() {
            let payload = Bytes::from((0..n).map(|j| (j % 256) as u8).collect::<Vec<u8>>());
            let send = a.isend(G, i as u64, payload.clone()).unwrap();
            let recv = b.irecv(G, i as u64).unwrap();
            while !recv.is_complete() || !send.is_complete() {
                a.progress();
                b.progress();
            }
            assert_eq!(recv.take_data().unwrap(), payload, "size {n} mode {mode:?}");
        }
    }
}

#[test]
fn one_vci_fabric_behaves_like_plain_pair() {
    // `pair` is `pair_vcis(.., 1)`: the same workload must produce the
    // same packet counts — lane indices collapse to rail indices.
    let run = |n_vcis: usize| {
        let config = CoreConfig::default()
            .strategy(StrategyKind::Fifo)
            .eager_threshold(512)
            .rdv_chunk(1024);
        let (a, b) = vci_pair(config, WireModel::ideal(), n_vcis);
        let payload = Bytes::from(vec![0xA5u8; 16 * 1024]);
        let recv = b.irecv(G, 1).unwrap();
        let send = a.isend(G, 1, payload.clone()).unwrap();
        while !recv.is_complete() || !send.is_complete() {
            a.progress();
            b.progress();
        }
        assert_eq!(recv.take_data().unwrap(), payload);
        a.stats().packets_tx.get()
    };
    assert_eq!(run(1), run(1), "single-VCI runs must be reproducible");
}

#[test]
fn eager_spills_across_vci_contexts_under_backpressure() {
    // A depth-1 tx ring per context: each eager send fills the lane the
    // optimization layer picked, so the next send must spill onto the
    // next context — all four end up carrying traffic.
    let model = WireModel {
        tx_depth: 1,
        ..WireModel::ideal()
    };
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair_vcis(&[model], true, 4);
    let a = CoreBuilder::new(CoreConfig::default().strategy(StrategyKind::Fifo))
        .add_gate(pa.drivers())
        .build();
    for t in 0..4u64 {
        let s = a.isend(G, t, Bytes::from(vec![t as u8; 32])).unwrap();
        assert!(s.is_complete(), "eager completes on post");
    }
    let nic = pb.sim_drivers()[0].nic();
    for v in 0..4 {
        assert!(nic.has_inbound_vci(v), "context {v} carried no packet");
        assert!(pb.drivers()[0].poll_vci(v).is_some(), "context {v} empty");
    }
}

/// A driver whose `can_post` hint is *always* stale-true: the inner
/// depth-1 loopback refuses the post whenever it is full, which is the
/// worst case of the racy hint a multi-queue driver can present. Every
/// successful post is recorded for wire-order inspection.
struct LyingDriver {
    caps: DriverCaps,
    inner: LoopbackDriver,
    log: Arc<Mutex<Vec<Bytes>>>,
}

impl LyingDriver {
    fn new(inner: LoopbackDriver, log: Arc<Mutex<Vec<Bytes>>>) -> Self {
        LyingDriver {
            caps: DriverCaps {
                name: "lying".to_string(),
                mtu: usize::MAX,
                thread_safe: true,
            },
            inner,
            log,
        }
    }
}

impl Driver for LyingDriver {
    fn caps(&self) -> &DriverCaps {
        &self.caps
    }
    fn can_post(&self) -> bool {
        true // the hint every flusher sees, no matter the ring state
    }
    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.inner.post(data.clone())?;
        self.log.lock().unwrap().push(data);
        Ok(())
    }
    fn poll(&self) -> Option<Bytes> {
        self.inner.poll()
    }
}

#[test]
fn stale_can_post_hint_cannot_strand_xfer_items() {
    // With `can_post` permanently lying, every flush pass pops an item,
    // fails the post and restores it. The transfer must still complete:
    // each progression pass re-flushes the queue, so items drain as the
    // receiver frees ring slots.
    let log = Arc::new(Mutex::new(Vec::new()));
    let (da, db) = LoopbackDriver::pair(1);
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .eager_threshold(64)
        .rdv_chunk(128);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(LyingDriver::new(da, Arc::clone(&log))) as Arc<dyn Driver>
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    let payload = Bytes::from((0..2048u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let recv = b.irecv(G, 3).unwrap();
    let send = a.isend(G, 3, payload.clone()).unwrap();
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), payload);
    assert_eq!(a.pending().xfer_items, 0, "items stranded in a lane queue");
}

#[test]
fn flush_xfer_requeue_preserves_chunk_order_under_contention() {
    // The push-front regression test: a depth-1 ring behind a lying
    // `can_post` forces the pop → failed-post → restore path on nearly
    // every chunk. The restore must go to the *front* of the queue, so
    // the chunks still hit the wire in offset order.
    let log = Arc::new(Mutex::new(Vec::new()));
    let (da, db) = LoopbackDriver::pair(1);
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .eager_threshold(64)
        .rdv_chunk(128);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(LyingDriver::new(da, Arc::clone(&log))) as Arc<dyn Driver>
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    let payload = Bytes::from(vec![7u8; 16 * 128]); // 16 rendezvous chunks
    let recv = b.irecv(G, 9).unwrap();
    let send = a.isend(G, 9, payload.clone()).unwrap();
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), payload);

    let offsets: Vec<u32> = log
        .lock()
        .unwrap()
        .iter()
        .flat_map(|frame| {
            let f = decode_frame(frame.clone()).expect("recorded frame decodes");
            decode_packet(f.payload).expect("recorded packet decodes")
        })
        .filter_map(|e| match e {
            Entry::Data { offset, .. } => Some(offset),
            _ => None,
        })
        .collect();
    assert_eq!(offsets.len(), 16, "every chunk crossed the wire once");
    assert!(
        offsets.windows(2).all(|w| w[0] < w[1]),
        "chunks posted out of order: {offsets:?}"
    );
}

/// A two-context driver whose VCI 0 silently discards everything posted
/// to it (accepts the frame, never delivers), while VCI 1 works — the
/// single-dead-context scenario a physical rail death cannot produce.
struct HalfDeadDriver {
    caps: DriverCaps,
    vcis: [LoopbackDriver; 2],
    blackhole_zero: bool,
}

impl HalfDeadDriver {
    fn pair(blackhole_a_zero: bool) -> (HalfDeadDriver, HalfDeadDriver) {
        let (a0, b0) = LoopbackDriver::pair(256);
        let (a1, b1) = LoopbackDriver::pair(256);
        let caps = || DriverCaps {
            name: "halfdead".to_string(),
            mtu: usize::MAX,
            thread_safe: true,
        };
        (
            HalfDeadDriver {
                caps: caps(),
                vcis: [a0, a1],
                blackhole_zero: blackhole_a_zero,
            },
            HalfDeadDriver {
                caps: caps(),
                vcis: [b0, b1],
                blackhole_zero: false,
            },
        )
    }
}

impl Driver for HalfDeadDriver {
    fn caps(&self) -> &DriverCaps {
        &self.caps
    }
    fn can_post(&self) -> bool {
        self.can_post_vci(0)
    }
    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.post_vci(0, data)
    }
    fn poll(&self) -> Option<Bytes> {
        self.poll_vci(0)
    }
    fn num_vcis(&self) -> usize {
        2
    }
    fn can_post_vci(&self, vci: usize) -> bool {
        self.vcis[vci].can_post()
    }
    fn post_vci(&self, vci: usize, data: Bytes) -> Result<(), PostError> {
        if vci == 0 && self.blackhole_zero {
            return Ok(()); // accepted, never delivered
        }
        self.vcis[vci].post(data)
    }
    fn poll_vci(&self, vci: usize) -> Option<Bytes> {
        self.vcis[vci].poll()
    }
}

#[test]
fn lane_failover_moves_traffic_to_live_vci_of_same_rail() {
    // VCI 0 of the only rail black-holes its tx direction. Retransmit
    // exhaustion must kill that *lane* only: the unacked window migrates
    // to VCI 1, every message is delivered in order, and the gate stays
    // reachable — one dead context is not a dead rail.
    let (da, db) = HalfDeadDriver::pair(true);
    let rel = ReliabilityConfig {
        rto_base_ns: 5_000,
        rto_max_ns: 50_000,
        max_retries: 2,
        rail_dead_threshold: 1,
        ..ReliabilityConfig::enabled()
    };
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .reliability(rel);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();

    const N: u64 = 50;
    let sends: Vec<_> = (0..N)
        .map(|i| {
            a.isend(G, 7, Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap()
        })
        .collect();
    let recvs: Vec<_> = (0..N).map(|_| b.irecv(G, 7).unwrap()).collect();
    for (i, r) in recvs.iter().enumerate() {
        while !r.is_complete() {
            a.progress();
            b.progress();
        }
        assert_eq!(
            r.take_data().unwrap().as_ref(),
            (i as u64).to_le_bytes(),
            "message {i} lost or reordered across the lane failover"
        );
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }
    assert_eq!(
        a.stats().rails_failed.get(),
        1,
        "exactly the black-holed lane must be declared dead"
    );
    // The rail itself survives through its live context: new traffic
    // still flows (a fully dead rail would fail this with
    // PeerUnreachable).
    let send = a.isend(G, 8, Bytes::from_static(b"still here")).unwrap();
    let recv = b.irecv(G, 8).unwrap();
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"still here"));
    // Nothing lingers on the dead lane.
    for _ in 0..2_000 {
        a.progress();
        b.progress();
    }
    assert_eq!(a.pending().unacked_frames, 0, "frames left on a dead lane");
}

#[test]
fn progress_shard_drives_disjoint_lanes_to_completion() {
    // Sharded progression (one shard per would-be VCI thread) must be
    // enough to complete traffic: every lane belongs to exactly one
    // shard, and shard 0 services the timers.
    let config = CoreConfig::default().eager_threshold(256);
    let (a, b) = vci_pair(config, WireModel::ideal(), 4);
    let recvs: Vec<_> = (0..8u64).map(|t| b.irecv(G, t).unwrap()).collect();
    let sends: Vec<_> = (0..8u64)
        .map(|t| {
            let size = if t % 2 == 0 { 64 } else { 8 * 1024 };
            a.isend(G, t, Bytes::from(vec![t as u8; size])).unwrap()
        })
        .collect();
    while recvs.iter().chain(sends.iter()).any(|r| !r.is_complete()) {
        for shard in 0..4 {
            a.progress_shard(shard, 4);
            b.progress_shard(shard, 4);
        }
    }
    for (t, r) in recvs.iter().enumerate() {
        let size = if t % 2 == 0 { 64 } else { 8 * 1024 };
        assert_eq!(r.take_data().unwrap(), Bytes::from(vec![t as u8; size]));
    }
}
