//! End-to-end tests of the reliability layer over the chaos fabric:
//! exactly-once in-order delivery across loss / duplication / corruption
//! / reordering, retransmit timeouts, rail failover, deadlines and
//! cancellation hygiene.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use nm_core::{
    CommCore, CommError, CoreBuilder, CoreConfig, GateId, LockingMode, ReliabilityConfig,
    StrategyKind,
};
use nm_fabric::{ChaosDriver, Driver, FaultPlan, LoopbackDriver};
use nm_sync::WaitStrategy;

const G: GateId = GateId(0);

/// Fast-retransmit knobs so lossy tests converge in milliseconds.
fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        rto_base_ns: 50_000,   // 50 µs
        rto_max_ns: 2_000_000, // 2 ms cap
        ..ReliabilityConfig::enabled()
    }
}

/// Two connected single-rail cores whose wires both run under `plan`.
fn chaos_pair(config: CoreConfig, plan: FaultPlan) -> (Arc<CommCore>, Arc<CommCore>) {
    let (da, db) = LoopbackDriver::pair(256);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(ChaosDriver::new(da, plan.clone())) as Arc<dyn Driver>
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![Arc::new(ChaosDriver::new(db, plan)) as Arc<dyn Driver>])
        .build();
    (a, b)
}

/// Streams `n` tagged messages a→b and asserts exactly-once in-order
/// delivery by payload content; returns when both sides are drained.
fn stream_and_verify(a: &Arc<CommCore>, b: &Arc<CommCore>, n: u64) {
    let sends: Vec<_> = (0..n)
        .map(|i| {
            a.isend(G, 7, Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap()
        })
        .collect();
    let recvs: Vec<_> = (0..n).map(|_| b.irecv(G, 7).unwrap()).collect();
    for (i, r) in recvs.iter().enumerate() {
        while !r.is_complete() {
            a.progress();
            b.progress();
        }
        let got = r.take_data().unwrap();
        assert_eq!(
            got.as_ref(),
            (i as u64).to_le_bytes(),
            "message {i} delivered out of order, duplicated or lost"
        );
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }
}

#[test]
fn reliable_eager_over_lossy_wire_all_locking_modes() {
    for mode in LockingMode::ALL {
        let plan = FaultPlan::new(0xC0FFEE).loss(0.05);
        let config = CoreConfig::default()
            .locking(mode)
            .strategy(StrategyKind::Fifo)
            .reliability(fast_reliability());
        let (a, b) = chaos_pair(config, plan);
        stream_and_verify(&a, &b, 200);
        assert!(
            a.stats().retransmits.get() > 0,
            "5% loss over 200 frames must trigger retransmits (mode {mode:?})"
        );
    }
}

#[test]
fn reliable_rendezvous_over_lossy_wire() {
    let plan = FaultPlan::new(42).loss(0.03);
    let config = CoreConfig::default()
        .eager_threshold(1024)
        .reliability(fast_reliability());
    let (a, b) = chaos_pair(config, plan);
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i * 31 + 7) as u8).collect();
    let send = a.isend(G, 9, Bytes::from(payload.clone())).unwrap();
    let recv = b.irecv(G, 9).unwrap();
    while !recv.is_complete() || !send.is_complete() {
        a.progress();
        b.progress();
    }
    assert_eq!(recv.take_data().unwrap(), Bytes::from(payload));
    assert!(a.stats().rdv_started.get() >= 1);
}

#[test]
fn duplicates_and_corruption_are_filtered() {
    let plan = FaultPlan::new(7).duplicate(0.10).corrupt(0.05);
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .reliability(fast_reliability());
    let (a, b) = chaos_pair(config, plan);
    stream_and_verify(&a, &b, 300);
    let dup = a.stats().dup_dropped.get() + b.stats().dup_dropped.get();
    let bad = a.stats().corrupt_dropped.get() + b.stats().corrupt_dropped.get();
    assert!(
        dup > 0,
        "10% duplication over 300 frames must hit the filter"
    );
    assert!(
        bad > 0,
        "5% corruption over 300 frames must hit the checksum"
    );
}

#[test]
fn reordering_is_resequenced_by_the_window() {
    let plan = FaultPlan::new(99).reorder(4);
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .reliability(fast_reliability());
    let (a, b) = chaos_pair(config, plan);
    stream_and_verify(&a, &b, 300);
    assert!(
        b.stats().ooo_buffered.get() > 0,
        "depth-4 reordering must exercise the out-of-order buffer"
    );
}

#[test]
fn soak_three_seeds_no_loss_dup_or_reorder_reaches_app() {
    // The acceptance soak: heavy combined faults, three seeds, and the
    // application still sees every message exactly once, in order, with
    // nothing left behind in any queue.
    for seed in [1u64, 0xBEEF, 0x5EED_5EED] {
        let plan = FaultPlan::new(seed)
            .loss(0.02)
            .duplicate(0.02)
            .corrupt(0.01)
            .delay(0.02, 3)
            .reorder(3);
        let config = CoreConfig::default()
            .strategy(StrategyKind::Fifo)
            .reliability(fast_reliability());
        let (a, b) = chaos_pair(config, plan);
        stream_and_verify(&a, &b, 2_500);
        // Drain in-flight acks/retransmits, then nothing may linger.
        for _ in 0..2_000 {
            a.progress();
            b.progress();
        }
        let pa = a.pending();
        let pb = b.pending();
        assert_eq!(pa.posted_recvs, 0, "seed {seed:#x}");
        assert_eq!(pb.posted_recvs, 0, "seed {seed:#x}");
        assert_eq!(
            pa.unacked_frames, 0,
            "seed {seed:#x}: leaked unacked frames"
        );
        assert_eq!(
            pb.unacked_frames, 0,
            "seed {seed:#x}: leaked unacked frames"
        );
    }
}

#[test]
fn failover_moves_unacked_traffic_to_surviving_rail() {
    // Rail 0 of the a→b direction drops everything; rail 1 is clean.
    // The sender must declare rail 0 dead and re-frame its unacked
    // window on rail 1 without losing a message.
    let (da0, db0) = LoopbackDriver::pair(256);
    let (da1, db1) = LoopbackDriver::pair(256);
    let rel = ReliabilityConfig {
        rto_base_ns: 5_000,
        rto_max_ns: 50_000,
        max_retries: 2,
        rail_dead_threshold: 1,
        ..ReliabilityConfig::enabled()
    };
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .reliability(rel);
    let a = CoreBuilder::new(config.clone())
        .add_gate(vec![
            Arc::new(da0) as Arc<dyn Driver>,
            Arc::new(da1) as Arc<dyn Driver>,
        ])
        .build();
    let b = CoreBuilder::new(config)
        .add_gate(vec![
            Arc::new(ChaosDriver::new(db0, FaultPlan::new(3).loss(1.0))) as Arc<dyn Driver>,
            Arc::new(db1) as Arc<dyn Driver>,
        ])
        .build();
    stream_and_verify(&a, &b, 100);
    assert_eq!(
        a.stats().rails_failed.get(),
        1,
        "the black-holed rail must be declared dead exactly once"
    );
}

#[test]
fn all_rails_dead_fails_requests_with_peer_unreachable() {
    let plan = FaultPlan::new(11).loss(1.0);
    let rel = ReliabilityConfig {
        rto_base_ns: 5_000,
        rto_max_ns: 50_000,
        max_retries: 2,
        rail_dead_threshold: 1,
        ..ReliabilityConfig::enabled()
    };
    let (da, db) = LoopbackDriver::pair(256);
    let a = CoreBuilder::new(CoreConfig::default().reliability(rel.clone()))
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let _b = CoreBuilder::new(CoreConfig::default().reliability(rel))
        .add_gate(vec![Arc::new(ChaosDriver::new(db, plan)) as Arc<dyn Driver>])
        .build();
    // Eager sends complete locally once the frame is in the retransmit
    // buffer — the *transport* then discovers the peer is gone.
    let send = a.isend(G, 1, Bytes::from_static(b"into the void")).unwrap();
    a.wait(&send, WaitStrategy::Busy).unwrap();
    let start = std::time::Instant::now();
    while a.stats().rails_failed.get() == 0 {
        a.progress();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "black-holed rail never exhausted its retries"
        );
    }
    assert_eq!(a.stats().rails_failed.get(), 1);
    // Once the peer is gone, new posts fail fast instead of queueing.
    assert_eq!(
        a.isend(G, 2, Bytes::from_static(b"more")).unwrap_err(),
        CommError::PeerUnreachable
    );
    // The dead gate holds no undeliverable frames.
    assert_eq!(a.pending().unacked_frames, 0);
}

#[test]
fn wait_deadline_times_out_and_reaps_the_posting() {
    let (da, db) = LoopbackDriver::pair(16);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let _b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    let recv = a.irecv(G, 1).unwrap();
    assert_eq!(a.pending().posted_recvs, 1);
    let err = a
        .wait_deadline(&recv, WaitStrategy::Busy, Duration::from_millis(5))
        .unwrap_err();
    assert_eq!(err, CommError::Timeout);
    assert!(recv.is_complete());
    // The timed-out posting is pruned like a cancelled one.
    assert_eq!(a.pending().posted_recvs, 0);
}

#[test]
fn wait_deadline_returns_ok_when_completion_wins() {
    let (da, db) = LoopbackDriver::pair(16);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    let send = b.isend(G, 1, Bytes::from_static(b"on time")).unwrap();
    b.wait(&send, WaitStrategy::Busy).unwrap();
    let recv = a.irecv(G, 1).unwrap();
    a.wait_deadline(&recv, WaitStrategy::Busy, Duration::from_secs(10))
        .unwrap();
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"on time"));
}

#[test]
fn expire_after_fires_from_the_progress_loop() {
    let (da, db) = LoopbackDriver::pair(16);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
        .build();
    let _b = CoreBuilder::new(CoreConfig::default())
        .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
        .build();
    let recv = a.irecv(G, 1).unwrap();
    a.expire_after(&recv, Duration::from_millis(2));
    let start = std::time::Instant::now();
    while !recv.is_complete() {
        a.progress();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "armed deadline never fired"
        );
    }
    assert_eq!(recv.take_error(), Some(CommError::Timeout));
}

#[test]
fn cancelled_receives_do_not_leak_postings() {
    let (a, b) = {
        let (da, db) = LoopbackDriver::pair(16);
        let a = CoreBuilder::new(CoreConfig::default())
            .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
            .build();
        let b = CoreBuilder::new(CoreConfig::default())
            .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
            .build();
        (a, b)
    };
    let recvs: Vec<_> = (0..8).map(|_| a.irecv(G, 1).unwrap()).collect();
    let wild = a.irecv_any(G).unwrap();
    assert_eq!(a.pending().posted_recvs, 9);
    for r in &recvs {
        assert!(r.cancel());
    }
    assert!(wild.cancel());
    assert_eq!(
        a.pending().posted_recvs,
        0,
        "cancelled postings must be reaped"
    );
    // A message sent to a cancelled tag becomes unexpected, not lost.
    let s = b.isend(G, 1, Bytes::from_static(b"late")).unwrap();
    b.wait(&s, WaitStrategy::Busy).unwrap();
    while a.progress() > 0 {}
    assert_eq!(a.stats().unexpected_msgs.get(), 1);
    let fresh = a.irecv(G, 1).unwrap();
    assert!(fresh.is_complete());
    assert_eq!(fresh.take_data().unwrap(), Bytes::from_static(b"late"));
}

#[test]
fn cancellations_under_chaos_leak_nothing() {
    // Cancel every other receive mid-stream under combined faults; the
    // survivors still get their payloads in order and the queues drain
    // to empty (the soak's leak check).
    let plan = FaultPlan::new(0xDEAD).loss(0.02).duplicate(0.02).reorder(2);
    let config = CoreConfig::default()
        .strategy(StrategyKind::Fifo)
        .reliability(fast_reliability());
    let (a, b) = chaos_pair(config, plan);
    let n = 400u64;
    // Tag per message so cancelling a receive detaches exactly one
    // message (which then parks as unexpected).
    let sends: Vec<_> = (0..n)
        .map(|i| {
            a.isend(G, i, Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap()
        })
        .collect();
    let recvs: Vec<_> = (0..n).map(|i| b.irecv(G, i).unwrap()).collect();
    for (i, r) in recvs.iter().enumerate() {
        if i % 2 == 0 {
            r.cancel();
        }
    }
    for (i, r) in recvs.iter().enumerate() {
        if i % 2 == 0 {
            continue;
        }
        while !r.is_complete() {
            a.progress();
            b.progress();
        }
        assert_eq!(r.take_data().unwrap().as_ref(), (i as u64).to_le_bytes());
    }
    for s in &sends {
        a.wait(s, WaitStrategy::Busy).unwrap();
    }
    for _ in 0..2_000 {
        a.progress();
        b.progress();
    }
    let pb = b.pending();
    assert_eq!(pb.posted_recvs, 0, "cancelled receives leaked postings");
    assert_eq!(pb.unacked_frames, 0);
    assert_eq!(a.pending().unacked_frames, 0);
    // The cancelled halves arrived as unexpected messages.
    assert_eq!(b.stats().unexpected_msgs.get(), n / 2);
}
