//! Deterministic models of the paper's experiments, one per figure.
//!
//! Each function builds a [`Vm`], spawns the experiment's threads (nodes,
//! progression threads, tasklet runners), runs it, and returns one
//! [`Series`] per curve of the figure. The models mirror the *lock
//! sequence* of the real `nm-core` implementation:
//!
//! * **send path** — coarse: one global-lock cycle per `isend` call;
//!   fine: one collect-lock cycle (submit) + one driver-lock cycle
//!   (transmit); no-locking: none.
//! * **poll pass** — coarse: one global-lock cycle; fine: one driver-lock
//!   cycle, plus a collect-lock cycle on successful dispatch.
//!
//! Latencies are reported as the paper plots them: half the measured
//! round-trip time, in microseconds.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use nm_fabric::WireModel;
use nm_topo::{Distance, Topology};

use crate::{ChanId, EventId, LockId, SimCosts, ThreadCtx, Vm};

/// Message sizes of Figs 3, 5, 6 and 7: 1 B – 2 KB, powers of two.
pub fn small_sizes() -> Vec<usize> {
    (0..=11).map(|p| 1usize << p).collect()
}

/// Message sizes of Fig 9: 2 KB – 32 KB.
pub fn fig9_sizes() -> Vec<usize> {
    (11..=15).map(|p| 1usize << p).collect()
}

/// One curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// `(message size in bytes, one-way latency in µs)` points.
    pub points: Vec<(usize, f64)>,
}

/// The locking modes as the sim models them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fig 3 "no locking".
    NoLock,
    /// Fig 2/3 coarse grain.
    Coarse,
    /// Fig 4/3 fine grain.
    Fine,
}

impl Mode {
    /// Paper legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::NoLock => "no locking",
            Mode::Coarse => "coarse-grain locking",
            Mode::Fine => "fine-grain locking",
        }
    }
}

/// The per-node locks of the model.
#[derive(Clone, Copy)]
struct NodeLocks {
    global: LockId,
    collect: LockId,
    driver: LockId,
}

fn node_locks(vm: &mut Vm) -> NodeLocks {
    NodeLocks {
        global: vm.lock(),
        collect: vm.lock(),
        driver: vm.lock(),
    }
}

/// Models one `isend` (submit + transmit) under `mode`.
fn model_isend(ctx: &mut ThreadCtx, mode: Mode, locks: NodeLocks, chan: ChanId, size: usize) {
    let c = *ctx.costs();
    let half = c.submit_ns / 2;
    match mode {
        Mode::NoLock => {
            ctx.advance(c.submit_ns);
            ctx.chan_send(chan, size);
        }
        Mode::Coarse => {
            // The paper's coarse send path takes the library-wide lock
            // twice: "once for submitting the message to the collect
            // layer, once to transmit it through the network" — the
            // 2 x 70 ns = 140 ns of Fig 3.
            ctx.lock(locks.global);
            ctx.advance(half);
            ctx.unlock(locks.global);
            ctx.lock(locks.global);
            ctx.advance(c.submit_ns - half);
            ctx.chan_send(chan, size);
            ctx.unlock(locks.global);
        }
        Mode::Fine => {
            // Submit to the collect layer, then transmit via the driver.
            ctx.lock(locks.collect);
            ctx.advance(half);
            ctx.unlock(locks.collect);
            ctx.lock(locks.driver);
            ctx.advance(c.submit_ns - half);
            ctx.chan_send(chan, size);
            ctx.unlock(locks.driver);
        }
    }
}

/// One empty poll pass's cost (the waiting loop's period) for `mode`.
///
/// The application's own wait in coarse mode holds the library lock, so
/// its passes are bare polls; fine mode pays the driver lock every pass.
fn pass_period(c: &SimCosts, mode: Mode, via_pioman: bool, held: bool) -> u64 {
    let lockwork = match mode {
        Mode::NoLock => 0,
        Mode::Coarse if held => 0,
        Mode::Coarse => c.lock_cycle_ns,
        Mode::Fine => c.lock_cycle_ns,
    };
    let pioman = if via_pioman { c.pioman_pass_ns / 4 } else { 0 };
    (c.poll_pass_ns + lockwork + pioman).max(1)
}

/// Blocks until the next packet lands, then aligns to the poll-pass grid:
/// a busy poller would have discovered the packet on its next pass
/// boundary after delivery. O(1) in simulator events.
fn recv_aligned(ctx: &mut ThreadCtx, chan: ChanId, period: u64) -> usize {
    let start = ctx.now();
    let size = ctx.chan_recv_wait(chan);
    let elapsed = ctx.now() - start;
    let target = (elapsed.div_ceil(period)).max(1) * period;
    ctx.advance(target - elapsed);
    size
}

/// Charges the successful detection pass (decode + dispatch) costs.
fn charge_detection(
    ctx: &mut ThreadCtx,
    mode: Mode,
    locks: NodeLocks,
    via_pioman: bool,
    held: bool,
) {
    let c = *ctx.costs();
    match mode {
        Mode::NoLock => ctx.advance(c.poll_pass_ns),
        Mode::Coarse if held => ctx.advance(c.poll_pass_ns),
        Mode::Coarse => ctx.with_lock(locks.global, c.poll_pass_ns),
        Mode::Fine => {
            // Driver poll, then dispatch against the collect-layer lists.
            ctx.with_lock(locks.driver, c.poll_pass_ns);
            ctx.with_lock(locks.collect, c.poll_pass_ns);
        }
    }
    if via_pioman {
        // Completion travels through the engine's request lists (Fig 6's
        // "management of PIOMan internal lists as well as locking").
        ctx.advance(c.pioman_pass_ns);
    }
}

/// Models the application's own busy wait (`MPI_Wait` with active
/// waiting). In coarse mode the library-wide lock is held across the
/// whole wait — the wait loop runs *inside* the library (Fig 2), which is
/// exactly why two concurrent pingpongs serialize in Fig 5. Background
/// agents must use [`model_agent_recv`] instead.
fn model_recv_busy(
    ctx: &mut ThreadCtx,
    mode: Mode,
    locks: NodeLocks,
    chan: ChanId,
    via_pioman: bool,
) -> usize {
    let c = *ctx.costs();
    if mode == Mode::Coarse {
        ctx.lock(locks.global);
    }
    let period = pass_period(&c, mode, via_pioman, true);
    let size = recv_aligned(ctx, chan, period);
    charge_detection(ctx, mode, locks, via_pioman, true);
    if mode == Mode::Coarse {
        ctx.unlock(locks.global);
    }
    size
}

/// A background agent's receive loop: per-pass locking (never holds the
/// coarse lock across the wait, unlike an application's own busy wait).
fn model_agent_recv(
    ctx: &mut ThreadCtx,
    mode: Mode,
    locks: NodeLocks,
    chan: ChanId,
    via_pioman: bool,
) -> usize {
    let c = *ctx.costs();
    let period = pass_period(&c, mode, via_pioman, false);
    let size = recv_aligned(ctx, chan, period);
    charge_detection(ctx, mode, locks, via_pioman, false);
    size
}

const WARMUP: usize = 8;
const ITERS: usize = 48;

/// Result collector shared between sim threads and the harness.
type Samples = Arc<Mutex<Vec<f64>>>;

fn mean_us(samples: &Samples) -> f64 {
    let s = samples.lock();
    s.iter().sum::<f64>() / s.len() as f64
}

/// One pingpong (Figs 3 and 6): returns the mean one-way latency (µs).
fn pingpong_once(costs: SimCosts, mode: Mode, size: usize, via_pioman: bool) -> f64 {
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let ba = vm.chan(WireModel::myri_10g());
    let samples: Samples = Arc::new(Mutex::new(Vec::new()));

    let s2 = Arc::clone(&samples);
    vm.spawn(0, move |ctx| {
        for i in 0..WARMUP + ITERS {
            let t0 = ctx.now();
            ctx.advance(1); // loop overhead: the gap between library calls
            model_isend(ctx, mode, locks_a, ab, size);
            model_recv_busy(ctx, mode, locks_a, ba, via_pioman);
            if i >= WARMUP {
                s2.lock().push((ctx.now() - t0) as f64 / 2_000.0);
            }
        }
    });
    vm.spawn(1, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            ctx.advance(1);
            let got = model_recv_busy(ctx, mode, locks_b, ab, via_pioman);
            model_isend(ctx, mode, locks_b, ba, got);
        }
    });
    vm.run();
    mean_us(&samples)
}

/// **Fig 3** — impact of locking on latency: pingpong under the three
/// locking modes.
pub fn fig3_locking_latency(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    [Mode::Coarse, Mode::Fine, Mode::NoLock]
        .iter()
        .map(|&mode| Series {
            label: mode.label().to_string(),
            points: sizes
                .iter()
                .map(|&s| (s, pingpong_once(costs, mode, s, false)))
                .collect(),
        })
        .collect()
}

/// Two concurrent pingpongs (Fig 5): returns the two threads' mean
/// one-way latencies.
fn concurrent_pingpong_once(costs: SimCosts, mode: Mode, size: usize) -> [f64; 2] {
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    // Two independent pingpong flows; each direction's two logical
    // channels share one physical NIC wire (Fig 5's "more intensive use
    // of the NIC").
    let ab0 = vm.chan(WireModel::myri_10g());
    let ab1 = vm.chan_sharing_wire(WireModel::myri_10g(), ab0);
    let ba0 = vm.chan(WireModel::myri_10g());
    let ba1 = vm.chan_sharing_wire(WireModel::myri_10g(), ba0);
    let flows = [(ab0, ba0), (ab1, ba1)];

    let mut per_thread = Vec::new();
    for (t, &(ab, ba)) in flows.iter().enumerate() {
        let samples: Samples = Arc::new(Mutex::new(Vec::new()));
        per_thread.push(Arc::clone(&samples));
        vm.spawn(t, move |ctx| {
            for i in 0..WARMUP + ITERS {
                let t0 = ctx.now();
                ctx.advance(1); // loop overhead: the gap between library calls
                model_isend(ctx, mode, locks_a, ab, size);
                model_recv_busy(ctx, mode, locks_a, ba, false);
                if i >= WARMUP {
                    samples.lock().push((ctx.now() - t0) as f64 / 2_000.0);
                }
            }
        });
    }
    for (t, &(ab, ba)) in flows.iter().enumerate() {
        vm.spawn(2 + t, move |ctx| {
            for _ in 0..WARMUP + ITERS {
                ctx.advance(1);
                let got = model_recv_busy(ctx, mode, locks_b, ab, false);
                model_isend(ctx, mode, locks_b, ba, got);
            }
        });
    }
    vm.run();
    [mean_us(&per_thread[0]), mean_us(&per_thread[1])]
}

/// **Fig 5** — two threads perform pingpongs concurrently, coarse vs fine,
/// against the single-thread reference.
pub fn fig5_concurrent_pingpong(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    let mut series = vec![Series {
        label: "1 thread".into(),
        points: sizes
            .iter()
            .map(|&s| (s, pingpong_once(costs, Mode::Fine, s, false)))
            .collect(),
    }];
    for mode in [Mode::Fine, Mode::Coarse] {
        let results: Vec<(usize, [f64; 2])> = sizes
            .iter()
            .map(|&s| (s, concurrent_pingpong_once(costs, mode, s)))
            .collect();
        for t in 0..2 {
            series.push(Series {
                label: format!("{} (thread {})", mode.label(), t + 1),
                points: results.iter().map(|&(s, r)| (s, r[t])).collect(),
            });
        }
    }
    series
}

/// **Fig 6** — impact of PIOMan on latency: polling through the engine
/// registry vs direct polling, both locking modes.
pub fn fig6_pioman_overhead(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    let mut series = Vec::new();
    for (via, tag) in [(true, "PIOMan "), (false, "")] {
        for mode in [Mode::Coarse, Mode::Fine] {
            series.push(Series {
                label: format!("{tag}{}", mode.label()),
                points: sizes
                    .iter()
                    .map(|&s| (s, pingpong_once(costs, mode, s, via)))
                    .collect(),
            });
        }
    }
    series
}

/// Waiting strategies of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Busy waiting (the app polls).
    Active,
    /// Semaphore blocking (a progression agent polls and signals).
    Passive,
    /// Fixed spin: poll for the window, then block.
    FixedSpin(u64),
}

impl WaitKind {
    fn label(&self) -> String {
        match self {
            WaitKind::Active => "active waiting".into(),
            WaitKind::Passive => "passive waiting".into(),
            WaitKind::FixedSpin(ns) => format!("fixed spin {} µs", ns / 1000),
        }
    }
}

/// Pingpong with an explicit waiting strategy (Fig 7): per-node
/// progression agents poll and signal; the app blocks, spins, or both.
fn waiting_pingpong_once(costs: SimCosts, mode: Mode, size: usize, wait: WaitKind) -> f64 {
    if wait == WaitKind::Active {
        return pingpong_once(costs, mode, size, false);
    }
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let ba = vm.chan(WireModel::myri_10g());
    let (ev_a, ev_b) = (vm.event(), vm.event());
    let samples: Samples = Arc::new(Mutex::new(Vec::new()));

    let wait_on = move |ctx: &mut ThreadCtx, ev: EventId| match wait {
        WaitKind::Active => unreachable!(),
        WaitKind::Passive => ctx.event_wait_blocking(ev),
        WaitKind::FixedSpin(window) => {
            let pass = ctx.costs().poll_pass_ns;
            ctx.event_fixed_spin_wait(ev, window, pass)
        }
    };

    // Node A application (core 0) + progression agent (same core 0: the
    // scheduler polls on the blocked thread's own CPU, as in §3.3).
    let s2 = Arc::clone(&samples);
    vm.spawn(0, move |ctx| {
        for i in 0..WARMUP + ITERS {
            let t0 = ctx.now();
            model_isend(ctx, mode, locks_a, ab, size);
            wait_on(ctx, ev_a);
            ctx.event_reset(ev_a);
            if i >= WARMUP {
                s2.lock().push((ctx.now() - t0) as f64 / 2_000.0);
            }
        }
    });
    vm.spawn(0, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            model_agent_recv(ctx, mode, locks_a, ba, false);
            ctx.event_signal(ev_a);
        }
    });
    // Node B: application blocks, agent polls, app echoes.
    vm.spawn(0, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            wait_on(ctx, ev_b);
            ctx.event_reset(ev_b);
            model_isend(ctx, mode, locks_b, ba, size);
        }
    });
    vm.spawn(0, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            model_agent_recv(ctx, mode, locks_b, ab, false);
            ctx.event_signal(ev_b);
        }
    });
    vm.run();
    mean_us(&samples)
}

/// **Fig 7** — impact of semaphores on latency: passive vs active waiting
/// under both locking modes.
pub fn fig7_waiting_strategies(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    let mut series = Vec::new();
    for wait in [WaitKind::Passive, WaitKind::Active] {
        for mode in [Mode::Coarse, Mode::Fine] {
            series.push(Series {
                label: format!("{} ({})", wait.label(), mode.label()),
                points: sizes
                    .iter()
                    .map(|&s| (s, waiting_pingpong_once(costs, mode, s, wait)))
                    .collect(),
            });
        }
    }
    series
}

/// Extension of Fig 7: sweep the fixed-spin window (ablation of the 5 µs
/// suggestion).
pub fn fig7_fixed_spin_sweep(costs: SimCosts, size: usize, windows_ns: &[u64]) -> Series {
    Series {
        label: format!("fixed-spin sweep at {size} B"),
        points: windows_ns
            .iter()
            .map(|&w| {
                (
                    w as usize,
                    waiting_pingpong_once(costs, Mode::Fine, size, WaitKind::FixedSpin(w)),
                )
            })
            .collect(),
    }
}

/// Pingpong with polling deferred to `poll_core` (Fig 8). The application
/// thread is bound to core 0; a progression thread on `poll_core` polls
/// the NIC and the app spins on the completion flag, paying the
/// cache-distance penalty.
fn affinity_pingpong_once(costs: SimCosts, topo: &Topology, size: usize, poll_core: usize) -> f64 {
    if poll_core == 0 {
        // Polling on the application's own core = the app polls directly.
        return pingpong_once(costs, Mode::Fine, size, false);
    }
    let mut vm = Vm::new(costs, topo.clone());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let ba = vm.chan(WireModel::myri_10g());
    let (ev_a, ev_b) = (vm.event(), vm.event());
    let samples: Samples = Arc::new(Mutex::new(Vec::new()));

    // Both nodes run the same configuration (the paper deploys the same
    // build on both ends): app on core 0, poller on `poll_core`.
    let s2 = Arc::clone(&samples);
    vm.spawn(0, move |ctx| {
        let pass = ctx.costs().poll_pass_ns;
        for i in 0..WARMUP + ITERS {
            let t0 = ctx.now();
            model_isend(ctx, Mode::Fine, locks_a, ab, size);
            // Spin on the completion flag the poller will set: no context
            // switch, but the flag and payload live in the poller's cache.
            ctx.event_busy_wait(ev_a, pass);
            ctx.event_reset(ev_a);
            if i >= WARMUP {
                s2.lock().push((ctx.now() - t0) as f64 / 2_000.0);
            }
        }
    });
    vm.spawn(poll_core, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            model_agent_recv(ctx, Mode::Fine, locks_a, ba, false);
            ctx.event_signal(ev_a);
        }
    });
    // Node B: echo with the same deferred-polling placement.
    vm.spawn(0, move |ctx| {
        let pass = ctx.costs().poll_pass_ns;
        for _ in 0..WARMUP + ITERS {
            ctx.event_busy_wait(ev_b, pass);
            ctx.event_reset(ev_b);
            model_isend(ctx, Mode::Fine, locks_b, ba, size);
        }
    });
    vm.spawn(poll_core, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            model_agent_recv(ctx, Mode::Fine, locks_b, ab, false);
            ctx.event_signal(ev_b);
        }
    });
    vm.run();
    mean_us(&samples)
}

/// **Fig 8** — impact of cache affinity: polling placed on each distance
/// class of `topo` relative to the application's core 0.
pub fn fig8_cache_affinity(costs: SimCosts, topo: &Topology, sizes: &[usize]) -> Vec<Series> {
    topo.representative_cores(0)
        .into_iter()
        .map(|(dist, core)| Series {
            label: format!(
                "polling on cpu {core} ({})",
                match dist {
                    Distance::SameCore => "same core",
                    Distance::SharedCache => "shared cache",
                    Distance::SamePackage => "no shared cache",
                    Distance::CrossPackage => "other chip",
                }
            ),
            points: sizes
                .iter()
                .map(|&s| (s, affinity_pingpong_once(costs, topo, s, core)))
                .collect(),
        })
        .collect()
}

/// The offload modes of Fig 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadKind {
    /// Inline submission (the reference curve).
    Reference,
    /// Deferred to an idle core, no tasklet.
    IdleCore,
    /// Deferred via a tasklet.
    Tasklet,
}

impl OffloadKind {
    fn label(&self) -> &'static str {
        match self {
            OffloadKind::Reference => "Reference",
            OffloadKind::IdleCore => "Offloading without tasklets",
            OffloadKind::Tasklet => "Offloading using tasklets",
        }
    }
}

/// Overlap pingpong of Fig 9: non-blocking send, 10 µs of computation,
/// then wait — with the submission executed inline, by an idle core, or
/// by a tasklet.
fn offload_pingpong_once(costs: SimCosts, size: usize, kind: OffloadKind) -> f64 {
    const COMPUTE_NS: u64 = 10_000;
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let ba = vm.chan(WireModel::myri_10g());
    let work = vm.event();
    let work_b_ev = vm.event();
    let samples: Samples = Arc::new(Mutex::new(Vec::new()));

    let s2 = Arc::clone(&samples);
    vm.spawn(0, move |ctx| {
        for i in 0..WARMUP + ITERS {
            let t0 = ctx.now();
            match kind {
                OffloadKind::Reference => model_isend(ctx, Mode::Fine, locks_a, ab, size),
                OffloadKind::IdleCore | OffloadKind::Tasklet => {
                    // Enqueue the submission and let core 1 pick it up.
                    let c = ctx.costs().enqueue_ns;
                    ctx.advance(c);
                    ctx.event_signal(work);
                }
            }
            ctx.advance(COMPUTE_NS); // overlapped computation
            model_recv_busy(ctx, Mode::Fine, locks_a, ba, false);
            if i >= WARMUP {
                s2.lock().push((ctx.now() - t0) as f64 / 2_000.0);
            }
        }
    });
    if kind != OffloadKind::Reference {
        vm.spawn(1, move |ctx| {
            let gap = ctx.costs().idle_poll_gap_ns;
            for _ in 0..WARMUP + ITERS {
                // The idle core discovers the deferred submission on its
                // next pass...
                ctx.event_busy_wait(work, gap);
                ctx.event_reset(work);
                if kind == OffloadKind::Tasklet {
                    // ...and the tasklet machinery adds its state machine,
                    // pending list and wakeup costs.
                    let t = ctx.costs().tasklet_schedule_ns;
                    ctx.advance(t);
                    let sw = ctx.costs().ctx_switch_ns;
                    ctx.advance(sw);
                }
                model_isend(ctx, Mode::Fine, locks_a, ab, size);
            }
        });
    }
    // Node B mirrors A: the echo's submission takes the same path.
    let work_b = work_b_ev;
    vm.spawn(0, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            let got = model_recv_busy(ctx, Mode::Fine, locks_b, ab, false);
            match kind {
                OffloadKind::Reference => model_isend(ctx, Mode::Fine, locks_b, ba, got),
                OffloadKind::IdleCore | OffloadKind::Tasklet => {
                    let c = ctx.costs().enqueue_ns;
                    ctx.advance(c);
                    ctx.event_signal(work_b);
                }
            }
        }
    });
    if kind != OffloadKind::Reference {
        vm.spawn(1, move |ctx| {
            let gap = ctx.costs().idle_poll_gap_ns;
            for _ in 0..WARMUP + ITERS {
                ctx.event_busy_wait(work_b, gap);
                ctx.event_reset(work_b);
                if kind == OffloadKind::Tasklet {
                    let t = ctx.costs().tasklet_schedule_ns;
                    ctx.advance(t);
                    let sw = ctx.costs().ctx_switch_ns;
                    ctx.advance(sw);
                }
                model_isend(ctx, Mode::Fine, locks_b, ba, size);
            }
        });
    }
    vm.run();
    mean_us(&samples)
}

/// **Fig 9** — impact of tasklets on deferred message submission.
pub fn fig9_offload_tasklets(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    [
        OffloadKind::IdleCore,
        OffloadKind::Tasklet,
        OffloadKind::Reference,
    ]
    .iter()
    .map(|&kind| Series {
        label: kind.label().to_string(),
        points: sizes
            .iter()
            .map(|&s| (s, offload_pingpong_once(costs, s, kind)))
            .collect(),
    })
    .collect()
}

/// §4.1's claim: idle cores can manage rendezvous handshakes in the
/// background, overlapping the transfer of large messages with
/// computation.
///
/// The application posts a rendezvous send (RTS only), computes for
/// `compute_ns`, then waits. Without background progression the CTS sits
/// unhandled until the wait begins, serializing compute and transfer;
/// with a progression agent on another core the data flows during the
/// compute phase.
fn rdv_overlap_once(costs: SimCosts, size: usize, with_progression: bool) -> f64 {
    const COMPUTE_NS: u64 = 30_000;
    let chunk = 16 * 1024;
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let ba = vm.chan(WireModel::myri_10g());
    let work = vm.event();
    let samples: Samples = Arc::new(Mutex::new(Vec::new()));

    // Node A application: RTS, compute, then wait for B's ACK that the
    // whole message landed. Iterations do not pipeline: the ACK closes
    // each one, so the sample is the true makespan of compute + transfer.
    let s2 = Arc::clone(&samples);
    vm.spawn(0, move |ctx| {
        for i in 0..WARMUP + ITERS {
            let t0 = ctx.now();
            // Post the RTS (a small control message).
            model_isend(ctx, Mode::Fine, locks_a, ab, 0);
            if with_progression {
                ctx.event_signal(work);
            }
            ctx.advance(COMPUTE_NS);
            if !with_progression {
                // No idle core: the application handles the CTS only now,
                // serializing the transfer behind the compute.
                model_recv_busy(ctx, Mode::Fine, locks_a, ba, false); // CTS
                let mut sent = 0;
                while sent < size {
                    let n = chunk.min(size - sent);
                    model_isend(ctx, Mode::Fine, locks_a, ab, n);
                    sent += n;
                }
            }
            // B's ACK (size 0) confirms full delivery.
            model_recv_busy(ctx, Mode::Fine, locks_a, ba, false);
            if i >= WARMUP {
                s2.lock().push((ctx.now() - t0) as f64 / 1_000.0);
            }
        }
    });
    if with_progression {
        // The idle core: handles the CTS and drives the data transfer
        // while the application computes.
        vm.spawn(1, move |ctx| {
            let gap = ctx.costs().idle_poll_gap_ns;
            for _ in 0..WARMUP + ITERS {
                ctx.event_busy_wait(work, gap);
                ctx.event_reset(work);
                model_agent_recv(ctx, Mode::Fine, locks_a, ba, false); // CTS
                let mut sent = 0;
                while sent < size {
                    let n = chunk.min(size - sent);
                    model_isend(ctx, Mode::Fine, locks_a, ab, n);
                    sent += n;
                }
            }
        });
    }
    // Node B: replies CTS to each RTS, absorbs the data, then ACKs.
    vm.spawn(0, move |ctx| {
        for _ in 0..WARMUP + ITERS {
            model_recv_busy(ctx, Mode::Fine, locks_b, ab, false); // RTS
            model_isend(ctx, Mode::Fine, locks_b, ba, 0); // CTS
            let mut got = 0;
            while got < size {
                got += model_recv_busy(ctx, Mode::Fine, locks_b, ab, false);
            }
            model_isend(ctx, Mode::Fine, locks_b, ba, 0); // ACK
        }
    });
    vm.run();
    mean_us(&samples)
}

/// §4.1 — rendezvous overlap: total time of (RTS + 30 µs compute + wait)
/// for large messages, with and without an idle core progressing the
/// handshake in the background.
pub fn rdv_overlap(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    [
        (false, "application-driven"),
        (true, "idle-core progression"),
    ]
    .iter()
    .map(|&(with, label)| Series {
        label: label.to_string(),
        points: sizes
            .iter()
            .map(|&s| (s, rdv_overlap_once(costs, s, with)))
            .collect(),
    })
    .collect()
}

/// Streaming bandwidth (the paper's §3.1 claim that locking overhead
/// "does not impact bandwidth"): the sender pushes `count` back-to-back
/// messages; achieved bandwidth is bytes over the time the last one
/// lands.
fn bandwidth_once(costs: SimCosts, mode: Mode, size: usize, count: usize) -> f64 {
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let done_at = Arc::new(Mutex::new(0u64));

    vm.spawn(0, move |ctx| {
        for _ in 0..count {
            model_isend(ctx, mode, locks_a, ab, size);
        }
    });
    let d2 = Arc::clone(&done_at);
    vm.spawn(1, move |ctx| {
        for _ in 0..count {
            model_recv_busy(ctx, mode, locks_b, ab, false);
        }
        *d2.lock() = ctx.now();
    });
    vm.run();
    let elapsed_ns = *done_at.lock();
    (count * size) as f64 / (elapsed_ns as f64 / 1e9) / 1e6 // MB/s
}

/// Bandwidth vs message size per locking mode (MB/s on the y axis).
///
/// At large sizes the wire dominates and all three modes converge — the
/// constant lock overheads vanish into the transmission time, exactly as
/// the paper observes.
pub fn bandwidth_by_mode(costs: SimCosts, sizes: &[usize]) -> Vec<Series> {
    [Mode::NoLock, Mode::Coarse, Mode::Fine]
        .iter()
        .map(|&mode| Series {
            label: mode.label().to_string(),
            points: sizes
                .iter()
                .map(|&s| (s, bandwidth_once(costs, mode, s, 64)))
                .collect(),
        })
        .collect()
}

/// Collect-lock layouts compared by the message-rate experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectLayout {
    /// The pre-sharding stack: one collect lock per node with every
    /// gate's tx and rx lists behind it, matched by linear scans whose
    /// length grows with the number of in-flight flows.
    Global,
    /// Per-gate collect locks with hashed O(1) matching bins: a flow
    /// only ever touches (and scans) its own gate's state.
    PerGate,
}

impl CollectLayout {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            CollectLayout::Global => "global collect lock",
            CollectLayout::PerGate => "per-gate collect locks",
        }
    }
}

/// The per-flow locks and wire of the message-rate model. `collect_*`
/// may alias one node-wide lock ([`CollectLayout::Global`]); the driver
/// locks are per-gate in both layouts (drivers were already sharded).
#[derive(Clone, Copy)]
struct FlowLocks {
    collect_a: LockId,
    driver_a: LockId,
    collect_b: LockId,
    driver_b: LockId,
    chan: ChanId,
}

const RATE_MSGS: usize = 256;
const RATE_SIZE: usize = 8;

/// Aggregate small-message rate (million messages/s) of `n_flows`
/// concurrent single-gate streams, node A → node B, fine-grain locking.
///
/// Each sender thread drives its own gate back-to-back; each receiver
/// thread drains its gate. Under [`CollectLayout::Global`] every
/// submission and every dispatch serializes on the node-wide collect
/// lock *and* pays a matching scan over all `n_flows` in-flight lists;
/// under [`CollectLayout::PerGate`] the flows touch disjoint locks and
/// O(1) bins, so the only shared resource left is the wire.
fn msgrate_once(costs: SimCosts, n_flows: usize, layout: CollectLayout) -> f64 {
    let topo = Topology::dual_xeon_x5460();
    let cores = topo.num_cores();
    let mut vm = Vm::new(costs, topo);
    // Node-wide collect locks for the Global layout.
    let node_a = vm.lock();
    let node_b = vm.lock();
    let flows: Vec<FlowLocks> = (0..n_flows)
        .map(|_| {
            let (collect_a, collect_b) = match layout {
                CollectLayout::Global => (node_a, node_b),
                CollectLayout::PerGate => (vm.lock(), vm.lock()),
            };
            FlowLocks {
                collect_a,
                driver_a: vm.lock(),
                collect_b,
                driver_b: vm.lock(),
                chan: vm.chan(WireModel::myri_10g()),
            }
        })
        .collect();
    // Entries a matching scan walks: the shared lists hold every flow's
    // in-flight state; a per-gate bin holds only its own.
    let scan = match layout {
        CollectLayout::Global => n_flows as u64,
        CollectLayout::PerGate => 1,
    };
    let finished_at = Arc::new(Mutex::new(0u64));

    for (i, &f) in flows.iter().enumerate() {
        // Sender: submit to the collect layer (lock + scan), transmit
        // via the gate's driver — the fine-grain send path of Fig 4.
        vm.spawn(i % cores, move |ctx| {
            let c = *ctx.costs();
            let half = c.submit_ns / 2;
            for _ in 0..RATE_MSGS {
                ctx.advance(1); // loop overhead between library calls
                ctx.lock(f.collect_a);
                ctx.advance(half + scan * c.match_scan_ns);
                ctx.unlock(f.collect_a);
                ctx.lock(f.driver_a);
                ctx.advance(c.submit_ns - half);
                ctx.chan_send(f.chan, RATE_SIZE);
                ctx.unlock(f.driver_a);
            }
        });
        // Receiver: driver poll, then dispatch against the collect-layer
        // lists (lock + scan) — the fine-grain detection path.
        let done = Arc::clone(&finished_at);
        vm.spawn((i + n_flows) % cores, move |ctx| {
            let c = *ctx.costs();
            let period = pass_period(&c, Mode::Fine, false, false);
            for _ in 0..RATE_MSGS {
                recv_aligned(ctx, f.chan, period);
                ctx.with_lock(f.driver_b, c.poll_pass_ns);
                ctx.with_lock(f.collect_b, c.poll_pass_ns + scan * c.match_scan_ns);
            }
            let mut d = done.lock();
            *d = (*d).max(ctx.now());
        });
    }
    vm.run();
    let elapsed_ns = *finished_at.lock();
    (n_flows * RATE_MSGS) as f64 / elapsed_ns as f64 * 1e3 // Mmsg/s
}

/// Message-rate scaling: aggregate rate vs number of concurrent flows,
/// per-gate collect locks against the seed's single collect lock. The
/// multi-endpoint analogue of Fig 5 — instead of latency under two
/// threads, throughput as threads-driving-their-own-gates scale up.
pub fn msgrate_scaling(costs: SimCosts, flows: &[usize]) -> Vec<Series> {
    [CollectLayout::PerGate, CollectLayout::Global]
        .iter()
        .map(|&layout| Series {
            label: layout.label().to_string(),
            points: flows
                .iter()
                .map(|&n| (n, msgrate_once(costs, n, layout)))
                .collect(),
        })
        .collect()
}

/// The locks of one flow in the VCI message-rate model: per-gate
/// collect bins (always sharded here — the collect layer was fixed by
/// the experiment above) plus the driver locks of the VCI context the
/// flow is pinned to, which alias across flows sharing a context.
#[derive(Clone, Copy)]
struct VciFlowLocks {
    collect_a: LockId,
    collect_b: LockId,
    /// Tx-ring lock of the flow's VCI context (shared by its sharers).
    driver_a: LockId,
    /// Completion-ring lock of the same context on the receive side.
    driver_b: LockId,
    chan: ChanId,
    /// Flows multiplexed onto this context (1 when `n_vcis >= n_flows`).
    sharers: u64,
}

/// Aggregate small-message rate of `n_flows` concurrent streams when
/// the NIC exposes `n_vcis` independent VCI contexts, fine-grain
/// locking with per-gate collect bins throughout.
///
/// Flow `i` is pinned to context `i % n_vcis`. Flows sharing a context
/// serialize on its tx-ring lock, and — the dominant cost, and Zambre
/// et al.'s case for dedicated communication contexts — on its shared
/// completion queue: every receive-side poll walks the completions of
/// all flows multiplexed onto the context (`poll_pass + (sharers-1) ·
/// match_scan` under the context's driver lock). With `n_vcis >=
/// n_flows` each flow owns its context outright and the transfer layer
/// adds no shared lock at all, so `msgrate_vci_once(c, 1, 1)` is
/// bit-identical to `msgrate_once(c, 1, PerGate)`.
fn msgrate_vci_once(costs: SimCosts, n_flows: usize, n_vcis: usize) -> f64 {
    let topo = Topology::dual_xeon_x5460();
    let cores = topo.num_cores();
    let mut vm = Vm::new(costs, topo);
    // One (tx-ring, completion-ring) lock pair per VCI context.
    let contexts: Vec<(LockId, LockId)> = (0..n_vcis).map(|_| (vm.lock(), vm.lock())).collect();
    let flows: Vec<VciFlowLocks> = (0..n_flows)
        .map(|i| {
            let v = i % n_vcis;
            VciFlowLocks {
                collect_a: vm.lock(),
                collect_b: vm.lock(),
                driver_a: contexts[v].0,
                driver_b: contexts[v].1,
                chan: vm.chan(WireModel::myri_10g()),
                sharers: ((n_flows - 1 - v) / n_vcis + 1) as u64,
            }
        })
        .collect();
    let finished_at = Arc::new(Mutex::new(0u64));

    for (i, &f) in flows.iter().enumerate() {
        // Sender: per-gate collect bin (O(1) scan), then the context's
        // tx ring — shared with the flow's sharers when VCIs are scarce.
        vm.spawn(i % cores, move |ctx| {
            let c = *ctx.costs();
            let half = c.submit_ns / 2;
            for _ in 0..RATE_MSGS {
                ctx.advance(1); // loop overhead between library calls
                ctx.lock(f.collect_a);
                ctx.advance(half + c.match_scan_ns);
                ctx.unlock(f.collect_a);
                ctx.lock(f.driver_a);
                ctx.advance(c.submit_ns - half);
                ctx.chan_send(f.chan, RATE_SIZE);
                ctx.unlock(f.driver_a);
            }
        });
        // Receiver: poll the context's completion ring (scanning the
        // other sharers' completions too), then dispatch into the
        // flow's own per-gate bin.
        let done = Arc::clone(&finished_at);
        vm.spawn((i + n_flows) % cores, move |ctx| {
            let c = *ctx.costs();
            let period = pass_period(&c, Mode::Fine, false, false);
            for _ in 0..RATE_MSGS {
                recv_aligned(ctx, f.chan, period);
                ctx.with_lock(
                    f.driver_b,
                    c.poll_pass_ns + (f.sharers - 1) * c.match_scan_ns,
                );
                ctx.with_lock(f.collect_b, c.poll_pass_ns + c.match_scan_ns);
            }
            let mut d = done.lock();
            *d = (*d).max(ctx.now());
        });
    }
    vm.run();
    let elapsed_ns = *finished_at.lock();
    (n_flows * RATE_MSGS) as f64 / elapsed_ns as f64 * 1e3 // Mmsg/s
}

/// Message-rate scaling across VCI counts: aggregate rate vs number of
/// concurrent flows, one series per number of NIC contexts. The flows ×
/// VCIs axis of the multi-VCI transfer layer — with one context the
/// seed's shared-driver serialization returns through the back door;
/// with `vcis >= flows` every flow owns its tx/rx rings and scaling is
/// bounded only by cores and the wire.
pub fn msgrate_vci_scaling(costs: SimCosts, flows: &[usize], vcis: &[usize]) -> Vec<Series> {
    vcis.iter()
        .map(|&v| Series {
            label: format!("{v} VCI{}", if v == 1 { "" } else { "s" }),
            points: flows
                .iter()
                .map(|&n| (n, msgrate_vci_once(costs, n, v)))
                .collect(),
        })
        .collect()
}

/// Completion-delivery paths compared by the completion-object
/// experiment (`cq_completion_scaling`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionPath {
    /// Every completion is pushed into one shared completion queue
    /// (one classed-lock cycle per push) and two drainer threads pop
    /// and run the server's per-request work — the `CompletionQueue`
    /// facade: 2 cores multiplex every outstanding request.
    Queue,
    /// Every request has a dedicated busy-wait on its completion flag:
    /// two wait threads each own half the requests and spin them down
    /// in completion order — the classic `wait(Busy)` path.
    WaitThreads,
}

impl CompletionPath {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            CompletionPath::Queue => "completion queue (2 drainers)",
            CompletionPath::WaitThreads => "dedicated wait threads",
        }
    }
}

/// Aggregate completion rate (million completions/s) of `n` outstanding
/// requests completed by one progression context and consumed on two
/// cores, either through a shared completion queue or through
/// per-request busy waits.
///
/// The producer models the receive-side completion pipeline of the fine
/// mode: driver poll, collect-layer dispatch, request-state publication,
/// then delivery — a semaphore release in both paths, plus one
/// completion-queue lock cycle in the [`CompletionPath::Queue`] variant
/// (`core.cq` in the real stack). Consumers pay the producer's
/// cache-line penalty plus the server's per-request work (modelled as
/// two context switches' worth — a request handler, not a no-op), which
/// is what amortizes the queue's shared lock: the drain side is the
/// bottleneck, and both variants drain on exactly two cores. The
/// consumer cores sit at equal cache distance from the producer so the
/// comparison isolates delivery cost — a shared queue additionally
/// load-balances across *unequal* cores, which would flatter it here.
fn completion_drain_once(costs: SimCosts, n: usize, path: CompletionPath) -> f64 {
    let topo = Topology::dual_xeon_x5460();
    let mut vm = Vm::new(costs, topo);
    // Virtual time scales with `n`; keep the runaway guard ahead of it.
    vm.deadline_ns(200_000 + n as u64 * 100_000);
    let driver = vm.lock();
    let collect = vm.lock();
    let handle_ns = 2 * costs.ctx_switch_ns;

    match path {
        CompletionPath::Queue => {
            let cq = vm.lock();
            // Completed-request ids in flight between producer and
            // drainers; mutated only under the simulated `cq` lock (or
            // emptiness-peeked, which is race-free: the machine runs
            // one thread at a time).
            let fifo: Arc<Mutex<(VecDeque<usize>, usize)>> =
                Arc::new(Mutex::new((VecDeque::new(), 0)));
            let q = Arc::clone(&fifo);
            vm.spawn(0, move |ctx| {
                let c = *ctx.costs();
                for i in 0..n {
                    ctx.with_lock(driver, c.poll_pass_ns);
                    ctx.with_lock(collect, c.poll_pass_ns + c.match_scan_ns);
                    ctx.advance(c.enqueue_ns); // publish request state
                    ctx.advance(c.lock_cycle_ns); // doorbell release
                    ctx.lock(cq);
                    q.lock().0.push_back(i);
                    ctx.unlock(cq);
                }
            });
            for core in [2usize, 3] {
                let q = Arc::clone(&fifo);
                vm.spawn(core, move |ctx| {
                    let c = *ctx.costs();
                    loop {
                        // Peek before locking (the real `poll` fails on
                        // the semaphore first): an empty queue must not
                        // hammer the cq lock and starve the producer.
                        if q.lock().0.is_empty() {
                            if q.lock().1 == n {
                                break;
                            }
                            ctx.advance(c.poll_pass_ns);
                            continue;
                        }
                        ctx.lock(cq);
                        let got = {
                            let mut g = q.lock();
                            match g.0.pop_front() {
                                Some(i) => {
                                    g.1 += 1;
                                    Some(i)
                                }
                                None => None,
                            }
                        };
                        ctx.unlock(cq);
                        if got.is_some() {
                            ctx.charge_cache_penalty(0);
                            ctx.advance(handle_ns);
                        }
                    }
                });
            }
        }
        CompletionPath::WaitThreads => {
            let events: Vec<EventId> = (0..n).map(|_| vm.event()).collect();
            let evs = Arc::new(events);
            let signal = Arc::clone(&evs);
            vm.spawn(0, move |ctx| {
                let c = *ctx.costs();
                for &e in signal.iter() {
                    ctx.with_lock(driver, c.poll_pass_ns);
                    ctx.with_lock(collect, c.poll_pass_ns + c.match_scan_ns);
                    ctx.advance(c.enqueue_ns); // publish request state
                    ctx.advance(c.lock_cycle_ns); // flag semaphore release
                    ctx.event_signal(e);
                }
            });
            for (w, core) in [2usize, 3].into_iter().enumerate() {
                let evs = Arc::clone(&evs);
                vm.spawn(core, move |ctx| {
                    let c = *ctx.costs();
                    for &e in evs.iter().skip(w).step_by(2) {
                        ctx.event_busy_wait(e, c.poll_pass_ns);
                        ctx.advance(handle_ns);
                    }
                });
            }
        }
    }
    let elapsed_ns = vm.run().elapsed_ns;
    n as f64 / elapsed_ns as f64 * 1e3 // Mmsg/s
}

/// Completion-queue scaling: aggregate completion rate vs outstanding
/// requests, a 2-core completion-queue drain against dedicated
/// busy-wait threads. The headline point: at 10k+ outstanding requests
/// two drainer cores sustain the rate of the dedicated-thread wait path
/// to within 10% — the classed `core.cq` lock cycle is amortized by the
/// per-request work it delivers.
pub fn cq_completion_scaling(costs: SimCosts, outstanding: &[usize]) -> Vec<Series> {
    [CompletionPath::Queue, CompletionPath::WaitThreads]
        .iter()
        .map(|&path| Series {
            label: path.label().to_string(),
            points: outstanding
                .iter()
                .map(|&n| (n, completion_drain_once(costs, n, path)))
                .collect(),
        })
        .collect()
}

/// Frame-loss rates (per-mille) swept by the chaos experiment:
/// 0 % – 10 %.
pub fn chaos_loss_points() -> Vec<u32> {
    vec![0, 10, 20, 50, 100]
}

/// Deterministic xorshift64* stream for the chaos experiment's fault
/// draws. Seeded per run, so every sweep point is bit-reproducible.
struct Faults(u64);

impl Faults {
    fn new(seed: u64) -> Self {
        Faults(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// `true` with probability `pm` / 1000.
    fn chance(&mut self, pm: u32) -> bool {
        pm > 0 && self.next() % 1000 < u64::from(pm)
    }
}

/// Messages per chaos run.
const CHAOS_MSGS: usize = 400;
/// Payload bytes per message.
const CHAOS_SIZE: usize = 1024;
/// Send window: max unacked frames in flight (`ReliabilityConfig`'s
/// `window`, scaled down so the model's ack backlog stays below the
/// retransmission timeout).
const CHAOS_WINDOW: usize = 16;
/// Base retransmission timeout. Must exceed the worst-case ack latency
/// (window × per-frame receive cost ≈ 15 µs) or healthy frames are
/// retransmitted spuriously.
const CHAOS_RTO_BASE_NS: u64 = 40_000;
/// Exponential-backoff ceiling.
const CHAOS_RTO_MAX_NS: u64 = 640_000;
/// Ack frame size (header-only).
const CHAOS_ACK_SIZE: usize = 16;

/// One chaos run: streams [`CHAOS_MSGS`] messages through the
/// ack/retransmit protocol over a wire that drops `loss_pm` ‰ of data
/// frames, under `mode`'s lock sequence. Returns `(goodput MB/s,
/// p99 delivery latency µs)`.
///
/// The model mirrors `nm-core`'s reliability layer: a sliding window of
/// unacked frames, cumulative acks, and per-frame retransmission timers
/// with exponential backoff. Loss is drawn on the receive side (the
/// frame burns wire bandwidth, then fails the CRC check), which is how
/// the real `ChaosDriver` injects faults. The ack channel is modelled
/// as reliable — a lost ack behaves like a lost data frame one RTO
/// later, so data-side loss already covers that failure shape. Delivery
/// latency is measured to *in-order* handoff, so one lost frame
/// head-of-line-blocks the window behind it — exactly the tail the p99
/// curve is meant to expose.
fn chaos_once(costs: SimCosts, mode: Mode, loss_pm: u32, seed: u64) -> (f64, f64) {
    let mut vm = Vm::new(costs, Topology::xeon_x5460());
    let locks_a = node_locks(&mut vm);
    let locks_b = node_locks(&mut vm);
    let ab = vm.chan(WireModel::myri_10g());
    let ba = vm.chan(WireModel::myri_10g());

    // Side channels carrying frame metadata the size-only wire cannot:
    // sequence numbers ride along in FIFO wire order (pushed at injection,
    // popped at delivery — the machine runs one thread at a time, so the
    // orders match exactly).
    let data_seqs: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new(VecDeque::new()));
    let acks: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new(VecDeque::new()));
    let first_send: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; CHAOS_MSGS]));
    // (per-message in-order delivery latencies µs, completion time ns).
    let outcome: Arc<Mutex<(Vec<f64>, u64)>> = Arc::new(Mutex::new((Vec::new(), 0)));

    // Sender: fill the window back to back, retransmit expired frames,
    // otherwise poll for acks once per pass.
    let dq = Arc::clone(&data_seqs);
    let aq = Arc::clone(&acks);
    let fs = Arc::clone(&first_send);
    vm.spawn(0, move |ctx| {
        let c = *ctx.costs();
        let period = pass_period(&c, mode, false, false);
        let mut base = 0usize; // lowest unacked sequence
        let mut next = 0usize;
        let mut deadline = vec![0u64; CHAOS_MSGS];
        let mut rto = vec![CHAOS_RTO_BASE_NS; CHAOS_MSGS];
        let mut dup_acks = 0u32;
        while base < CHAOS_MSGS {
            // Drain cumulative acks, counting duplicates: an ack that
            // fails to advance the window while frames are outstanding
            // means the head-of-line frame is missing.
            while ctx.chan_try_recv(ba).is_some() {
                let a = aq.lock().pop_front().expect("ack side-channel empty");
                if a > base {
                    base = a;
                    dup_acks = 0;
                } else if a == base && next > base {
                    dup_acks += 1;
                }
            }
            if base >= CHAOS_MSGS {
                break;
            }
            // Fast retransmit: three duplicate acks recover the lost
            // head-of-line frame in ~one RTT instead of a full RTO.
            if dup_acks >= 3 {
                dup_acks = 0;
                dq.lock().push_back(base);
                model_isend(ctx, mode, locks_a, ab, CHAOS_SIZE);
                deadline[base] = ctx.now() + rto[base];
                continue;
            }
            if next < CHAOS_MSGS && next - base < CHAOS_WINDOW {
                dq.lock().push_back(next);
                fs.lock()[next] = ctx.now();
                model_isend(ctx, mode, locks_a, ab, CHAOS_SIZE);
                deadline[next] = ctx.now() + CHAOS_RTO_BASE_NS;
                next += 1;
                continue;
            }
            // Retransmit the earliest expired unacked frame, with
            // exponential backoff on every repeat.
            let now = ctx.now();
            if let Some(seq) = (base..next).find(|&s| deadline[s] <= now) {
                dq.lock().push_back(seq);
                model_isend(ctx, mode, locks_a, ab, CHAOS_SIZE);
                rto[seq] = (rto[seq] * 2).min(CHAOS_RTO_MAX_NS);
                deadline[seq] = ctx.now() + rto[seq];
                continue;
            }
            ctx.advance(period);
        }
    });

    // Receiver: CRC-check each frame (the loss draw), dedup against the
    // window, deliver in order, ack cumulatively.
    let dq = Arc::clone(&data_seqs);
    let aq = Arc::clone(&acks);
    let fs = Arc::clone(&first_send);
    let out = Arc::clone(&outcome);
    vm.spawn(1, move |ctx| {
        let c = *ctx.costs();
        let period = pass_period(&c, mode, false, false);
        let mut faults = Faults::new(seed);
        let mut got = vec![false; CHAOS_MSGS];
        let mut expected = 0usize;
        while expected < CHAOS_MSGS {
            recv_aligned(ctx, ab, period);
            let seq = dq.lock().pop_front().expect("data side-channel empty");
            if faults.chance(loss_pm) {
                // The frame died on the wire: the CRC check rejects it
                // and no ack is produced — the sender's timer recovers.
                continue;
            }
            charge_detection(ctx, mode, locks_b, false, false);
            if !got[seq] {
                got[seq] = true;
                while expected < CHAOS_MSGS && got[expected] {
                    let lat = (ctx.now() - fs.lock()[expected]) as f64 / 1_000.0;
                    out.lock().0.push(lat);
                    expected += 1;
                }
            }
            aq.lock().push_back(expected);
            model_isend(ctx, mode, locks_b, ba, CHAOS_ACK_SIZE);
        }
        out.lock().1 = ctx.now();
    });

    vm.run();
    let (mut lats, done_ns) = {
        let g = outcome.lock();
        (g.0.clone(), g.1)
    };
    lats.sort_by(f64::total_cmp);
    let p99 = lats[(lats.len() * 99).div_ceil(100) - 1];
    let goodput = (CHAOS_MSGS * CHAOS_SIZE) as f64 / (done_ns as f64 / 1e9) / 1e6;
    (goodput, p99)
}

/// Per-point fault seed: fixed constant xor the loss rate, so every
/// sweep point draws an independent but reproducible fault pattern and
/// both locking modes face the same wire.
fn chaos_seed(loss_pm: u32) -> u64 {
    0xC7A0_5EED ^ u64::from(loss_pm)
}

/// Chaos sweep — the reliability layer under deterministic fault
/// injection: goodput and p99 in-order delivery latency vs frame-loss
/// rate (per-mille on the x axis), coarse vs fine locking. Returns
/// `(goodput series, p99 series)`.
pub fn chaos_loss_sweep(costs: SimCosts, loss_pm: &[u32]) -> (Vec<Series>, Vec<Series>) {
    let mut goodput = Vec::new();
    let mut p99 = Vec::new();
    for &mode in &[Mode::Coarse, Mode::Fine] {
        let results: Vec<(u32, (f64, f64))> = loss_pm
            .iter()
            .map(|&pm| (pm, chaos_once(costs, mode, pm, chaos_seed(pm))))
            .collect();
        goodput.push(Series {
            label: mode.label().to_string(),
            points: results
                .iter()
                .map(|&(pm, (g, _))| (pm as usize, g))
                .collect(),
        });
        p99.push(Series {
            label: mode.label().to_string(),
            points: results
                .iter()
                .map(|&(pm, (_, p))| (pm as usize, p))
                .collect(),
        });
    }
    (goodput, p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> SimCosts {
        SimCosts::paper()
    }

    /// Mean constant offset (µs) between two series across all sizes.
    fn offset(a: &Series, b: &Series) -> f64 {
        assert_eq!(a.points.len(), b.points.len());
        a.points
            .iter()
            .zip(&b.points)
            .map(|(&(_, la), &(_, lb))| la - lb)
            .sum::<f64>()
            / a.points.len() as f64
    }

    fn spread(a: &Series, b: &Series) -> f64 {
        let diffs: Vec<f64> = a
            .points
            .iter()
            .zip(&b.points)
            .map(|(&(_, la), &(_, lb))| la - lb)
            .collect();
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        diffs
            .iter()
            .map(|d| (d - mean).abs())
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn fig3_overheads_are_constant_and_ordered() {
        let sizes = small_sizes();
        let series = fig3_locking_latency(costs(), &sizes);
        let coarse = &series[0];
        let fine = &series[1];
        let none = &series[2];
        let d_coarse = offset(coarse, none);
        let d_fine = offset(fine, none);
        // Paper: coarse ≈ +140 ns, fine ≈ +230 ns, both size-independent.
        assert!(
            d_coarse > 0.05 && d_coarse < 0.4,
            "coarse Δ = {d_coarse} µs"
        );
        assert!(d_fine > d_coarse, "fine must cost more than coarse");
        assert!(d_fine < 0.6, "fine Δ = {d_fine} µs");
        assert!(spread(coarse, none) < 0.15, "coarse overhead not constant");
        assert!(spread(fine, none) < 0.15, "fine overhead not constant");
    }

    #[test]
    fn fig3_small_message_latency_is_myrinet_like() {
        let series = fig3_locking_latency(costs(), &[4]);
        for s in &series {
            let lat = s.points[0].1;
            // Paper Fig 3: ~2–4 µs at small sizes on Myri-10G.
            assert!((1.5..5.0).contains(&lat), "{}: {lat} µs", s.label);
        }
    }

    #[test]
    fn fig5_coarse_serializes_to_about_double() {
        let sizes = [4usize, 64, 1024];
        let series = fig5_concurrent_pingpong(costs(), &sizes);
        let single = &series[0];
        let fine_t1 = &series[1];
        let coarse_t1 = &series[3];
        for i in 0..sizes.len() {
            let s1 = single.points[i].1;
            let c = coarse_t1.points[i].1;
            let f = fine_t1.points[i].1;
            assert!(
                c > 1.5 * s1,
                "coarse concurrent ({c}) should approach 2× single ({s1})"
            );
            assert!(f < c, "fine ({f}) must beat coarse ({c}) under concurrency");
            assert!(f >= s1 * 0.95, "fine concurrent can't beat single-thread");
        }
    }

    #[test]
    fn fig6_pioman_adds_constant_overhead() {
        let sizes = small_sizes();
        let series = fig6_pioman_overhead(costs(), &sizes);
        // Order: PIOMan coarse, PIOMan fine, coarse, fine.
        let d_coarse = offset(&series[0], &series[2]);
        let d_fine = offset(&series[1], &series[3]);
        // Paper: ~200 ns = 0.2 µs.
        assert!((0.1..0.4).contains(&d_coarse), "Δ = {d_coarse} µs");
        assert!((0.1..0.4).contains(&d_fine), "Δ = {d_fine} µs");
    }

    #[test]
    fn fig7_passive_costs_a_context_switch() {
        let sizes = [4usize, 256, 2048];
        let series = fig7_waiting_strategies(costs(), &sizes);
        // Order: passive coarse, passive fine, active coarse, active fine.
        let d = offset(&series[0], &series[2]);
        // Paper: ~750 ns per one-way.
        assert!((0.4..1.2).contains(&d), "passive Δ = {d} µs");
    }

    #[test]
    fn fig7_fixed_spin_avoids_switch_when_event_is_fast() {
        // With a window larger than the wire latency the event always
        // lands inside the spin phase: latency ≈ active waiting.
        let active = waiting_pingpong_once(costs(), Mode::Fine, 4, WaitKind::Active);
        let spin = waiting_pingpong_once(costs(), Mode::Fine, 4, WaitKind::FixedSpin(50_000));
        let passive = waiting_pingpong_once(costs(), Mode::Fine, 4, WaitKind::Passive);
        assert!(
            spin < passive,
            "fixed spin ({spin}) must beat passive ({passive})"
        );
        assert!(spin < active + 0.3, "fixed spin ≈ active ({active})");
    }

    #[test]
    fn fig8_monotone_in_cache_distance() {
        let topo = Topology::xeon_x5460();
        let sizes = [4usize, 1024];
        let series = fig8_cache_affinity(costs(), &topo, &sizes);
        assert_eq!(series.len(), 3, "quad-core: same, shared, no-shared");
        for i in 0..sizes.len() {
            let same = series[0].points[i].1;
            let shared = series[1].points[i].1;
            let far = series[2].points[i].1;
            assert!(same < shared, "shared-cache poll must cost more");
            assert!(shared < far, "cross-die poll must cost more");
            // Paper: +400 ns and +1.2 µs.
            assert!(
                (0.2..0.8).contains(&(shared - same)),
                "Δ = {}",
                shared - same
            );
            assert!((0.8..2.0).contains(&(far - same)), "Δ = {}", far - same);
        }
    }

    #[test]
    fn fig8_dual_socket_has_four_classes() {
        let topo = Topology::dual_xeon_x5460();
        let series = fig8_cache_affinity(costs(), &topo, &[64]);
        assert_eq!(series.len(), 4);
        let lats: Vec<f64> = series.iter().map(|s| s.points[0].1).collect();
        assert!(
            lats.windows(2).all(|w| w[0] < w[1]),
            "not monotone: {lats:?}"
        );
        // Cross-package ≈ +3.1 µs.
        let d = lats[3] - lats[0];
        assert!((2.0..4.5).contains(&d), "cross-package Δ = {d} µs");
    }

    #[test]
    fn fig9_tasklets_cost_more_than_direct_offload() {
        let sizes = [2048usize, 8192, 32768];
        let series = fig9_offload_tasklets(costs(), &sizes);
        let (idle, tasklet, reference) = (&series[0], &series[1], &series[2]);
        let d_idle = offset(idle, reference);
        let d_tasklet = offset(tasklet, reference);
        // Paper: ~400 ns without tasklets, ~2 µs with.
        assert!((0.1..1.0).contains(&d_idle), "idle-core Δ = {d_idle} µs");
        assert!(
            (1.0..3.5).contains(&d_tasklet),
            "tasklet Δ = {d_tasklet} µs"
        );
        assert!(d_tasklet > d_idle + 0.5, "tasklets must cost visibly more");
    }

    #[test]
    fn rdv_overlap_hides_transfer_behind_compute() {
        let sizes = [64 * 1024usize, 256 * 1024];
        let series = rdv_overlap(costs(), &sizes);
        let (app, idle) = (&series[0], &series[1]);
        for (i, &size) in sizes.iter().enumerate() {
            let (a, b) = (app.points[i].1, idle.points[i].1);
            // Background progression hides (most of) the 30 µs compute
            // window behind the transfer, at every size.
            let saved = a - b;
            assert!(
                saved > 20.0,
                "only {saved} µs hidden at {size} B ({b} vs {a})",
            );
        }
    }

    #[test]
    fn bandwidth_converges_at_large_sizes() {
        let series = bandwidth_by_mode(costs(), &[64, 32 * 1024]);
        // Small messages: locking reduces the achievable message rate.
        let small: Vec<f64> = series.iter().map(|s| s.points[0].1).collect();
        assert!(small[0] > small[1], "no-lock must beat coarse at 64 B");
        assert!(small[1] > small[2], "coarse must beat fine at 64 B");
        // Large messages: the wire dominates; modes agree within 1 %.
        let large: Vec<f64> = series.iter().map(|s| s.points[1].1).collect();
        let spread = (large[0] - large[2]).abs() / large[0];
        assert!(spread < 0.01, "bandwidth diverged by {spread:.3} at 32 KB");
        // And the absolute value approaches the modelled 1.25 GB/s wire.
        assert!(large[0] > 1_000.0, "32 KB bandwidth {} MB/s", large[0]);
    }

    #[test]
    fn msgrate_sharded_collect_doubles_aggregate_rate() {
        let series = msgrate_scaling(costs(), &[1, 4]);
        let (sharded, global) = (&series[0], &series[1]);
        // One flow: the layouts are indistinguishable — no contention,
        // and the shared list holds a single flow's entries.
        assert_eq!(sharded.points[0].1, global.points[0].1);
        let s1 = sharded.points[0].1;
        let (s4, g4) = (sharded.points[1].1, global.points[1].1);
        // The acceptance bar: 4 independent flows on per-gate locks beat
        // the seed's single collect lock by at least 2×.
        assert!(s4 >= 2.0 * g4, "sharded {s4} vs global {g4} Mmsg/s");
        // Sharded flows share nothing but the (idle) wire: near-linear.
        assert!(s4 > 3.5 * s1, "sharded 4-flow rate {s4} vs 1-flow {s1}");
        // The global lock saturates: adding flows can't scale the rate.
        assert!(g4 < 2.0 * s1, "global 4-flow rate {g4} vs 1-flow {s1}");
    }

    #[test]
    fn msgrate_vci_matches_per_gate_baseline_at_one_flow() {
        // One flow on one context shares nothing — the model collapses
        // to the per-gate msgrate path, bit for bit.
        let vci = msgrate_vci_once(costs(), 1, 1);
        let base = msgrate_once(costs(), 1, CollectLayout::PerGate);
        assert_eq!(vci.to_bits(), base.to_bits(), "vci {vci} vs base {base}");
    }

    #[test]
    fn msgrate_vci_dedicated_contexts_beat_shared_driver() {
        // The acceptance bar: 16 flows on 16 dedicated contexts sustain
        // at least 12× the aggregate rate of 16 flows funneled through
        // one shared tx/completion ring.
        let shared = msgrate_vci_once(costs(), 16, 1);
        let dedicated = msgrate_vci_once(costs(), 16, 16);
        assert!(
            dedicated >= 12.0 * shared,
            "dedicated {dedicated} vs shared {shared} Mmsg/s ({}×)",
            dedicated / shared
        );
        // And context counts in between land in between: monotone.
        let four = msgrate_vci_once(costs(), 16, 4);
        assert!(four > shared && four < dedicated, "4-VCI rate {four}");
    }

    #[test]
    fn msgrate_is_deterministic() {
        let a = msgrate_once(costs(), 4, CollectLayout::Global);
        let b = msgrate_once(costs(), 4, CollectLayout::Global);
        assert_eq!(a, b, "virtual-time runs must be bit-identical");
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = pingpong_once(costs(), Mode::Fine, 256, false);
        let b = pingpong_once(costs(), Mode::Fine, 256, false);
        assert_eq!(a, b, "virtual-time runs must be bit-identical");
        let c = concurrent_pingpong_once(costs(), Mode::Coarse, 64);
        let d = concurrent_pingpong_once(costs(), Mode::Coarse, 64);
        assert_eq!(c, d);
    }

    #[test]
    fn cq_drain_is_deterministic() {
        let a = completion_drain_once(costs(), 512, CompletionPath::Queue);
        let b = completion_drain_once(costs(), 512, CompletionPath::Queue);
        assert_eq!(a, b, "virtual-time runs must be bit-identical");
        let c = completion_drain_once(costs(), 512, CompletionPath::WaitThreads);
        let d = completion_drain_once(costs(), 512, CompletionPath::WaitThreads);
        assert_eq!(c, d);
    }

    #[test]
    fn chaos_is_deterministic() {
        let a = chaos_once(costs(), Mode::Fine, 20, chaos_seed(20));
        let b = chaos_once(costs(), Mode::Fine, 20, chaos_seed(20));
        assert_eq!(a, b, "virtual-time runs must be bit-identical");
    }

    /// The reliability tentpole's acceptance bar: at 2 % frame loss the
    /// fine-grain stack sustains at least 70 % of its lossless goodput.
    #[test]
    fn chaos_fine_grain_sustains_goodput_at_two_percent_loss() {
        let (lossless, _) = chaos_once(costs(), Mode::Fine, 0, chaos_seed(0));
        let (lossy, _) = chaos_once(costs(), Mode::Fine, 20, chaos_seed(20));
        assert!(
            lossy >= 0.70 * lossless,
            "2% loss goodput {lossy} MB/s fell below 70% of lossless {lossless} MB/s"
        );
    }

    /// Degradation must be graceful and visible: more loss costs
    /// goodput and inflates the p99 tail, in both locking modes.
    #[test]
    fn chaos_degrades_gracefully_with_loss() {
        for mode in [Mode::Coarse, Mode::Fine] {
            let (g0, p0) = chaos_once(costs(), mode, 0, chaos_seed(0));
            let (g100, p100) = chaos_once(costs(), mode, 100, chaos_seed(100));
            assert!(
                g100 < g0,
                "{}: 10% loss goodput {g100} not below lossless {g0}",
                mode.label()
            );
            assert!(
                g100 > 0.3 * g0,
                "{}: 10% loss collapsed goodput to {g100} of {g0} MB/s",
                mode.label()
            );
            assert!(
                p100 > p0,
                "{}: 10% loss p99 {p100} µs not above lossless {p0} µs",
                mode.label()
            );
        }
    }

    /// The tentpole's acceptance bar: a completion queue drained by two
    /// cores sustains 10k+ outstanding requests at a rate within 10% of
    /// the dedicated-thread `wait` path.
    #[test]
    fn cq_two_drainers_match_dedicated_waits_at_10k_outstanding() {
        let n = 10_240;
        let cq = completion_drain_once(costs(), n, CompletionPath::Queue);
        let wait = completion_drain_once(costs(), n, CompletionPath::WaitThreads);
        assert!(
            cq >= 0.9 * wait,
            "cq rate {cq} Mmsg/s fell >10% below wait rate {wait} Mmsg/s"
        );
        assert!(
            cq <= 1.1 * wait,
            "cq rate {cq} Mmsg/s is >10% above wait rate {wait} Mmsg/s — model drifted"
        );
    }
}
