//! Discrete-event deterministic twin of the nomad stack.
//!
//! The paper's measurements were taken on quad-core Xeon X5460 nodes over
//! Myrinet MX. Where that hardware (or simply a multicore host) is not
//! available, this crate reproduces every experiment *deterministically*:
//! a virtual-time machine ([`Vm`]) runs each experiment's threads one at a
//! time against a nanosecond clock, charging calibrated costs
//! ([`SimCosts`]) for the operations the paper prices:
//!
//! * spinlock acquire/release cycles (70 ns, §3.1),
//! * PIOMan list management per pass (200 ns, Fig 6),
//! * context switches on blocking primitives (750 ns, Fig 7),
//! * cross-core completion penalties from the machine topology
//!   (400 ns / 1.2 µs / 2.3 µs / 3.1 µs, Fig 8),
//! * tasklet scheduling vs direct idle-core pickup (2 µs vs 400 ns,
//!   Fig 9),
//!
//! plus the wire model of `nm-fabric` for transmission times.
//!
//! [`experiments`] contains one entry point per figure; the `figures`
//! binary of the bench crate prints their output in the paper's format.
//! The defaults of [`SimCosts`] are the paper's constants; calibration
//! from the host's real primitives is possible via
//! [`SimCosts::with_lock_cycle`] etc., so sim and real modes can be
//! cross-checked.

#![warn(missing_docs)]

mod costs;
pub mod experiments;
mod vm;

pub use costs::SimCosts;
pub use vm::{ChanId, EventId, LockId, ThreadCtx, Vm, VmReport};
