//! Calibrated operation costs.

/// Per-operation costs (nanoseconds) charged by the simulated experiments.
///
/// Defaults are the constants the paper reports for its testbed; every
/// field can be replaced with values calibrated on the host (see the
/// calibration harness in `nm-bench`), letting the simulator predict what
/// the real stack would measure on this machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimCosts {
    /// One spinlock acquire/release cycle (paper: 70 ns).
    pub lock_cycle_ns: u64,
    /// One polling pass over a driver (decode/doorbell bookkeeping).
    pub poll_pass_ns: u64,
    /// Extra cost of going through the PIOMan registry per pass
    /// (paper: ~200 ns — "management of PIOMan internal lists as well as
    /// locking").
    pub pioman_pass_ns: u64,
    /// One blocking-primitive context switch (paper: ~750 ns).
    pub ctx_switch_ns: u64,
    /// CPU cost of submitting one packet (strategy, header, doorbell).
    pub submit_ns: u64,
    /// CPU cost of enqueueing a deferred submission (lock-free push).
    pub enqueue_ns: u64,
    /// Tasklet scheduling overhead: state machine + pending list +
    /// runner wakeup (paper: ~2 µs total for the tasklet path).
    pub tasklet_schedule_ns: u64,
    /// Granularity of a progression thread's idle loop: how long after an
    /// event lands before an idle-core poller notices it (bounded by its
    /// pass length).
    pub idle_poll_gap_ns: u64,
    /// Cost of scanning one entry of a collect-layer matching list (the
    /// posted/unexpected walk charges this per in-flight flow). The
    /// message-rate experiment uses it to price linear-scan matching
    /// against hashed per-gate bins.
    pub match_scan_ns: u64,
}

impl Default for SimCosts {
    fn default() -> Self {
        SimCosts {
            lock_cycle_ns: 70,
            poll_pass_ns: 50,
            pioman_pass_ns: 200,
            ctx_switch_ns: 750,
            submit_ns: 250,
            enqueue_ns: 100,
            tasklet_schedule_ns: 800,
            idle_poll_gap_ns: 300,
            match_scan_ns: 60,
        }
    }
}

impl SimCosts {
    /// The paper's testbed constants (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Replaces the lock-cycle cost (e.g. with a host-calibrated value).
    pub fn with_lock_cycle(mut self, ns: u64) -> Self {
        self.lock_cycle_ns = ns;
        self
    }

    /// Replaces the context-switch cost.
    pub fn with_ctx_switch(mut self, ns: u64) -> Self {
        self.ctx_switch_ns = ns;
        self
    }

    /// Replaces the PIOMan pass cost.
    pub fn with_pioman_pass(mut self, ns: u64) -> Self {
        self.pioman_pass_ns = ns;
        self
    }

    /// Replaces the tasklet scheduling cost.
    pub fn with_tasklet_schedule(mut self, ns: u64) -> Self {
        self.tasklet_schedule_ns = ns;
        self
    }

    /// Replaces the per-entry matching-list scan cost.
    pub fn with_match_scan(mut self, ns: u64) -> Self {
        self.match_scan_ns = ns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_constants() {
        let c = SimCosts::paper();
        assert_eq!(c.lock_cycle_ns, 70);
        assert_eq!(c.pioman_pass_ns, 200);
        assert_eq!(c.ctx_switch_ns, 750);
    }

    #[test]
    fn builders_replace_fields() {
        let c = SimCosts::default()
            .with_lock_cycle(99)
            .with_ctx_switch(1234)
            .with_pioman_pass(1)
            .with_tasklet_schedule(5)
            .with_match_scan(7);
        assert_eq!(c.lock_cycle_ns, 99);
        assert_eq!(c.ctx_switch_ns, 1234);
        assert_eq!(c.pioman_pass_ns, 1);
        assert_eq!(c.tasklet_schedule_ns, 5);
        assert_eq!(c.match_scan_ns, 7);
    }
}
