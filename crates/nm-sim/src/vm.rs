//! The virtual-time machine.
//!
//! Experiment threads are real OS threads, but exactly one runs at a time:
//! a scheduler hands control to the runnable thread with the earliest
//! virtual wake-up time, so execution is fully deterministic regardless of
//! the host's core count (this box may well have a single CPU). Threads
//! interact with virtual time through their [`ThreadCtx`]: advancing the
//! clock, taking simulated locks (FIFO, with contention), sending packets
//! over modelled wires, and blocking on events (charged a context switch
//! and a topology-dependent cache penalty, per §3.3 and §4.1 of the
//! paper).

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use nm_fabric::WireModel;
use nm_topo::Topology;

use crate::SimCosts;

/// Handle to a simulated lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockId(usize);

/// Handle to a simulated one-shot event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(usize);

/// Handle to a simulated unidirectional wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready { wake_at: u64 },
    Active,
    Blocked,
    Done,
}

struct LockState {
    holder: Option<usize>,
    waiters: VecDeque<usize>,
    acquisitions: u64,
    contentions: u64,
}

struct EventState {
    set: bool,
    /// Thread that signalled (for cache-penalty attribution).
    producer: Option<usize>,
    waiters: Vec<usize>,
}

struct Msg {
    deliver_at: u64,
    size: usize,
}

struct ChanState {
    model: WireModel,
    /// Index into `State::wires`: channels in the same group serialize on
    /// one physical wire (same NIC, several logical flows).
    wire: usize,
    queue: VecDeque<Msg>,
    /// Threads blocked in [`ThreadCtx::chan_recv_wait`]; a send wakes
    /// them at the packet's delivery time.
    waiters: Vec<usize>,
}

struct State {
    now: u64,
    deadline: u64,
    /// Fatal condition (deadlock, deadline, panicking thread): `run()`
    /// re-raises it.
    poisoned: Option<String>,
    threads: Vec<TState>,
    /// One condvar per thread: dispatch wakes exactly the target thread
    /// (a global notify_all would stampede every parked thread on each
    /// virtual event).
    wakeups: Vec<Arc<Condvar>>,
    /// Per-physical-wire next-free times (bandwidth serialization).
    wires: Vec<u64>,
    cores: Vec<usize>,
    locks: Vec<LockState>,
    events: Vec<EventState>,
    chans: Vec<ChanState>,
}

struct Shared {
    m: Mutex<State>,
    /// Signalled when the machine completes or is poisoned.
    done_cv: Condvar,
}

/// Summary returned by [`Vm::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmReport {
    /// Virtual time at which the last thread finished.
    pub elapsed_ns: u64,
    /// Number of threads that ran.
    pub threads: usize,
}

/// A thread body queued for the next [`Vm::run`], tagged with its core.
type QueuedBody = (usize, Box<dyn FnOnce(&mut ThreadCtx) + Send>);

/// A deterministic virtual-time machine.
pub struct Vm {
    shared: Arc<Shared>,
    costs: SimCosts,
    topo: Arc<Topology>,
    bodies: Vec<QueuedBody>,
}

impl Vm {
    /// Creates a machine with the given cost table and topology.
    pub fn new(costs: SimCosts, topo: Topology) -> Self {
        Vm {
            shared: Arc::new(Shared {
                m: Mutex::new(State {
                    now: 0,
                    deadline: 30_000_000_000, // 30 s of virtual time
                    poisoned: None,
                    threads: Vec::new(),
                    wakeups: Vec::new(),
                    wires: Vec::new(),
                    cores: Vec::new(),
                    locks: Vec::new(),
                    events: Vec::new(),
                    chans: Vec::new(),
                }),
                done_cv: Condvar::new(),
            }),
            costs,
            topo: Arc::new(topo),
            bodies: Vec::new(),
        }
    }

    /// Overrides the virtual-time safety deadline.
    pub fn deadline_ns(&mut self, ns: u64) {
        self.shared.m.lock().deadline = ns;
    }

    /// Registers a simulated lock.
    pub fn lock(&self) -> LockId {
        let mut g = self.shared.m.lock();
        g.locks.push(LockState {
            holder: None,
            waiters: VecDeque::new(),
            acquisitions: 0,
            contentions: 0,
        });
        LockId(g.locks.len() - 1)
    }

    /// Registers a one-shot event.
    pub fn event(&mut self) -> EventId {
        let mut g = self.shared.m.lock();
        g.events.push(EventState {
            set: false,
            producer: None,
            waiters: Vec::new(),
        });
        EventId(g.events.len() - 1)
    }

    /// Registers a unidirectional wire with the given model.
    pub fn chan(&mut self, model: WireModel) -> ChanId {
        let mut g = self.shared.m.lock();
        g.wires.push(0);
        let wire = g.wires.len() - 1;
        g.chans.push(ChanState {
            model,
            wire,
            queue: VecDeque::new(),
            waiters: Vec::new(),
        });
        ChanId(g.chans.len() - 1)
    }

    /// Registers a logical channel sharing `other`'s physical wire: the
    /// flows keep separate queues but serialize their transmissions on
    /// one NIC (Fig 5's "more intensive use of the NIC").
    pub fn chan_sharing_wire(&mut self, model: WireModel, other: ChanId) -> ChanId {
        let mut g = self.shared.m.lock();
        let wire = g.chans[other.0].wire;
        g.chans.push(ChanState {
            model,
            wire,
            queue: VecDeque::new(),
            waiters: Vec::new(),
        });
        ChanId(g.chans.len() - 1)
    }

    /// Registers a thread pinned to `core`, runnable at t = 0.
    pub fn spawn(&mut self, core: usize, f: impl FnOnce(&mut ThreadCtx) + Send + 'static) {
        assert!(core < self.topo.num_cores(), "core {core} outside topology");
        let mut g = self.shared.m.lock();
        g.threads.push(TState::Ready { wake_at: 0 });
        g.cores.push(core);
        g.wakeups.push(Arc::new(Condvar::new()));
        drop(g);
        self.bodies.push((core, Box::new(f)));
    }

    /// Runs the machine to completion and returns the report.
    ///
    /// # Panics
    /// Panics on virtual deadlock (all threads blocked) or when the
    /// virtual deadline is exceeded (runaway experiment).
    pub fn run(self) -> VmReport {
        let n = self.bodies.len();
        assert!(n > 0, "no threads spawned");
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(n);
        for (id, (core, body)) in self.bodies.into_iter().enumerate() {
            let shared = Arc::clone(&self.shared);
            let costs = self.costs;
            let topo = Arc::clone(&self.topo);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nm-sim-{id}"))
                    .spawn(move || {
                        let mut ctx = ThreadCtx {
                            shared,
                            id,
                            core,
                            costs,
                            topo,
                        };
                        ctx.wait_until_active();
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            body(&mut ctx)
                        }));
                        match result {
                            Ok(()) => ctx.finish(),
                            Err(payload) => {
                                ctx.poison("a sim thread panicked".into());
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                    .expect("failed to spawn sim thread"),
            );
        }

        // Kick off the earliest thread; from then on, scheduling is
        // performed by the yielding threads themselves (direct handoff —
        // no dedicated scheduler thread, and zero OS context switches
        // when the running thread stays earliest).
        {
            let mut g = self.shared.m.lock();
            match dispatch_next(&mut g) {
                Ok(next) => {
                    g.wakeups[next].notify_one();
                }
                Err(_) => panic!("no runnable thread at start"),
            }
        }
        // Wait for completion (or a fatal condition).
        let elapsed;
        {
            let mut g = self.shared.m.lock();
            while g.poisoned.is_none() && !g.threads.iter().all(|t| *t == TState::Done) {
                self.shared.done_cv.wait(&mut g);
            }
            if let Some(msg) = g.poisoned.take() {
                drop(g);
                // Threads may be parked forever; detach them.
                drop(handles);
                panic!("{msg}");
            }
            elapsed = g.now;
        }
        for h in handles {
            h.join().expect("sim thread panicked");
        }
        VmReport {
            elapsed_ns: elapsed,
            threads: n,
        }
    }
}

/// A simulated thread's interface to the machine.
pub struct ThreadCtx {
    shared: Arc<Shared>,
    id: usize,
    core: usize,
    costs: SimCosts,
    topo: Arc<Topology>,
}

impl ThreadCtx {
    /// The cost table in effect.
    pub fn costs(&self) -> &SimCosts {
        &self.costs
    }

    /// The topology in effect.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The core this thread is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.shared.m.lock().now
    }

    /// Consumes `ns` of virtual CPU time.
    pub fn advance(&self, ns: u64) {
        let mut g = self.shared.m.lock();
        let wake_at = g.now + ns;
        self.yield_with(&mut g, TState::Ready { wake_at });
    }

    /// Acquires a simulated lock and charges one lock cycle.
    ///
    /// Contended acquisition uses *retry* semantics, not FIFO handoff:
    /// a released lock is up for grabs, and a thread that is already
    /// running wins over a waiter that must first wake — exactly the
    /// cache-locality unfairness of real spinlocks. This is what makes
    /// two concurrent pingpongs serialize behind the coarse lock (Fig 5)
    /// instead of pipelining through the release/re-acquire gap.
    pub fn lock(&self, l: LockId) {
        let mut g = self.shared.m.lock();
        let mut first_attempt = true;
        loop {
            let lock = &mut g.locks[l.0];
            if lock.holder.is_none() {
                lock.holder = Some(self.id);
                lock.acquisitions += 1;
                break;
            }
            if first_attempt {
                lock.contentions += 1;
                first_attempt = false;
            }
            lock.waiters.push_back(self.id);
            self.yield_with(&mut g, TState::Blocked);
            // Woken by an unlock: retry (the lock may have been stolen).
        }
        // Charge the acquire/release cycle up front.
        let wake_at = g.now + self.costs.lock_cycle_ns;
        self.yield_with(&mut g, TState::Ready { wake_at });
    }

    /// Releases a simulated lock and wakes the first waiter (which then
    /// retries the acquisition).
    pub fn unlock(&self, l: LockId) {
        let mut g = self.shared.m.lock();
        let now = g.now;
        let lock = &mut g.locks[l.0];
        debug_assert_eq!(lock.holder, Some(self.id), "unlock by non-holder");
        lock.holder = None;
        if let Some(w) = lock.waiters.pop_front() {
            g.threads[w] = TState::Ready { wake_at: now };
        }
    }

    /// Runs `work_ns` of virtual time under the lock.
    pub fn with_lock(&self, l: LockId, work_ns: u64) {
        self.lock(l);
        if work_ns > 0 {
            self.advance(work_ns);
        }
        self.unlock(l);
    }

    /// Lock acquisition/contention counters.
    pub fn lock_stats(&self, l: LockId) -> (u64, u64) {
        let g = self.shared.m.lock();
        (g.locks[l.0].acquisitions, g.locks[l.0].contentions)
    }

    /// Injects a packet of `size` payload bytes into a wire.
    pub fn chan_send(&self, c: ChanId, size: usize) {
        let mut g = self.shared.m.lock();
        let now = g.now;
        let chan = &g.chans[c.0];
        let wire = chan.wire;
        let inject = g.wires[wire].max(now);
        let tx = chan.model.tx_time_ns(size);
        let deliver_at = inject + tx + chan.model.latency_ns;
        g.wires[wire] = inject + tx;
        g.chans[c.0].queue.push_back(Msg { deliver_at, size });
        // Blocked receivers resume exactly when the packet lands.
        let waiters = std::mem::take(&mut g.chans[c.0].waiters);
        for w in waiters {
            g.threads[w] = TState::Ready {
                wake_at: deliver_at,
            };
        }
    }

    /// Earliest pending delivery time on a wire, if any packet is in
    /// flight.
    pub fn chan_next_deliver(&self, c: ChanId) -> Option<u64> {
        let g = self.shared.m.lock();
        g.chans[c.0].queue.front().map(|m| m.deliver_at)
    }

    /// Receives the next packet, *blocking virtually* until it lands.
    ///
    /// Semantically equivalent to an infinitely fine busy-poll loop, but
    /// O(1) in simulator events: the thread parks and the sender wakes it
    /// at the packet's delivery time. Callers model their poll-pass
    /// granularity by aligning afterwards (see the experiments module).
    pub fn chan_recv_wait(&self, c: ChanId) -> usize {
        loop {
            let mut g = self.shared.m.lock();
            let now = g.now;
            match g.chans[c.0].queue.front() {
                Some(m) if m.deliver_at <= now => {
                    let msg = g.chans[c.0].queue.pop_front().expect("front checked");
                    return msg.size;
                }
                Some(m) => {
                    // In flight: sleep until it lands.
                    let wake_at = m.deliver_at;
                    self.yield_with(&mut g, TState::Ready { wake_at });
                }
                None => {
                    // Nothing in flight: park until a send targets us.
                    g.chans[c.0].waiters.push(self.id);
                    self.yield_with(&mut g, TState::Blocked);
                }
            }
        }
    }

    /// Polls a wire: pops the head packet if it has been delivered.
    pub fn chan_try_recv(&self, c: ChanId) -> Option<usize> {
        let mut g = self.shared.m.lock();
        let now = g.now;
        let chan = &mut g.chans[c.0];
        if chan.queue.front().is_some_and(|m| m.deliver_at <= now) {
            Some(chan.queue.pop_front().expect("front checked").size)
        } else {
            None
        }
    }

    /// Busy-polls a wire until a packet is delivered; each empty pass
    /// costs `pass_ns`. Returns the payload size.
    pub fn chan_busy_recv(&self, c: ChanId, pass_ns: u64) -> usize {
        loop {
            if let Some(size) = self.chan_try_recv(c) {
                return size;
            }
            self.advance(pass_ns.max(1));
        }
    }

    /// Signals an event, waking all blocked waiters.
    pub fn event_signal(&self, e: EventId) {
        let mut g = self.shared.m.lock();
        let now = g.now;
        let ev = &mut g.events[e.0];
        ev.set = true;
        ev.producer = Some(self.id);
        let waiters = std::mem::take(&mut ev.waiters);
        for w in waiters {
            g.threads[w] = TState::Ready { wake_at: now };
        }
    }

    /// Clears an event for reuse.
    pub fn event_reset(&self, e: EventId) {
        let mut g = self.shared.m.lock();
        let ev = &mut g.events[e.0];
        debug_assert!(ev.waiters.is_empty(), "reset with blocked waiters");
        ev.set = false;
        ev.producer = None;
    }

    /// `true` once the event is signalled (spin-loop predicate).
    pub fn event_is_set(&self, e: EventId) -> bool {
        self.shared.m.lock().events[e.0].set
    }

    /// Blocks on an event (passive waiting): charges a context switch on
    /// wake-up plus the cache penalty of reading state the producer wrote
    /// on its core.
    pub fn event_wait_blocking(&self, e: EventId) {
        let blocked;
        {
            let mut g = self.shared.m.lock();
            if g.events[e.0].set {
                blocked = false;
            } else {
                blocked = true;
                g.events[e.0].waiters.push(self.id);
                self.yield_with(&mut g, TState::Blocked);
            }
        }
        if blocked {
            self.advance(self.costs.ctx_switch_ns);
        }
        self.charge_producer_penalty(e);
    }

    /// Spin-waits on an event (busy waiting): polls every `pass_ns`, never
    /// blocks, then charges the producer cache penalty.
    pub fn event_busy_wait(&self, e: EventId, pass_ns: u64) {
        while !self.event_is_set(e) {
            self.advance(pass_ns.max(1));
        }
        self.charge_producer_penalty(e);
    }

    /// Fixed-spin wait (Karlin et al.): spin for `window_ns`, then block.
    pub fn event_fixed_spin_wait(&self, e: EventId, window_ns: u64, pass_ns: u64) {
        let start = self.now();
        while self.now() - start < window_ns {
            if self.event_is_set(e) {
                self.charge_producer_penalty(e);
                return;
            }
            self.advance(pass_ns.max(1));
        }
        self.event_wait_blocking(e);
    }

    /// Charges the cache-distance penalty for consuming data produced on
    /// `producer_core` (Fig 8's constants).
    pub fn charge_cache_penalty(&self, producer_core: usize) {
        let ns = self.topo.poll_penalty(self.core, producer_core).as_nanos() as u64;
        if ns > 0 {
            self.advance(ns);
        }
    }

    fn charge_producer_penalty(&self, e: EventId) {
        let producer_core = {
            let g = self.shared.m.lock();
            g.events[e.0].producer.map(|p| g.cores[p])
        };
        if let Some(pc) = producer_core {
            self.charge_cache_penalty(pc);
        }
    }

    // ---- scheduler protocol ---------------------------------------------

    fn wait_until_active(&self) {
        let mut g = self.shared.m.lock();
        let cv = Arc::clone(&g.wakeups[self.id]);
        while g.threads[self.id] != TState::Active {
            cv.wait(&mut g);
        }
        if g.poisoned.is_some() {
            panic!("sim machine poisoned");
        }
    }

    /// Records this thread's new state and hands the machine to the
    /// earliest-runnable thread. Fast path: if that thread is *us*, we
    /// keep running without any OS context switch.
    fn yield_with(&self, g: &mut parking_lot::MutexGuard<'_, State>, state: TState) {
        g.threads[self.id] = state;
        match dispatch_next(g) {
            Ok(next) if next == self.id => return,
            Ok(next) => {
                g.wakeups[next].notify_one();
            }
            Err(stall) => self.raise(g, stall),
        }
        let cv = Arc::clone(&g.wakeups[self.id]);
        while g.threads[self.id] != TState::Active {
            if g.poisoned.is_some() {
                // Another thread hit a fatal condition; unwind quietly.
                panic!("sim machine poisoned");
            }
            cv.wait(g);
        }
        if g.poisoned.is_some() {
            panic!("sim machine poisoned");
        }
    }

    fn finish(&self) {
        let mut g = self.shared.m.lock();
        g.threads[self.id] = TState::Done;
        match dispatch_next(&mut g) {
            Ok(next) => {
                g.wakeups[next].notify_one();
            }
            Err(Stalled::AllDone) => {
                self.shared.done_cv.notify_all();
            }
            Err(stall) => self.raise(&mut g, stall),
        }
    }

    /// Records a fatal condition and unwinds; `run()` re-raises it.
    fn raise(&self, g: &mut parking_lot::MutexGuard<'_, State>, stall: Stalled) -> ! {
        let msg = match stall {
            Stalled::AllDone => unreachable!("AllDone is not fatal"),
            Stalled::Deadlock => "virtual deadlock: every live thread is blocked".to_string(),
            Stalled::Deadline(t) => {
                format!("virtual deadline exceeded at t = {t} ns (runaway experiment?)")
            }
        };
        g.poisoned = Some(msg.clone());
        for cv in &g.wakeups {
            cv.notify_one();
        }
        self.shared.done_cv.notify_all();
        panic!("{msg}");
    }

    fn poison(&self, msg: String) {
        let mut g = self.shared.m.lock();
        g.threads[self.id] = TState::Done;
        g.poisoned.get_or_insert(msg);
        for cv in &g.wakeups {
            cv.notify_one();
        }
        self.shared.done_cv.notify_all();
    }
}

enum Stalled {
    AllDone,
    Deadlock,
    Deadline(u64),
}

/// Activates the earliest Ready thread, advancing the virtual clock.
fn dispatch_next(g: &mut State) -> Result<usize, Stalled> {
    let next = g
        .threads
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            if let TState::Ready { wake_at } = *t {
                Some((wake_at, i))
            } else {
                None
            }
        })
        .min();
    match next {
        Some((wake_at, i)) => {
            let now = g.now.max(wake_at);
            if now > g.deadline {
                return Err(Stalled::Deadline(now));
            }
            g.now = now;
            g.threads[i] = TState::Active;
            Ok(i)
        }
        None if g.threads.iter().all(|t| *t == TState::Done) => Err(Stalled::AllDone),
        None => Err(Stalled::Deadlock),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn vm() -> Vm {
        Vm::new(SimCosts::paper(), Topology::xeon_x5460())
    }

    #[test]
    fn advance_accumulates_virtual_time() {
        let mut m = vm();
        m.spawn(0, |ctx| {
            ctx.advance(100);
            ctx.advance(250);
            assert_eq!(ctx.now(), 350);
        });
        let r = m.run();
        assert_eq!(r.elapsed_ns, 350);
        assert_eq!(r.threads, 1);
    }

    #[test]
    fn threads_interleave_deterministically() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut m = vm();
        for (id, step) in [(0u64, 100u64), (1, 150)] {
            let order = Arc::clone(&order);
            m.spawn(id as usize, move |ctx| {
                for i in 0..3 {
                    ctx.advance(step);
                    order.lock().push((id, i, ctx.now()));
                }
            });
        }
        m.run();
        let log = order.lock().clone();
        // Thread 0 wakes at 100,200,300; thread 1 at 150,300,450.
        // At the t=300 tie, thread 0 (lower id) goes first.
        assert_eq!(
            log,
            vec![
                (0, 0, 100),
                (1, 0, 150),
                (0, 1, 200),
                (0, 2, 300),
                (1, 1, 300),
                (1, 2, 450),
            ]
        );
    }

    #[test]
    fn lock_contention_serializes_and_is_fifo() {
        let mut m = vm();
        let l = m.lock();
        let spans = Arc::new(Mutex::new(Vec::new()));
        for id in 0..3usize {
            let spans = Arc::clone(&spans);
            m.spawn(id, move |ctx| {
                // Stagger arrivals so the queue order is 0, 1, 2.
                ctx.advance(10 * id as u64 + 1);
                ctx.lock(l);
                let start = ctx.now();
                ctx.advance(1_000); // critical section
                ctx.unlock(l);
                spans.lock().push((id, start, ctx.now()));
            });
        }
        m.run();
        let spans = spans.lock().clone();
        // FIFO order and no overlap.
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans[1].0, 1);
        assert_eq!(spans[2].0, 2);
        for w in spans.windows(2) {
            assert!(w[1].1 >= w[0].2, "critical sections overlap: {spans:?}");
        }
    }

    #[test]
    fn lock_charges_one_cycle() {
        let mut m = vm();
        let l = m.lock();
        m.spawn(0, move |ctx| {
            let t0 = ctx.now();
            ctx.lock(l);
            ctx.unlock(l);
            assert_eq!(ctx.now() - t0, ctx.costs().lock_cycle_ns);
        });
        m.run();
    }

    #[test]
    fn chan_models_wire_latency_and_bandwidth() {
        let mut m = vm();
        let c = m.chan(WireModel {
            latency_ns: 1_000,
            ns_per_byte: 1.0,
            per_packet_ns: 0,
            mtu: 1 << 20,
            tx_depth: 16,
        });
        m.spawn(0, move |ctx| {
            ctx.chan_send(c, 500); // deliver at 500 + 1000 = 1500
            ctx.chan_send(c, 500); // serializes: deliver at 2000... wait: inject at 500
        });
        let got = Arc::new(AtomicU64::new(0));
        let got2 = Arc::clone(&got);
        let mut m = m;
        m.spawn(1, move |ctx| {
            ctx.chan_busy_recv(c, 10);
            let first = ctx.now();
            ctx.chan_busy_recv(c, 10);
            let second = ctx.now();
            got2.store(first * 1_000_000 + second, Ordering::SeqCst);
        });
        m.run();
        let v = got.load(Ordering::SeqCst);
        let (first, second) = (v / 1_000_000, v % 1_000_000);
        assert!((1_500..1_600).contains(&first), "first at {first}");
        assert!((2_000..2_100).contains(&second), "second at {second}");
    }

    #[test]
    fn blocking_event_charges_ctx_switch_and_penalty() {
        let mut m = vm();
        let e = m.event();
        let waited = Arc::new(AtomicU64::new(0));
        let w2 = Arc::clone(&waited);
        // Producer on core 2 (no shared cache with core 0).
        m.spawn(2, move |ctx| {
            ctx.advance(5_000);
            ctx.event_signal(e);
        });
        m.spawn(0, move |ctx| {
            ctx.event_wait_blocking(e);
            w2.store(ctx.now(), Ordering::SeqCst);
        });
        m.run();
        // 5000 (signal) + 750 (ctx switch) + 1200 (cross-die penalty).
        assert_eq!(waited.load(Ordering::SeqCst), 5_000 + 750 + 1_200);
    }

    #[test]
    fn busy_event_skips_ctx_switch() {
        let mut m = vm();
        let e = m.event();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        m.spawn(1, move |ctx| {
            ctx.advance(5_000);
            ctx.event_signal(e);
        });
        m.spawn(0, move |ctx| {
            ctx.event_busy_wait(e, 50);
            t2.store(ctx.now(), Ordering::SeqCst);
        });
        m.run();
        let when = t.load(Ordering::SeqCst);
        // Signal at 5000, noticed within one 50 ns pass, + 400 ns
        // shared-cache penalty; definitely no 750 ns switch.
        assert!((5_400..5_500).contains(&when), "woke at {when}");
    }

    #[test]
    fn fixed_spin_blocks_only_past_window() {
        let mut m = vm();
        let (fast, slow) = (m.event(), m.event());
        let times = Arc::new(Mutex::new((0u64, 0u64)));
        let t2 = Arc::clone(&times);
        m.spawn(1, move |ctx| {
            ctx.advance(2_000);
            ctx.event_signal(fast); // within the 5 µs window
            ctx.advance(18_000);
            ctx.event_signal(slow); // at t = 20 µs, far past the window
        });
        m.spawn(0, move |ctx| {
            let t0 = ctx.now();
            ctx.event_fixed_spin_wait(fast, 5_000, 50);
            let fast_done = ctx.now() - t0;
            let t1 = ctx.now();
            ctx.event_fixed_spin_wait(slow, 5_000, 50);
            t2.lock().0 = fast_done;
            t2.lock().1 = ctx.now() - t1;
        });
        m.run();
        let (fast_done, slow_done) = *times.lock();
        assert!(
            fast_done < 3_000,
            "fast event handled in spin phase: {fast_done}"
        );
        // Slow: blocked at ~5 µs, woken at 20 µs + switch + penalty.
        assert!(slow_done >= 18_000, "slow path blocked: {slow_done}");
    }

    #[test]
    fn chan_recv_wait_blocks_until_delivery() {
        let mut m = vm();
        let c = m.chan(WireModel {
            latency_ns: 5_000,
            ns_per_byte: 0.0,
            per_packet_ns: 0,
            mtu: 1 << 20,
            tx_depth: 16,
        });
        let when = Arc::new(AtomicU64::new(0));
        let w2 = Arc::clone(&when);
        m.spawn(0, move |ctx| {
            ctx.advance(1_000);
            ctx.chan_send(c, 64);
        });
        m.spawn(1, move |ctx| {
            let size = ctx.chan_recv_wait(c);
            assert_eq!(size, 64);
            w2.store(ctx.now(), Ordering::SeqCst);
        });
        m.run();
        // Sent at 1000, delivered at 1000 + 5000.
        assert_eq!(when.load(Ordering::SeqCst), 6_000);
    }

    #[test]
    fn chan_recv_wait_pops_in_flight_packet() {
        let mut m = vm();
        let c = m.chan(WireModel {
            latency_ns: 100,
            ns_per_byte: 0.0,
            per_packet_ns: 0,
            mtu: 1 << 20,
            tx_depth: 16,
        });
        m.spawn(0, move |ctx| {
            ctx.chan_send(c, 1);
            ctx.chan_send(c, 2);
            // Receive both on the same thread: the second is in flight,
            // not yet delivered, when the first wait returns.
            assert_eq!(ctx.chan_recv_wait(c), 1);
            assert_eq!(ctx.chan_recv_wait(c), 2);
            assert!(ctx.chan_next_deliver(c).is_none());
        });
        m.run();
    }

    #[test]
    fn shared_wire_serializes_two_channels() {
        let mut m = vm();
        let model = WireModel {
            latency_ns: 0,
            ns_per_byte: 1.0,
            per_packet_ns: 0,
            mtu: 1 << 20,
            tx_depth: 16,
        };
        let c0 = m.chan(model);
        let c1 = m.chan_sharing_wire(model, c0);
        let times = Arc::new(Mutex::new((0u64, 0u64)));
        let t2 = Arc::clone(&times);
        m.spawn(0, move |ctx| {
            // Two 1000-byte packets on different channels, same wire: the
            // second serializes behind the first.
            ctx.chan_send(c0, 1_000);
            ctx.chan_send(c1, 1_000);
            let a = ctx.chan_next_deliver(c0).unwrap();
            let b = ctx.chan_next_deliver(c1).unwrap();
            *t2.lock() = (a, b);
        });
        m.run();
        let (a, b) = *times.lock();
        assert_eq!(a, 1_000);
        assert_eq!(b, 2_000, "second channel must wait for the shared wire");
    }

    #[test]
    fn two_waiters_on_one_channel_each_get_a_packet() {
        let mut m = vm();
        let c = m.chan(WireModel::ideal());
        let got = Arc::new(Mutex::new(Vec::new()));
        for id in 0..2usize {
            let got = Arc::clone(&got);
            m.spawn(id, move |ctx| {
                let size = ctx.chan_recv_wait(c);
                got.lock().push(size);
            });
        }
        m.spawn(2, move |ctx| {
            ctx.advance(500);
            ctx.chan_send(c, 11);
            ctx.advance(500);
            ctx.chan_send(c, 22);
        });
        m.run();
        let mut sizes = got.lock().clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![11, 22]);
    }

    #[test]
    #[should_panic(expected = "virtual deadlock")]
    fn deadlock_is_detected() {
        let mut m = vm();
        let e = m.event();
        m.spawn(0, move |ctx| {
            ctx.event_wait_blocking(e); // nobody will signal
        });
        m.run();
    }

    #[test]
    #[should_panic(expected = "deadline exceeded")]
    fn runaway_experiment_hits_deadline() {
        let mut m = vm();
        m.deadline_ns(1_000);
        m.spawn(0, |ctx| loop {
            ctx.advance(100);
        });
        m.run();
    }
}
