//! # nm-obs — per-message causal observability
//!
//! `nm-trace` answers "what did each *mechanism* cost in aggregate";
//! this crate answers "where did *this message's* microseconds go".
//! Every `isend_with`/`irecv_with` allocates a span id
//! ([`nm_trace::next_span_id`]) that the core threads through the
//! request, the collect shards, the transfer layer, the reliability
//! wire header, and the async waker path, emitting `Span*` events along
//! the way. This crate assembles those events offline:
//!
//! * [`spans`] — groups the `Span*` events of a drained
//!   [`nm_trace::Trace`] into per-message [`spans::SpanTimeline`]s and
//!   computes a [`spans::Breakdown`]: a critical-path decomposition
//!   (collect-entry vs. queued-in-collect vs. retransmit vs. on-wire
//!   vs. completion-delivery) whose components sum exactly to the
//!   end-to-end latency.
//! * [`flight`] — an always-on flight recorder: when a request fails
//!   with `Timeout`/`PeerUnreachable` or a rail is declared dead, a
//!   bounded JSON snapshot of the most recent span timelines plus a
//!   full metrics snapshot is captured, so chaos-run failures are
//!   self-diagnosing. See `docs/OBSERVABILITY.md`.
//!
//! Everything here is read-side: the crate takes no locks on the
//! communication fast path and works (metrics-only) when the `trace`
//! feature is compiled out.

#![warn(missing_docs)]

pub mod flight;
pub mod spans;

pub use flight::{last_dump, record_failure, take_last_dump};
pub use spans::{assemble, Breakdown, SpanEvent, SpanTimeline};
