//! The failure flight recorder.
//!
//! When a request fails with `Timeout`/`PeerUnreachable` or a rail is
//! declared dead, the core calls [`record_failure`]. The recorder
//! snapshots (without draining) every thread's trace ring, assembles
//! the most recent span timelines, takes a full metrics snapshot, and
//! renders one JSON dump — a bounded black box of what the stack was
//! doing when it failed. The latest dump is kept in a process-global
//! slot ([`last_dump`]/[`take_last_dump`]); set `NOMAD_FLIGHT_DIR` to
//! also persist each dump as `flight-<n>.json` (capped at
//! [`MAX_DUMP_FILES`] files so a retry storm cannot fill a disk).
//!
//! The recorder is always on: it costs nothing until a failure happens
//! (no locks, no allocation on the fast path), and with tracing
//! compiled out the dump still carries the metrics snapshot — the span
//! section is just empty.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::spans::{assemble, Breakdown, SpanTimeline};

/// Most recent span timelines kept in a dump (newest by last event).
pub const MAX_TIMELINES: usize = 64;
/// Most `flight-<n>.json` files ever written per process.
pub const MAX_DUMP_FILES: u64 = 16;

/// Latest dump (JSON). A plain std mutex: only touched on the failure
/// path, far from any communication lock.
static LAST: Mutex<Option<String>> = Mutex::new(None);
/// Dump sequence number (names the `NOMAD_FLIGHT_DIR` files).
static SEQ: AtomicU64 = AtomicU64::new(0);

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn breakdown_json(b: &Breakdown) -> String {
    let comps: Vec<String> = b
        .components()
        .iter()
        .map(|(name, v)| format!("\"{name}_ns\": {v}"))
        .collect();
    format!("{{{}, \"total_ns\": {}}}", comps.join(", "), b.total_ns)
}

fn timeline_json(tl: &SpanTimeline, peer: Option<&SpanTimeline>) -> String {
    let base = tl.to_json();
    let bd = Breakdown::of(tl, peer)
        .map(|b| breakdown_json(&b))
        .unwrap_or_else(|| "null".to_string());
    // Splice the breakdown into the timeline object.
    format!("{}, \"breakdown\": {}}}", &base[..base.len() - 1], bd)
}

/// Renders a flight dump from the given timelines (most recent
/// [`MAX_TIMELINES`] kept) plus a fresh metrics snapshot.
fn render_dump(
    reason: &str,
    request_id: u64,
    span: u64,
    mut timelines: Vec<SpanTimeline>,
) -> String {
    // Keep the newest timelines: sort by each timeline's last event
    // timestamp, truncate, then restore span order for determinism.
    timelines.sort_by_key(|t| t.events.last().map(|e| e.ts).unwrap_or(0));
    if timelines.len() > MAX_TIMELINES {
        let cut = timelines.len() - MAX_TIMELINES;
        timelines.drain(..cut);
    }
    timelines.sort_by_key(|t| t.span);
    let by_span: std::collections::BTreeMap<u64, SpanTimeline> =
        timelines.iter().map(|t| (t.span, t.clone())).collect();
    let items: Vec<String> = timelines
        .iter()
        .map(|t| timeline_json(t, t.peer.and_then(|p| by_span.get(&p))))
        .collect();
    let metrics = nm_metrics::export::to_json(&nm_metrics::metrics().snapshot());
    format!(
        "{{\n\"reason\": {},\n\"request_id\": {},\n\"span\": {},\n\"timelines\": [\n{}\n],\n\"metrics\": {}}}\n",
        json_str(reason),
        request_id,
        span,
        items.join(",\n"),
        metrics
    )
}

/// Records a failure dump: snapshot the rings, assemble recent span
/// timelines, attach a metrics snapshot, store (and optionally write)
/// the JSON.
///
/// `request_id`/`span` identify the failing request when the trigger
/// was a request-level error (0/0 for rail-level triggers).
pub fn record_failure(reason: &str, request_id: u64, span: u64) {
    let trace = nm_trace::snapshot_trace();
    let timelines = assemble(&trace);
    let dump = render_dump(reason, request_id, span, timelines);
    if let Ok(dir) = std::env::var("NOMAD_FLIGHT_DIR") {
        if !dir.is_empty() {
            // relaxed: a file-name sequence counter; only uniqueness
            // matters, nothing is ordered against the increment.
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            if n < MAX_DUMP_FILES {
                let path = std::path::Path::new(&dir).join(format!("flight-{n}.json"));
                // Best-effort: a failed write must not mask the
                // communication error being recorded.
                let _ = std::fs::write(path, &dump);
            }
        }
    }
    *LAST.lock().unwrap_or_else(|e| e.into_inner()) = Some(dump);
}

/// The most recent flight dump, if any failure was recorded.
pub fn last_dump() -> Option<String> {
    LAST.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Takes (and clears) the most recent flight dump.
pub fn take_last_dump() -> Option<String> {
    LAST.lock().unwrap_or_else(|e| e.into_inner()).take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::SpanEvent;
    use nm_trace::EventId;

    fn tl(span: u64, events: Vec<(u64, EventId, u64)>) -> SpanTimeline {
        SpanTimeline {
            span,
            peer: None,
            events: events
                .into_iter()
                .map(|(ts, id, arg)| SpanEvent { ts, id, arg })
                .collect(),
        }
    }

    #[test]
    fn dump_contains_reason_timelines_and_metrics() {
        let dump = render_dump(
            "timeout",
            42,
            7,
            vec![tl(
                7,
                vec![(1, EventId::SpanSubmit, 0), (9, EventId::SpanComplete, 0)],
            )],
        );
        assert!(dump.contains("\"reason\": \"timeout\""));
        assert!(dump.contains("\"request_id\": 42"));
        assert!(dump.contains("\"span\": 7"));
        assert!(dump.contains("\"event\": \"SpanSubmit\""));
        assert!(dump.contains("\"breakdown\": {\"submit_ns\""));
        assert!(dump.contains("\"counters\""), "metrics snapshot attached");
    }

    #[test]
    fn dump_is_bounded() {
        let many: Vec<SpanTimeline> = (1..=(MAX_TIMELINES as u64 + 40))
            .map(|s| tl(s, vec![(s, EventId::SpanSubmit, 0)]))
            .collect();
        let dump = render_dump("rail-dead", 0, 0, many);
        // The oldest 40 spans (lowest timestamps) must have been cut.
        assert!(!dump.contains("\"span\": 1,"));
        assert!(!dump.contains("\"span\": 40,"));
        assert!(dump.contains("\"span\": 41,"));
        assert!(dump.contains(&format!("\"span\": {},", MAX_TIMELINES + 40)));
    }

    #[test]
    fn record_and_take_round_trip() {
        record_failure("unit-test", 1, 0);
        let dump = last_dump().expect("dump stored");
        assert!(dump.contains("\"reason\": \"unit-test\""));
        assert!(take_last_dump().is_some());
        // Taken: the slot may have been refilled by a concurrent test,
        // but taking twice in isolation clears it; just exercise the
        // call.
        let _ = take_last_dump();
    }
}
