//! The span assembler: ring events → per-message timelines →
//! critical-path latency attribution.
//!
//! The `Span*` events all carry the message's span id in `a` (the
//! receive side emits `SpanWireRx`/`SpanDeliver` with the *sender's*
//! span id read from the frame header, which is what joins the two
//! ranks' rings into one timeline). [`assemble`] groups a drained
//! [`Trace`] by span id; [`Breakdown::of`] reduces one timeline to the
//! paper-style decomposition. Milestones are clamped to be
//! monotonically non-decreasing, so the five components always sum
//! *exactly* to the end-to-end total — attribution never invents or
//! loses a nanosecond to rounding.

use std::collections::BTreeMap;

use nm_trace::{EventId, Trace};

/// One span-tagged event in a message's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Timestamp ([`nm_trace::now_ns`] domain of the emitting rank).
    pub ts: u64,
    /// Which lifecycle step ([`EventId::SpanSubmit`]..=[`EventId::SpanWake`]).
    pub id: EventId,
    /// The event's `b` argument (gate, depth, wire seq, path — per the
    /// schema docs).
    pub arg: u64,
}

/// All events of one message, across threads, rails and retransmits.
#[derive(Debug, Clone, Default)]
pub struct SpanTimeline {
    /// The span id allocated at submit time.
    pub span: u64,
    /// The peer span this one joined via `SpanDeliver` (a send span's
    /// matched receive span, and vice versa).
    pub peer: Option<u64>,
    /// Events in timestamp order (ties keep ring order).
    pub events: Vec<SpanEvent>,
}

impl SpanTimeline {
    /// Timestamp of the first occurrence of `id`, if any.
    pub fn first(&self, id: EventId) -> Option<u64> {
        self.events.iter().find(|e| e.id == id).map(|e| e.ts)
    }

    /// Timestamp of the last occurrence of `id`, if any.
    pub fn last(&self, id: EventId) -> Option<u64> {
        self.events.iter().rev().find(|e| e.id == id).map(|e| e.ts)
    }

    /// Number of occurrences of `id`.
    pub fn count(&self, id: EventId) -> u64 {
        self.events.iter().filter(|e| e.id == id).count() as u64
    }

    /// Renders the timeline as a JSON object (flight-recorder format).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"span\": {}, \"peer\": ", self.span);
        match self.peer {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(", \"events\": [");
        let items: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"ts\": {}, \"event\": \"{}\", \"arg\": {}}}",
                    e.ts,
                    e.id.name(),
                    e.arg
                )
            })
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("]}");
        out
    }
}

/// Is `id` one of the span-lifecycle events this crate assembles?
fn is_span_event(id: EventId) -> bool {
    matches!(
        id,
        EventId::SpanSubmit
            | EventId::SpanCollect
            | EventId::SpanWireTx
            | EventId::SpanWireRx
            | EventId::SpanRetx
            | EventId::SpanDeliver
            | EventId::SpanComplete
            | EventId::SpanWake
    )
}

/// Groups a drained trace's `Span*` events into per-message timelines,
/// sorted by span id.
///
/// `SpanDeliver` carries two spans (`a` = sender, `b` = local receive);
/// it is recorded on **both** timelines and sets their `peer` links.
/// Events with span 0 ("no span") are ignored.
pub fn assemble(trace: &Trace) -> Vec<SpanTimeline> {
    fn entry(map: &mut BTreeMap<u64, SpanTimeline>, span: u64) -> &mut SpanTimeline {
        map.entry(span).or_insert_with(|| SpanTimeline {
            span,
            ..SpanTimeline::default()
        })
    }
    let mut map: BTreeMap<u64, SpanTimeline> = BTreeMap::new();
    for e in trace.merged() {
        if !is_span_event(e.id) || e.a == 0 {
            continue;
        }
        let ev = SpanEvent {
            ts: e.ts,
            id: e.id,
            arg: e.b,
        };
        entry(&mut map, e.a).events.push(ev);
        if e.id == EventId::SpanDeliver && e.b != 0 && e.b != e.a {
            // Join: record the delivery on the receive span too and
            // link the pair.
            let recv = entry(&mut map, e.b);
            recv.events.push(SpanEvent {
                ts: e.ts,
                id: e.id,
                arg: e.a,
            });
            recv.peer = Some(e.a);
            entry(&mut map, e.a).peer = Some(e.b);
        }
    }
    map.into_values().collect()
}

/// Critical-path decomposition of one message, in nanoseconds.
///
/// Components are consecutive differences of clamped milestones, so
/// `submit + collect + retransmit + wire + delivery == total` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Submit → first collect-queue entry: API entry, lock waits,
    /// eager copy.
    pub submit_ns: u64,
    /// Collect entry → first wire injection: time queued in the
    /// collect layer waiting for the transfer layer.
    pub collect_ns: u64,
    /// First injection → last (re)injection: zero unless the
    /// reliability layer retransmitted.
    pub retransmit_ns: u64,
    /// Last injection → receive-side arrival: on-wire (plus receiver
    /// poll latency).
    pub wire_ns: u64,
    /// Arrival → final completion delivery (match, copy, flag/queue/
    /// handler/waker hand-off).
    pub delivery_ns: u64,
    /// End-to-end: submit → final completion. Always the exact sum of
    /// the five components.
    pub total_ns: u64,
}

impl Breakdown {
    /// The component names and values, in timeline order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("submit", self.submit_ns),
            ("collect", self.collect_ns),
            ("retransmit", self.retransmit_ns),
            ("wire", self.wire_ns),
            ("delivery", self.delivery_ns),
        ]
    }

    /// Decomposes one (send-origin) timeline. `peer`, when the
    /// timeline joined a receive span, supplies the final completion
    /// timestamp (the receiver's delivery is the true end of the
    /// message).
    ///
    /// Returns `None` without a `SpanSubmit` or any completion-ish
    /// event to bound the span.
    pub fn of(tl: &SpanTimeline, peer: Option<&SpanTimeline>) -> Option<Breakdown> {
        let submit = tl.first(EventId::SpanSubmit)?;
        let end = peer
            .and_then(|p| p.last(EventId::SpanComplete))
            .or_else(|| tl.last(EventId::SpanComplete))
            .or_else(|| tl.last(EventId::SpanDeliver))?;
        // Clamp each milestone to never run backwards (a missing stage
        // inherits its predecessor and contributes 0), so components
        // are non-negative and telescope to `end - submit`.
        let m0 = submit;
        let m1 = tl.first(EventId::SpanCollect).unwrap_or(m0).max(m0);
        let m2 = tl.first(EventId::SpanWireTx).unwrap_or(m1).max(m1);
        let m3 = tl
            .last(EventId::SpanRetx)
            .into_iter()
            .chain(tl.last(EventId::SpanWireTx))
            .max()
            .unwrap_or(m2)
            .max(m2);
        let m4 = tl
            .first(EventId::SpanWireRx)
            .unwrap_or(m3)
            .clamp(m3, end.max(m3));
        let m5 = end.max(m4);
        Some(Breakdown {
            submit_ns: m1 - m0,
            collect_ns: m2 - m1,
            retransmit_ns: m3 - m2,
            wire_ns: m4 - m3,
            delivery_ns: m5 - m4,
            total_ns: m5 - m0,
        })
    }

    /// Decomposes every timeline of `timelines` that looks like a send
    /// origin (has both a `SpanSubmit` and a `SpanWireTx`), resolving
    /// `peer` links. Returns `(span, breakdown)` pairs in span order.
    pub fn all(timelines: &[SpanTimeline]) -> Vec<(u64, Breakdown)> {
        let by_span: BTreeMap<u64, &SpanTimeline> = timelines.iter().map(|t| (t.span, t)).collect();
        timelines
            .iter()
            .filter(|t| {
                t.first(EventId::SpanSubmit).is_some() && t.first(EventId::SpanWireTx).is_some()
            })
            .filter_map(|t| {
                let peer = t.peer.and_then(|p| by_span.get(&p).copied());
                Breakdown::of(t, peer).map(|b| (t.span, b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_trace::{ThreadTrace, TraceEvent};

    fn trace_of(events: Vec<TraceEvent>) -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                thread: 0,
                name: "t".into(),
                dropped: 0,
                events,
            }],
        }
    }

    fn ev(ts: u64, id: EventId, a: u64, b: u64) -> TraceEvent {
        TraceEvent { ts, id, a, b }
    }

    #[test]
    fn assemble_groups_by_span_and_ignores_zero() {
        let t = trace_of(vec![
            ev(10, EventId::SpanSubmit, 1, 0),
            ev(11, EventId::SpanSubmit, 2, 0),
            ev(12, EventId::SpanWireTx, 1, 5),
            ev(13, EventId::SpanCollect, 0, 9), // span 0: dropped
            ev(14, EventId::LockAcquire, 1, 0), // not a span event
        ]);
        let tls = assemble(&t);
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].span, 1);
        assert_eq!(tls[0].events.len(), 2);
        assert_eq!(tls[1].span, 2);
        assert_eq!(tls[1].events.len(), 1);
    }

    #[test]
    fn deliver_joins_both_spans() {
        let t = trace_of(vec![
            ev(10, EventId::SpanSubmit, 1, 0),
            ev(20, EventId::SpanDeliver, 1, 7),
        ]);
        let tls = assemble(&t);
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].peer, Some(7));
        assert_eq!(tls[1].span, 7);
        assert_eq!(tls[1].peer, Some(1));
        assert_eq!(tls[1].count(EventId::SpanDeliver), 1);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let t = trace_of(vec![
            ev(100, EventId::SpanSubmit, 1, 0),
            ev(130, EventId::SpanCollect, 1, 1),
            ev(200, EventId::SpanWireTx, 1, 0),
            ev(900, EventId::SpanRetx, 1, 0),
            ev(1500, EventId::SpanWireRx, 1, 0),
            ev(1600, EventId::SpanDeliver, 1, 9),
            ev(1650, EventId::SpanComplete, 9, 0),
            ev(1700, EventId::SpanComplete, 1, 0),
        ]);
        let tls = assemble(&t);
        let all = Breakdown::all(&tls);
        assert_eq!(all.len(), 1);
        let (span, b) = all[0];
        assert_eq!(span, 1);
        assert_eq!(b.submit_ns, 30);
        assert_eq!(b.collect_ns, 70);
        assert_eq!(b.retransmit_ns, 700);
        assert_eq!(b.wire_ns, 600);
        // Peer (recv span 9) completes at 1650: that is the message end.
        assert_eq!(b.delivery_ns, 150);
        assert_eq!(b.total_ns, 1550);
        let sum: u64 = b.components().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, b.total_ns);
    }

    #[test]
    fn missing_stages_contribute_zero() {
        // Eager self-completing send with no rx visibility: only
        // submit / collect / tx / complete.
        let t = trace_of(vec![
            ev(5, EventId::SpanSubmit, 3, 0),
            ev(9, EventId::SpanCollect, 3, 1),
            ev(20, EventId::SpanWireTx, 3, 0),
            ev(21, EventId::SpanComplete, 3, 0),
        ]);
        let tls = assemble(&t);
        let b = Breakdown::of(&tls[0], None).unwrap();
        assert_eq!(b.retransmit_ns, 0);
        assert_eq!(b.wire_ns, 0);
        assert_eq!(b.total_ns, 16);
        let sum: u64 = b.components().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, b.total_ns);
    }

    #[test]
    fn timeline_json_shape() {
        let t = trace_of(vec![
            ev(1, EventId::SpanSubmit, 4, 2),
            ev(2, EventId::SpanWireTx, 4, 8),
        ]);
        let tls = assemble(&t);
        let json = tls[0].to_json();
        assert!(json.contains("\"span\": 4"));
        assert!(json.contains("\"event\": \"SpanSubmit\""));
        assert!(json.contains("\"event\": \"SpanWireTx\""));
        assert!(json.contains("\"arg\": 8"));
        assert!(json.contains("\"peer\": null"));
    }
}
