//! # nm-trace — low-overhead tracing & metrics for the nomad stack
//!
//! The paper's in-text constants (70 ns lock cycle, ~200 ns PIOMan
//! pass, 750 ns context switch, 400 ns–3.1 µs offload placement) were
//! obtained by instrumenting the stack, not by end-to-end timing. This
//! crate is that instrument: an FxT-style tracer writing fixed-size
//! records lock-free into per-thread ring buffers, plus a global named
//! counters registry shared by every layer.
//!
//! ## Usage
//!
//! Layers emit through the [`trace_event!`] macro with a registered
//! [`EventId`]:
//!
//! ```
//! nm_trace::trace_event!(LockAcquire, 0xdead_beef_u64, 1);
//! nm_trace::trace_event!(ProgressPass, 3);
//! ```
//!
//! After the run, [`take_trace`] drains every thread's ring and
//! [`TraceReport`] digests it into per-mechanism histograms and
//! flamegraph-folded text. `figures table1 --from-trace` derives the
//! paper's Table 1 constants from these events.
//!
//! ## Feature gating
//!
//! Everything is behind this crate's `trace` cargo feature. When it is
//! disabled (the default), [`emit`] is an empty `#[inline(always)]`
//! function: every `trace_event!` site in the stack compiles to
//! nothing, no ring is ever allocated, and [`take_trace`] returns an
//! empty [`Trace`]. Downstream crates re-expose the flag as their own
//! `trace` feature (pure forwarding — call sites carry no `cfg`).
//!
//! ## Timestamps
//!
//! Real runs use a monotonic clock; sim runs install the fabric's
//! manual virtual clock ([`install_virtual_clock`]) so traces are
//! bit-deterministic across hosts.

#![warn(missing_docs)]

pub mod counters;

mod clock;
mod events;
mod report;
mod ring;
mod span;

pub use clock::{install_real_clock, install_virtual_clock, now_ns};
pub use events::{EventId, EventInfo};
pub use report::{SpanStats, TraceReport};
pub use ring::{
    emit, enabled, reset, set_ring_capacity, snapshot_trace, take_trace, ThreadTrace, Trace,
    TraceEvent,
};
pub use span::next_span_id;

#[cfg(all(test, feature = "trace"))]
mod trace_tests {
    use super::*;

    #[test]
    fn emit_reaches_this_threads_ring() {
        // Test threads are named after the test; filter to our own ring
        // so concurrent tests in this binary don't interfere.
        let me = std::thread::current().name().unwrap_or("?").to_string();
        trace_event!(PacketTx, 123, 4);
        trace_event!(PacketRx, 5);
        let trace = snapshot_trace();
        let mine = trace
            .threads
            .iter()
            .find(|t| t.name == me)
            .expect("ring registered");
        let tx: Vec<_> = mine
            .events
            .iter()
            .filter(|e| e.id == EventId::PacketTx && e.a == 123)
            .collect();
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].b, 4);
    }

    #[test]
    fn enabled_reports_feature() {
        assert!(enabled());
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod notrace_tests {
    use super::*;

    #[test]
    fn disabled_form_records_nothing() {
        assert!(!enabled());
        trace_event!(PacketTx, 1, 2);
        assert!(take_trace().is_empty());
    }
}
