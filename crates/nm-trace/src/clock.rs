//! The trace timestamp source.
//!
//! Real runs timestamp with a monotonic clock relative to a process
//! epoch; simulated runs install the same virtual-nanosecond counter
//! that drives `nm-fabric`'s manual [`ClockSource`], so a sim run
//! traces *identically* (bit-deterministic timestamps) across hosts.
//!
//! The mode switch is a read-mostly `RwLock`; `now_ns` takes a shared
//! read on every event, which is uncontended in steady state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

enum Mode {
    /// Monotonic nanoseconds since the first trace timestamp request.
    Real,
    /// Shared virtual-nanosecond counter (sim runs advance it manually).
    Virtual(Arc<AtomicU64>),
}

static MODE: RwLock<Mode> = RwLock::new(Mode::Real);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Current trace timestamp in nanoseconds.
pub fn now_ns() -> u64 {
    match &*MODE.read().unwrap() {
        Mode::Real => epoch().elapsed().as_nanos() as u64,
        // relaxed: a monotonic counter read for a timestamp; no other
        // memory is published through it.
        Mode::Virtual(ns) => ns.load(Ordering::Relaxed),
    }
}

/// Switches trace timestamps to `ns`, a shared virtual-nanosecond
/// counter — pass the same `Arc` that backs the fabric's manual clock
/// so events and wire delivery share one timeline.
pub fn install_virtual_clock(ns: Arc<AtomicU64>) {
    *MODE.write().unwrap() = Mode::Virtual(ns);
}

/// Switches trace timestamps back to the real monotonic clock.
pub fn install_real_clock() {
    *MODE.write().unwrap() = Mode::Real;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_tracks_counter() {
        let ns = Arc::new(AtomicU64::new(41));
        install_virtual_clock(Arc::clone(&ns));
        assert_eq!(now_ns(), 41);
        ns.store(1000, Ordering::Relaxed);
        assert_eq!(now_ns(), 1000);
        install_real_clock();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
