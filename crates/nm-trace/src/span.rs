//! Message span ids: the causal key tying one message's events
//! together across threads, rails, and retransmissions.
//!
//! A span id is allocated once per `isend_with`/`irecv_with` (via
//! [`next_span_id`]), stored on the request, threaded through the
//! collect shards and transfer layer, and carried in the reliability
//! wire header so receive-side and retransmit events on the *other*
//! rank join the same span. The `Span*` events in [`crate::EventId`]
//! all carry the span id in `a`; `nm-obs` stitches them into
//! per-message timelines offline.
//!
//! Span id `0` is reserved and means "no span": control-only frames
//! (pure acks), requests created while tracing is compiled out, and
//! pre-span trace data all use 0, and every emission site skips the
//! event when the span is 0. With the `trace` feature disabled
//! [`next_span_id`] is a `const`-foldable `0` so the request field,
//! struct plumbing, and wire flag stay dormant at zero cost.

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "trace")]
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh nonzero span id (one relaxed `fetch_add`).
#[cfg(feature = "trace")]
pub fn next_span_id() -> u64 {
    // relaxed: a unique-id counter; only uniqueness matters, nothing
    // is ordered against the increment.
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Tracing compiled out: every span id is 0 ("no span") and all span
/// plumbing is inert.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn next_span_id() -> u64 {
    0
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_nonzero_and_distinct() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod notrace_tests {
    use super::*;

    #[test]
    fn disabled_form_is_zero() {
        assert_eq!(next_span_id(), 0);
        assert_eq!(next_span_id(), 0);
    }
}
